"""§3.1 — greedy shuffling statistics.

Paper: across the benchmarks only 7% of call sites had dependency
cycles, and the greedy cycle-breaker matched the exhaustive optimum at
all but six of 20,245 compiler call sites (one extra temporary each).
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_shuffle_stats(benchmark):
    stats = benchmark.pedantic(tables.shuffle_stats, rounds=1, iterations=1)
    body = "\n".join(f"{k:26s} {v}" for k, v in stats.items())
    print_block("§3.1: greedy vs exhaustive shuffling", body)
    assert stats["call-sites"] > 100
    # cycles are rare
    assert stats["cyclic-fraction"] < 0.25
    # greedy is optimal at (nearly) every call site
    assert stats["greedy-optimal-fraction"] > 0.99
