"""Table 2 — dynamic call graph summary.

Paper: syntactic leaves average just under one third of activations;
effective leaves (activations that made no call) average over two
thirds.
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_table2(benchmark):
    rows = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    print_block("Table 2: dynamic call graph summary", tables.format_table2(rows))
    avg = rows[-1]
    assert avg["benchmark"] == "AVERAGE"
    # The paper's headline numbers.
    assert avg["effective-leaf"] > 0.5, "effective leaves should dominate"
    assert avg["syntactic-leaf"] < 0.5, "syntactic leaves are the minority"
    assert avg["effective-leaf"] > avg["syntactic-leaf"]
