"""§6 future work — lambda lifting with heuristics.

The paper: "lambda lifting can easily result in net performance
decreases [but] it is worth investigating whether lambda lifting with
an appropriate set of heuristics can indeed increase the effectiveness
of our register allocator."  This experiment runs the suite with the
pass on and off and reports per-benchmark outcomes — reproducing both
halves of that sentence: some programs gain, some lose.
"""

from repro.benchsuite import tables
from repro.benchsuite.runner import run_benchmark
from repro.config import CompilerConfig
from benchmarks.conftest import print_block

NAMES = ("tak", "cpstak", "deriv", "browse", "boyer", "fread", "meta", "matcher")


def lifting_experiment():
    rows = []
    for name in NAMES:
        off = run_benchmark(name, CompilerConfig())
        on = run_benchmark(name, CompilerConfig(lambda_lift=True))
        rows.append(
            {
                "benchmark": name,
                "off-cycles": off.cycles,
                "on-cycles": on.cycles,
                "off-refs": off.stack_refs,
                "on-refs": on.stack_refs,
                "gain": off.cycles / on.cycles - 1.0,
            }
        )
    return rows


def test_lambda_lifting(benchmark):
    rows = benchmark.pedantic(lifting_experiment, rounds=1, iterations=1)
    lines = [
        f"{r['benchmark']:9s} off={r['off-cycles']:>10,} on={r['on-cycles']:>10,} "
        f"gain={r['gain']:>6.1%}"
        for r in rows
    ]
    print_block("§6: lambda lifting on/off", "\n".join(lines))
    gains = [r["gain"] for r in rows]
    # Correctness of the shape: the effect is mixed and small — the
    # paper's "can easily result in net performance decreases".
    assert any(g < 0 for g in gains) or any(g > 0 for g in gains)
    assert all(abs(g) < 0.5 for g in gains), "lifting should not be catastrophic"
