"""§2.1 ablation — the revised St/Sf placement against the simple S[E]
algorithm it replaced.

The simple algorithm is "too lazy": it cannot see that a call is
inevitable through short-circuit booleans nested in tests, so its saves
sink into branches and repeat along multi-call paths.
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_simple_vs_revised(benchmark):
    names = (*tables.FAST_NAMES, "shortcircuit")
    rows = benchmark.pedantic(
        tables.save_placement_ablation,
        kwargs={"names": names},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{r['benchmark']:12s} revised: refs={r['revised-refs']:>9d} "
        f"saves={r['revised-saves']:>8d} | simple: refs={r['simple-refs']:>9d} "
        f"saves={r['simple-saves']:>8d}"
        for r in rows
    ]
    print_block("§2.1 ablation: revised vs simple save placement", "\n".join(lines))
    total_revised = sum(r["revised-refs"] for r in rows)
    total_simple = sum(r["simple-refs"] for r in rows)
    # The revised algorithm never does worse overall...
    assert total_revised <= total_simple * 1.01
    # ...and strictly wins on the short-circuit microbenchmark, the
    # §2.1.2 pattern the revised algorithm exists for.
    sc = next(r for r in rows if r["benchmark"] == "shortcircuit")
    assert sc["revised-saves"] < sc["simple-saves"]
    assert sc["revised-refs"] < sc["simple-refs"]
