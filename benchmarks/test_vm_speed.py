"""Fast-path throughput: the trace-compiled VM must beat the legacy
dispatch loop by at least 2x (geomean over the speed corpus).

This is the performance acceptance test for the VM fast path: the
equivalence suite (``tests/vm/test_predecode_equiv.py``) proves the
fast loop changes nothing observable, and this proves it was worth
building.  Lives in ``benchmarks/`` (outside the tier-1 ``tests/``
path) because it measures wall-clock time.
"""

import time

from repro.benchsuite.programs import BENCHMARKS
from repro.benchsuite.vmbench import SPEED_CORPUS
from repro.pipeline import compile_source, run_compiled

from benchmarks.conftest import print_block

REPEATS = 3
REQUIRED_GEOMEAN = 2.0


def best_wall_time(compiled, vm_fast):
    run_compiled(compiled, vm_fast=vm_fast)  # warm (compiles traces)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run_compiled(compiled, vm_fast=vm_fast)
        best = min(best, time.perf_counter() - t0)
    return best


def test_fast_loop_twice_as_fast():
    rows = []
    product = 1.0
    for name in SPEED_CORPUS:
        compiled = compile_source(BENCHMARKS[name].source)
        fast_s = best_wall_time(compiled, True)
        legacy_s = best_wall_time(compiled, False)
        instructions = run_compiled(compiled, vm_fast=True).counters.instructions
        speedup = legacy_s / fast_s
        product *= speedup
        rows.append(
            f"{name:12s} fast {instructions / fast_s / 1e6:6.2f} M instr/s  "
            f"legacy {instructions / legacy_s / 1e6:6.2f} M instr/s  "
            f"speedup {speedup:5.2f}x"
        )
    geomean = product ** (1.0 / len(SPEED_CORPUS))
    rows.append(f"{'geomean':12s} {geomean:.2f}x (required: >= {REQUIRED_GEOMEAN}x)")
    print_block("VM fast-path throughput", "\n".join(rows))
    assert geomean >= REQUIRED_GEOMEAN, (
        f"fast loop geomean speedup {geomean:.2f}x < {REQUIRED_GEOMEAN}x"
    )
