"""§4 — compile-time profile.

Paper: "register allocation accounts for an average of 7% of overall
compile time."  We report our own pipeline's allocator share and
assert it stays a modest fraction.
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_compile_time_profile(benchmark):
    profile = benchmark.pedantic(
        tables.compile_time_profile,
        kwargs={"names": tables.FAST_NAMES, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{phase:12s} {seconds:8.4f}s"
        for phase, seconds in profile["phases"].items()
    ]
    lines.append(
        f"register allocation fraction: "
        f"{profile['register-allocation-fraction']:.1%} (paper: ~7%)"
    )
    print_block("§4: compile-time profile", "\n".join(lines))
    frac = profile["register-allocation-fraction"]
    # Wall-clock fractions wobble run to run; our allocator is roughly
    # half of this (deliberately small) pipeline — far above the
    # paper's 7%-of-all-of-Chez for a structural reason recorded in
    # EXPERIMENTS.md.
    assert 0.0 < frac < 0.75, "allocation should not dominate compilation"
