"""Observability must be free when off.

The guard compares the instrumented pipeline (``compile_source``, whose
every pass is wrapped in a — by default null — tracer span) against a
bare re-statement of the same passes with no tracer plumbing at all:
the pre-instrumentation baseline.  If the null tracer ever grows real
per-pass cost, this fails before a perf PR has to find it the hard way.
"""

import time

from benchmarks.conftest import print_block
from repro.backend.codegen import generate_program
from repro.benchsuite.programs import get_benchmark
from repro.config import CompilerConfig
from repro.core.allocator import allocate_program
from repro.frontend.analyze import check_scopes, mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.closure import closure_convert
from repro.frontend.expand import expand_program
from repro.observe import NULL_TRACER, Tracer
from repro.pipeline import PRELUDE, compile_source, run_compiled
from repro.sexp.reader import read_all


def _bare_compile(source: str, config: CompilerConfig):
    """The compile pipeline with zero observability plumbing — the
    pre-instrumentation baseline."""
    forms = read_all(PRELUDE + "\n" + source)
    expr = expand_program(forms)
    expr = assignment_convert(expr)
    mark_tail_calls(expr)
    check_scopes(expr)
    program = closure_convert(expr)
    allocation = allocate_program(program, config)
    return generate_program(program, allocation, config)


def _best_of(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_null_tracer_compile_within_noise():
    source = get_benchmark("tak").source
    config = CompilerConfig()
    # Warm caches (imports, reader tables) before timing either side.
    for _ in range(2):
        _bare_compile(source, config)
        compile_source(source, config, tracer=NULL_TRACER)

    bare = _best_of(lambda: _bare_compile(source, config))
    instrumented = _best_of(
        lambda: compile_source(source, config, tracer=NULL_TRACER)
    )
    ratio = instrumented / bare if bare else 1.0
    print_block(
        "observe: null-tracer compile overhead",
        f"bare         {bare * 1e3:8.3f} ms\n"
        f"instrumented {instrumented * 1e3:8.3f} ms\n"
        f"ratio        {ratio:8.3f}x",
    )
    # Best-of-N wall clock wobbles; the null spans and the per-pass
    # CompileTimes bookkeeping must stay within noise (plus a small
    # absolute floor so sub-millisecond jitter cannot fail the guard).
    assert instrumented <= bare * 1.30 + 0.002, (
        f"null-tracer pipeline {ratio:.2f}x slower than bare passes"
    )


def test_null_tracer_vm_counters_identical():
    source = get_benchmark("tak").source.replace("(tak 18 12 6)", "(tak 12 8 4)")
    config = CompilerConfig()
    plain = run_compiled(compile_source(source, config))
    traced = run_compiled(
        compile_source(source, config, tracer=Tracer()), profile=True
    )
    assert plain.counters.as_dict() == traced.counters.as_dict()
    assert plain.value == traced.value


def test_disabled_registry_pipeline_within_noise():
    """With no exporter attached the default registry stays disabled and
    every instrumentation point short-circuits on one attribute test.
    The telemetry design budgets <2% for this; the assertion uses the
    same noise margin as the tracer guard above (best-of-N wall clock
    wobbles well past 2% on shared CI hardware)."""
    from repro.observe.metrics import REGISTRY

    was_enabled = REGISTRY.enabled
    REGISTRY.enabled = False
    try:
        families_before = set(REGISTRY.families)
        source = get_benchmark("tak").source
        config = CompilerConfig()
        for _ in range(2):
            _bare_compile(source, config)
            compile_source(source, config)

        bare = _best_of(lambda: _bare_compile(source, config))
        instrumented = _best_of(lambda: compile_source(source, config))
        ratio = instrumented / bare if bare else 1.0
        print_block(
            "observe: disabled-registry compile overhead",
            f"bare         {bare * 1e3:8.3f} ms\n"
            f"instrumented {instrumented * 1e3:8.3f} ms\n"
            f"ratio        {ratio:8.3f}x",
        )
        assert instrumented <= bare * 1.30 + 0.002, (
            f"disabled-registry pipeline {ratio:.2f}x slower than bare passes"
        )
        # And a disabled registry never accretes families from a run.
        assert set(REGISTRY.families) == families_before
    finally:
        REGISTRY.enabled = was_enabled


def test_enabled_registry_observes_run_metrics():
    """The flip side of the null-overhead guard: enabling the registry
    actually captures the VM and allocator distributions."""
    from repro.observe.metrics import REGISTRY

    source = get_benchmark("tak").source.replace("(tak 18 12 6)", "(tak 12 8 4)")
    config = CompilerConfig()
    saved = REGISTRY.enabled, dict(REGISTRY.families)
    REGISTRY.families.clear()
    REGISTRY.enabled = True
    try:
        run_compiled(compile_source(source, config))
        snap = REGISTRY.snapshot()
        assert snap["counters"]["repro_vm_runs"] == 1
        assert sum(snap["histograms"]["repro_vm_instructions"]["counts"]) == 1
        assert sum(snap["histograms"]["repro_shuffle_size"]["counts"]) > 0
    finally:
        REGISTRY.enabled = saved[0]
        REGISTRY.families.clear()
        REGISTRY.families.update(saved[1])


def _serve_batch(service, requests):
    responses = service.run(requests)
    assert all(r.ok for r in responses)


def test_request_tracing_overhead_on_serve_path(tmp_path):
    """Tracing off must be free on the serve path, and 1% sampling must
    stay within the same noise envelope — the tail sampler means 99% of
    requests pay only span bookkeeping, never store writes."""
    from repro.observe.reqtrace import build_reqtracer
    from repro.serve.service import BatchService, Request

    source = get_benchmark("tak").source.replace("(tak 18 12 6)", "(tak 8 5 2)")
    requests = [Request(op="compile", source=source, id=i) for i in range(8)]

    bare_svc = BatchService(jobs=1, cache=False)
    off_svc = BatchService(jobs=1, cache=False, reqtracer=None)
    sampled_svc = BatchService(
        jobs=1, cache=False,
        reqtracer=build_reqtracer(
            str(tmp_path / "spans"), sample=0.01, service="bench", seed=7
        ),
    )
    for _ in range(2):  # warm imports/reader tables before timing
        _serve_batch(bare_svc, requests)
        _serve_batch(off_svc, requests)
        _serve_batch(sampled_svc, requests)

    bare = _best_of(lambda: _serve_batch(bare_svc, requests))
    off = _best_of(lambda: _serve_batch(off_svc, requests))
    sampled = _best_of(lambda: _serve_batch(sampled_svc, requests))
    print_block(
        "observe: serve-path request-tracing overhead",
        f"no tracer      {bare * 1e3:8.3f} ms\n"
        f"tracing off    {off * 1e3:8.3f} ms ({off / bare:5.3f}x)\n"
        f"1% sampling    {sampled * 1e3:8.3f} ms ({sampled / bare:5.3f}x)",
    )
    # The design budget is <2%; the margin is the same noise envelope
    # the compile-path guards use (best-of-N wobbles past 2% on CI).
    assert off <= bare * 1.30 + 0.002, (
        f"tracing off costs {off / bare:.2f}x on the serve path"
    )
    assert sampled <= bare * 1.30 + 0.002, (
        f"1% sampling costs {sampled / bare:.2f}x on the serve path"
    )


def test_flight_recorder_record_is_cheap():
    """One record() is a deque append; 10k of them must be far under a
    millisecond each even on loaded CI machines."""
    from repro.observe.recorder import FlightRecorder

    recorder = FlightRecorder(capacity=512)
    t0 = time.perf_counter()
    for i in range(10_000):
        recorder.record("tick", i=i)
    elapsed = time.perf_counter() - t0
    print_block(
        "observe: flight recorder throughput",
        f"10k records in {elapsed * 1e3:.2f} ms "
        f"({elapsed / 10_000 * 1e9:.0f} ns/event)",
    )
    assert elapsed < 0.5
    assert len(recorder) == 512
