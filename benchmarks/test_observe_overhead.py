"""Observability must be free when off.

The guard compares the instrumented pipeline (``compile_source``, whose
every pass is wrapped in a — by default null — tracer span) against a
bare re-statement of the same passes with no tracer plumbing at all:
the pre-instrumentation baseline.  If the null tracer ever grows real
per-pass cost, this fails before a perf PR has to find it the hard way.
"""

import time

from benchmarks.conftest import print_block
from repro.backend.codegen import generate_program
from repro.benchsuite.programs import get_benchmark
from repro.config import CompilerConfig
from repro.core.allocator import allocate_program
from repro.frontend.analyze import check_scopes, mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.closure import closure_convert
from repro.frontend.expand import expand_program
from repro.observe import NULL_TRACER, Tracer
from repro.pipeline import PRELUDE, compile_source, run_compiled
from repro.sexp.reader import read_all


def _bare_compile(source: str, config: CompilerConfig):
    """The compile pipeline with zero observability plumbing — the
    pre-instrumentation baseline."""
    forms = read_all(PRELUDE + "\n" + source)
    expr = expand_program(forms)
    expr = assignment_convert(expr)
    mark_tail_calls(expr)
    check_scopes(expr)
    program = closure_convert(expr)
    allocation = allocate_program(program, config)
    return generate_program(program, allocation, config)


def _best_of(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_null_tracer_compile_within_noise():
    source = get_benchmark("tak").source
    config = CompilerConfig()
    # Warm caches (imports, reader tables) before timing either side.
    for _ in range(2):
        _bare_compile(source, config)
        compile_source(source, config, tracer=NULL_TRACER)

    bare = _best_of(lambda: _bare_compile(source, config))
    instrumented = _best_of(
        lambda: compile_source(source, config, tracer=NULL_TRACER)
    )
    ratio = instrumented / bare if bare else 1.0
    print_block(
        "observe: null-tracer compile overhead",
        f"bare         {bare * 1e3:8.3f} ms\n"
        f"instrumented {instrumented * 1e3:8.3f} ms\n"
        f"ratio        {ratio:8.3f}x",
    )
    # Best-of-N wall clock wobbles; the null spans and the per-pass
    # CompileTimes bookkeeping must stay within noise (plus a small
    # absolute floor so sub-millisecond jitter cannot fail the guard).
    assert instrumented <= bare * 1.30 + 0.002, (
        f"null-tracer pipeline {ratio:.2f}x slower than bare passes"
    )


def test_null_tracer_vm_counters_identical():
    source = get_benchmark("tak").source.replace("(tak 18 12 6)", "(tak 12 8 4)")
    config = CompilerConfig()
    plain = run_compiled(compile_source(source, config))
    traced = run_compiled(
        compile_source(source, config, tracer=Tracer()), profile=True
    )
    assert plain.counters.as_dict() == traced.counters.as_dict()
    assert plain.value == traced.value
