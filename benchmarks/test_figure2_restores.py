"""§2.2 / Figure 2 — eager vs lazy restore placement across memory
latencies.

Paper: "the eager approach produced code that ran just as fast as the
code produced by the lazy approach ... the reduced effect of memory
latency offsets the cost of unnecessary restores."  We assert both
directions of that trade: lazy executes no more restores, and eager's
cycle count stays within a few percent of lazy's even at high latency.
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_restore_strategies(benchmark):
    rows = benchmark.pedantic(
        tables.restore_comparison,
        kwargs={"names": tables.FAST_NAMES},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"latency={r['latency']} {r['strategy']:5s} cycles={r['cycles']:>10d} "
        f"restores={r['restores']:>8d} stack-refs={r['stack-refs']:>8d}"
        for r in rows
    ]
    print_block("Figure 2 / §2.2: eager vs lazy restores", "\n".join(lines))

    by_key = {(r["latency"], r["strategy"]): r for r in rows}
    for latency in (1, 3, 6):
        eager = by_key[(latency, "eager")]
        lazy = by_key[(latency, "lazy")]
        # lazy executes no more restores than eager...
        assert lazy["restores"] <= eager["restores"]
        # ...but eager stays in the same performance range (within 10%)
        assert eager["cycles"] / lazy["cycles"] < 1.10
