"""§6 — static branch prediction from the call-graph statistics.

Paper: "paths without calls are assumed to be more likely than paths
with calls.  Preliminary experiments suggest that this results in a
small (2-3%) but consistent improvement."
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_branch_prediction(benchmark):
    rows = benchmark.pedantic(
        tables.branch_prediction_experiment,
        kwargs={"names": tables.FAST_NAMES},
        rounds=1,
        iterations=1,
    )
    lines = []
    for r in rows[:-1]:
        lines.append(
            f"{r['benchmark']:12s} fallthrough={r['fallthrough-cycles']:>10d} "
            f"call-heuristic={r['static-calls-cycles']:>10d} "
            f"improvement={r['improvement']:>7.2%}"
        )
    lines.append(f"{'AVERAGE':12s} improvement={rows[-1]['improvement']:>7.2%}")
    print_block("§6: static branch prediction", "\n".join(lines))
    # The paper calls its 2-3% gain "preliminary".  On our suite the
    # average is ~0%: idiomatic Scheme already places the call-free
    # base case on the fall-through path, so the heuristic's layout
    # matches what the code does anyway (see EXPERIMENTS.md).  Assert
    # the effect stays in the paper's few-percent regime.
    assert abs(rows[-1]["improvement"]) < 0.03


MECHANISM_MICRO = """
(define (g n) (+ n 1))
(define (f x)
  (if (> x 1900) (+ 0 (g x)) (+ x 1)))
(let loop ((i 0) (acc 0))
  (if (= i 2000) acc (loop (+ i 1) (+ acc (f i)))))
"""


def test_reordering_mechanism(benchmark):
    """When the call-free path IS the else branch and is hot (95% of
    executions here), the §6 layout moves it onto the fall-through and
    the mispredicts disappear."""
    from repro.config import CompilerConfig
    from repro.pipeline import run_source

    def measure():
        base = run_source(
            MECHANISM_MICRO,
            CompilerConfig(branch_prediction="fallthrough"),
            prelude=False,
        )
        pred = run_source(
            MECHANISM_MICRO,
            CompilerConfig(branch_prediction="static-calls"),
            prelude=False,
        )
        return base, pred

    base, pred = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_block(
        "§6 mechanism: else-hot call-free branch",
        f"fallthrough:  cycles={base.counters.cycles:,} "
        f"mispredicts={base.counters.mispredicts:,}\n"
        f"static-calls: cycles={pred.counters.cycles:,} "
        f"mispredicts={pred.counters.mispredicts:,}",
    )
    assert pred.counters.mispredicts < base.counters.mispredicts - 1500
    assert pred.counters.cycles < base.counters.cycles
