"""The batch service's two speed levers, measured.

* **Cache**: a warm-cache ``repro batch`` over the benchmark suite
  recompiles nothing; the wall-clock ratio against a cold pass is the
  headline number in EXPERIMENTS.md §"Batch service".
* **Pool**: ``--jobs N`` fan-out.  The speedup assertion is gated on
  the machine actually having more than one core — on a single-core
  container the pool can only add overhead, and the honest measurement
  is the cache one.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.benchsuite import BENCHMARKS
from repro.serve.service import BatchService, Request
from benchmarks.conftest import print_block


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _requests():
    return [
        Request(op="compile", source=bench.source, id=name)
        for name, bench in sorted(BENCHMARKS.items())
    ]


def test_warm_cache_recompiles_nothing(tmp_path, benchmark):
    cache = str(tmp_path / "cache")

    cold_start = time.perf_counter()
    cold = BatchService(jobs=1, cache_dir=cache)
    cold_responses = cold.run(_requests())
    cold_s = time.perf_counter() - cold_start
    assert all(r.ok and not r.cached for r in cold_responses)

    warm = BatchService(jobs=1, cache_dir=cache)
    warm_start = time.perf_counter()
    warm_responses = benchmark.pedantic(
        warm.run, args=(_requests(),), rounds=1, iterations=1
    )
    warm_s = time.perf_counter() - warm_start

    # The acceptance bar: zero recompiles on a warm cache.
    assert all(r.ok and r.cached for r in warm_responses)
    stats = warm.stats()
    assert stats["cache"]["misses"] == 0
    assert stats["cache"]["hits"] == len(BENCHMARKS)

    speedup = cold_s / warm_s if warm_s else float("inf")
    print_block(
        "Batch service: cold vs warm cache (full suite, compile-only)",
        f"cold  {cold_s:8.3f}s   ({len(cold_responses)} compiles)\n"
        f"warm  {warm_s:8.3f}s   (0 compiles, {stats['cache']['hits']} hits)\n"
        f"speedup {speedup:6.1f}x",
    )
    # Loading a pickled program must beat running the whole compiler.
    assert speedup > 2.0


def test_pool_fanout(tmp_path, benchmark):
    jobs = min(4, _cores())
    requests = [
        Request(op="run", source=BENCHMARKS[name].source, id=f"{name}-{i}")
        for name in ("tak", "deriv", "destruct", "triang")
        for i in range(2)
    ]

    serial_start = time.perf_counter()
    serial = BatchService(jobs=1, cache=False)
    serial_responses = serial.run(requests)
    serial_s = time.perf_counter() - serial_start
    assert all(r.ok for r in serial_responses)

    pooled = BatchService(jobs=jobs, cache=False)
    pooled_start = time.perf_counter()
    pooled_responses = benchmark.pedantic(
        pooled.run, args=(requests,), rounds=1, iterations=1
    )
    pooled_s = time.perf_counter() - pooled_start
    assert all(r.ok for r in pooled_responses)

    speedup = serial_s / pooled_s if pooled_s else float("inf")
    print_block(
        f"Batch service: --jobs {jobs} fan-out ({_cores()} cores visible)",
        f"serial {serial_s:8.3f}s\n"
        f"pooled {pooled_s:8.3f}s   (jobs={jobs})\n"
        f"speedup {speedup:6.2f}x",
    )
    if _cores() < 2:
        pytest.skip(
            f"single-core machine ({_cores()} visible): fan-out speedup "
            "is unmeasurable; cache speedup above is the relevant number"
        )
    assert speedup > 1.5
