"""Table 3 — stack-reference reduction and speedup for the three save
strategies with six argument registers, relative to the no-register
baseline.

Paper averages: lazy 72%/43%, early 58%/32%, late 65%/36%.  We assert
the *shape*: every strategy improves on the baseline, and lazy beats
both early and late on both metrics.
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_table3(benchmark):
    rows = benchmark.pedantic(tables.table3, rounds=1, iterations=1)
    print_block(
        "Table 3: save strategies vs no-register baseline",
        tables.format_table3(rows),
    )
    avg = rows[-1]
    assert avg["benchmark"] == "AVERAGE"
    for strategy in ("lazy", "early", "late"):
        assert avg[f"{strategy}-ref-reduction"] > 0.0
        assert avg[f"{strategy}-speedup"] > 0.0
    # lazy wins on both metrics (the paper's central result)
    assert avg["lazy-ref-reduction"] > avg["early-ref-reduction"]
    assert avg["lazy-ref-reduction"] > avg["late-ref-reduction"]
    assert avg["lazy-speedup"] > avg["early-speedup"]
    assert avg["lazy-speedup"] > avg["late-speedup"]
