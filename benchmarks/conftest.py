"""Benchmark-suite configuration.

``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper's evaluation section; each benchmark prints its
table after timing the generator once.
"""

import pytest


def print_block(title: str, body: str) -> None:
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
