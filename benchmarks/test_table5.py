"""Table 5 — tak: early vs lazy save placement for callee-save
registers, plus caller-save lazy (the paper's hand-coded assembly).

Paper: lazy callee-save is 55-91% faster than early callee-save and
"brings the performance of the callee-save C code within range of the
caller-save code".
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_table5(benchmark):
    rows = benchmark.pedantic(tables.table5, rounds=1, iterations=1)
    print_block(
        "Table 5: tak — callee-save early vs lazy, and caller-save lazy",
        tables.format_table45(rows, "speedup-vs-early"),
    )
    by_name = {r["configuration"]: r for r in rows}
    lazy = by_name["callee-save lazy"]
    caller = by_name["caller-save lazy"]
    assert lazy["speedup-vs-early"] > 0.0
    assert caller["speedup-vs-early"] > 0.0
    # lazy callee-save within range of the caller-save configuration
    assert 0.75 < lazy["cycles"] / caller["cycles"] < 1.33
