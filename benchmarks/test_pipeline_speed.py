"""Raw pipeline speed benchmarks (pytest-benchmark proper): how fast
the compiler compiles and the VM executes."""

import pytest

from repro.benchsuite.programs import get_benchmark
from repro.config import CompilerConfig
from repro.pipeline import compile_source, run_compiled


def test_compile_tak(benchmark):
    src = get_benchmark("tak").source
    compiled = benchmark(compile_source, src, CompilerConfig())
    assert compiled.total_instructions() > 0


def test_compile_boyer(benchmark):
    src = get_benchmark("boyer").source
    compiled = benchmark(compile_source, src, CompilerConfig())
    assert compiled.total_instructions() > 0


def test_vm_throughput_tak(benchmark):
    src = get_benchmark("tak").source.replace("(tak 18 12 6)", "(tak 12 8 4)")
    compiled = compile_source(src, CompilerConfig())
    result = benchmark.pedantic(run_compiled, args=(compiled,), rounds=3, iterations=1)
    assert result.value == 5


def test_vm_throughput_deriv(benchmark):
    src = get_benchmark("deriv").source.replace("(deriv-run 300)", "(deriv-run 50)")
    compiled = compile_source(src, CompilerConfig())
    result = benchmark.pedantic(run_compiled, args=(compiled,), rounds=3, iterations=1)
    assert result.counters.instructions > 0
