"""§4 — performance vs number of registers, with and without greedy
shuffling.

Paper: "Performance increases monotonically from zero through six
registers, although the difference between five and six registers is
minimal.  Our greedy shuffling algorithm becomes important as the
number of argument registers increases.  Before we installed this
algorithm, the performance actually decreased after two argument
registers."
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_register_sweep(benchmark):
    rows = benchmark.pedantic(
        tables.register_sweep,
        kwargs={
            "names": tables.FAST_NAMES,
            "shuffle_strategies": ("greedy", "naive", "none"),
        },
        rounds=1,
        iterations=1,
    )
    print_block(
        "§4: cycles vs register count (subset of benchmarks)",
        tables.format_register_sweep(rows),
    )
    greedy = [r["greedy-cycles"] for r in rows]
    # Broadly monotone improvement 0 -> 6 registers.
    assert greedy[0] > greedy[-1]
    assert greedy[0] > greedy[3]
    # 5 -> 6 registers changes little (under 5%).
    assert abs(greedy[-1] - greedy[-2]) / greedy[-2] < 0.05
    # greedy shuffling never loses to naive order at high register counts
    assert rows[-1]["greedy-cycles"] <= rows[-1]["naive-cycles"]
    # shuffling grows in importance with the register count: the gap
    # between greedy and no-shuffle widens from 0 to 6 registers
    gap0 = rows[0]["none-cycles"] / rows[0]["greedy-cycles"]
    gap6 = rows[-1]["none-cycles"] / rows[-1]["greedy-cycles"]
    assert gap6 > gap0
