"""Table 4 — tak: Chez-style code (caller-save, lazy saves) against
C-compiler-style code (callee-save, early saves).

Paper: Chez Scheme beats the Alpha cc by 14% on tak(26,18,9); the gap
is attributed to the save strategy.  We assert the Chez-style
configuration wins.
"""

from repro.benchsuite import tables
from benchmarks.conftest import print_block


def test_table4(benchmark):
    rows = benchmark.pedantic(tables.table4, rounds=1, iterations=1)
    print_block(
        "Table 4: tak — caller-save lazy (Chez) vs callee-save early (cc)",
        tables.format_table45(rows, "speedup-vs-cc"),
    )
    chez = next(r for r in rows if "Chez" in r["system"])
    assert chez["speedup-vs-cc"] > 0.0
