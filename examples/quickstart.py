#!/usr/bin/env python3
"""Quickstart: compile and run a Scheme program, inspect the counters.

    python examples/quickstart.py
"""

from repro import CompilerConfig, run_source

SOURCE = """
(define (fib n)
  (if (< n 2)
      n
      (+ (fib (- n 1)) (fib (- n 2)))))
(fib 20)
"""


def main() -> None:
    # The paper's configuration: 6 argument registers, 6 user
    # registers, lazy saves, eager restores, greedy shuffling.
    result = run_source(SOURCE)
    print(f"value             : {result.value}")
    print(f"instructions      : {result.counters.instructions:,}")
    print(f"cycles            : {result.counters.cycles:,}")
    print(f"stack references  : {result.counters.total_stack_refs:,}")
    print(f"  saves           : {result.counters.saves:,}")
    print(f"  restores        : {result.counters.restores:,}")
    print(f"calls             : {result.counters.calls:,}")
    print(f"tail calls        : {result.counters.tail_calls:,}")

    # The Table 2 classification for this run:
    print("\nactivation classes (Table 2):")
    for category, fraction in result.classifier.fractions().items():
        print(f"  {category:24s} {fraction:6.1%}")
    print(
        f"  -> effective leaves: "
        f"{result.classifier.effective_leaf_fraction:.1%} "
        "(the paper's observation: usually over two thirds)"
    )

    # Compare with the no-register baseline of Table 3:
    baseline = run_source(SOURCE, CompilerConfig.baseline())
    reduction = 1 - result.counters.total_stack_refs / baseline.counters.total_stack_refs
    speedup = baseline.counters.cycles / result.counters.cycles - 1
    print(f"\nvs baseline (0 registers):")
    print(f"  stack-ref reduction : {reduction:.1%}")
    print(f"  cycle speedup       : {speedup:.1%}")


if __name__ == "__main__":
    main()
