#!/usr/bin/env python3
"""Compare save/restore/shuffle strategies on a program of your choice.

    python examples/compare_strategies.py [benchmark-name]

Runs the named benchmark (default: tak) under the paper's main
configurations and prints a Table-3-style comparison.
"""

import sys

from repro.benchsuite import BENCHMARKS
from repro.benchsuite.runner import run_benchmark
from repro.config import CompilerConfig

CONFIGS = [
    ("baseline (no registers)", CompilerConfig.baseline()),
    ("lazy save (paper)", CompilerConfig()),
    ("early save", CompilerConfig(save_strategy="early")),
    ("late save", CompilerConfig(save_strategy="late")),
    ("lazy-simple save", CompilerConfig(save_strategy="lazy-simple")),
    ("lazy restore", CompilerConfig(restore_strategy="lazy")),
    ("naive shuffle", CompilerConfig(shuffle_strategy="naive")),
    ("callee-save early (cc)", CompilerConfig(save_convention="callee", save_strategy="early")),
    ("callee-save lazy", CompilerConfig(save_convention="callee", save_strategy="lazy")),
    ("lambda lifting (§6)", CompilerConfig(lambda_lift=True)),
]


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tak"
    if name not in BENCHMARKS:
        print(f"unknown benchmark {name!r}; available: {', '.join(sorted(BENCHMARKS))}")
        raise SystemExit(1)
    bench = BENCHMARKS[name]
    print(f"benchmark: {name} — {bench.description}")
    print(f"scaling  : {bench.scaling}\n")

    baseline = None
    header = (
        f"{'configuration':26s} {'stack refs':>11s} {'cycles':>12s} "
        f"{'saves':>9s} {'restores':>9s} {'ref-cut':>8s} {'speedup':>8s}"
    )
    print(header)
    print("-" * len(header))
    for label, config in CONFIGS:
        run = run_benchmark(name, config)
        if baseline is None:
            baseline = run
        refcut = 1 - run.stack_refs / baseline.stack_refs if baseline.stack_refs else 0
        speedup = baseline.cycles / run.cycles - 1
        print(
            f"{label:26s} {run.stack_refs:>11,} {run.cycles:>12,} "
            f"{run.counters.saves:>9,} {run.counters.restores:>9,} "
            f"{refcut:>8.1%} {speedup:>8.1%}"
        )
    print("\n(all rows validated against the reference interpreter)")


if __name__ == "__main__":
    main()
