#!/usr/bin/env python3
"""See the allocator's decisions: save regions, restores, shuffles.

    python examples/disassemble.py

Compiles the paper's running example under each save strategy and
prints the annotated intermediate form plus the generated code, so you
can watch the `(save (x ...) ...)` regions move.
"""

from repro.astnodes import Call, Save, pretty, walk
from repro.backend.isa import format_code
from repro.config import CompilerConfig
from repro.pipeline import compile_source

# tak: the paper's favourite — one call-free path, one call-heavy path.
SOURCE = """
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(tak 18 12 6)
"""


def show(strategy: str) -> None:
    config = CompilerConfig(save_strategy=strategy)
    compiled = compile_source(SOURCE, config, prelude=False)
    tak = next(c for c in compiled.codes if c.name == "tak")
    print(f"--- save strategy: {strategy} " + "-" * 40)
    print("annotated body:")
    print(" ", pretty(tak.body))
    saves = [n for n in walk(tak.body) if isinstance(n, Save)]
    print(f"save regions: {len(saves)}")
    for s in saves:
        print(f"  save {{{', '.join(v.name for v in s.vars)}}}")
    calls = [n for n in walk(tak.body) if isinstance(n, Call) and not n.tail]
    for c in calls:
        print(
            f"  call restores {{{', '.join(v.name for v in (c.restores or []))}}}"
        )
    print("\ngenerated code:")
    print(format_code(tak, [r.name for r in compiled.regfile.all]))
    print()


def main() -> None:
    for strategy in ("lazy", "early", "late"):
        show(strategy)
    print(
        "Note how 'lazy' keeps the x<=y leaf path save-free, 'early'\n"
        "saves at entry on every activation, and 'late' repeats the\n"
        "saves at each of the three non-tail calls."
    )


if __name__ == "__main__":
    main()
