#!/usr/bin/env python3
"""Reproduce the paper's motivating measurement on your own programs.

    python examples/leaf_profile.py

The paper's key observation (§1, Table 2): syntactic leaf procedures
account for under one third of activations, but *effective* leaf
activations — those that happen to make no call — account for over two
thirds.  This profiles a few programs and prints where their
activations fall.
"""

from repro import run_source

PROGRAMS = {
    "ackermann": """
        (define (ack m n)
          (cond ((zero? m) (+ n 1))
                ((zero? n) (ack (- m 1) 1))
                (else (ack (- m 1) (ack m (- n 1))))))
        (ack 2 5)
    """,
    "tree-sum": """
        (define (build d)
          (if (zero? d) 1 (cons (build (- d 1)) (build (- d 1)))))
        (define (tree-sum t)
          (if (pair? t) (+ (tree-sum (car t)) (tree-sum (cdr t))) t))
        (tree-sum (build 10))
    """,
    "even-odd": """
        (define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
        (define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
        (even2? 3000)
    """,
    "map-pipeline": """
        (define (squares ls) (map (lambda (x) (* x x)) ls))
        (define (total ls) (fold-left + 0 ls))
        (total (squares (iota 200)))
    """,
}


def main() -> None:
    header = (
        f"{'program':14s} {'activations':>12s} {'syn-leaf':>9s} "
        f"{'eff-leaf':>9s} {'always-calls':>13s}"
    )
    print(header)
    print("-" * len(header))
    for name, source in PROGRAMS.items():
        result = run_source(source)
        f = result.classifier.fractions()
        print(
            f"{name:14s} {result.classifier.total:>12,} "
            f"{f['syntactic-leaf']:>9.1%} "
            f"{result.classifier.effective_leaf_fraction:>9.1%} "
            f"{f['syntactic-internal']:>13.1%}"
        )
    print(
        "\nEffective leaves are what the lazy save strategy exploits:\n"
        "no save executes on an activation that never reaches a call."
    )


if __name__ == "__main__":
    main()
