#!/usr/bin/env python3
"""First-class continuations under the allocator's eye.

    python examples/continuations.py

``ctak`` runs tak with a continuation capture at every call — the worst
case for any save strategy, since every capture snapshots the stack the
saves built.  This example shows how the save strategies fare when the
stack is copied constantly, and demonstrates a re-entrant generator.
"""

from repro import CompilerConfig, run_source

CTAK = """
(define (ctak x y z)
  (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (call/cc
        (lambda (k2)
          (ctak-aux
            k2
            (call/cc (lambda (k3) (ctak-aux k3 (- x 1) y z)))
            (call/cc (lambda (k4) (ctak-aux k4 (- y 1) z x)))
            (call/cc (lambda (k5) (ctak-aux k5 (- z 1) x y))))))))
(ctak 12 8 4)
"""

GENERATOR = """
;; A resumable producer: each re-entry of the saved continuation
;; delivers one more element into the consumer's world.
(define state (cons #f 0))
(define (next!)
  (set-cdr! state (+ (cdr state) 1))
  (cdr state))
(define first (call/cc (lambda (k) (set-car! state k) (next!))))
(if (< first 5)
    ((car state) (next!))
    first)
"""


def main() -> None:
    print("ctak(12,8,4) — a continuation capture per call:\n")
    header = f"{'configuration':22s} {'cycles':>10s} {'captures':>9s} {'invokes':>8s} {'stack refs':>11s}"
    print(header)
    print("-" * len(header))
    for label, cfg in [
        ("lazy save (paper)", CompilerConfig()),
        ("early save", CompilerConfig(save_strategy="early")),
        ("late save", CompilerConfig(save_strategy="late")),
    ]:
        r = run_source(CTAK, cfg, prelude=False)
        c = r.counters
        print(
            f"{label:22s} {c.cycles:>10,} {c.continuations_captured:>9,} "
            f"{c.continuations_invoked:>8,} {c.total_stack_refs:>11,}"
        )

    print("\nre-entrant generator (the VM's continuations are full,")
    print("stack-copying, multi-shot — Hieb/Dybvig style):")
    r = run_source(GENERATOR, prelude=False)
    print(f"  final value: {r.value}")
    print(f"  continuation invoked {r.counters.continuations_invoked} times")


if __name__ == "__main__":
    main()
