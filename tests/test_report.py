"""Allocation report tests."""


from repro.cli import main
from repro.config import CompilerConfig
from repro.pipeline import compile_source
from repro.report import allocation_report

TAK = """
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 8 4 2)
"""


class TestReport:
    def test_report_contents(self):
        compiled = compile_source(TAK, CompilerConfig(), prelude=False)
        text = allocation_report(compiled)
        assert "tak%" in text
        assert "save region" in text
        assert "restores" in text
        assert "tail call" in text
        assert "home=" in text

    def test_report_shows_shuffle_cycles(self):
        compiled = compile_source(TAK, CompilerConfig(), prelude=False)
        text = allocation_report(compiled, proc="tak")
        assert "cycle=True" in text

    def test_report_single_proc(self):
        compiled = compile_source(TAK, CompilerConfig(), prelude=False)
        text = allocation_report(compiled, proc="tak")
        assert "main%" not in text

    def test_leaf_flags(self):
        compiled = compile_source(
            "(define (leaf x) (+ x 1)) (+ 0 (leaf 2))", CompilerConfig(), prelude=False
        )
        text = allocation_report(compiled, proc="leaf")
        assert "syntactic-leaf" in text

    def test_always_calls_flag(self):
        compiled = compile_source(
            "(define (g n) n) (define (f x) (+ (g x) 1)) (f 1)",
            CompilerConfig(),
            prelude=False,
        )
        text = allocation_report(compiled, proc="f")
        assert "always-calls" in text

    def test_cli_report(self, tmp_path, capsys):
        path = tmp_path / "p.scm"
        path.write_text(TAK)
        assert main(["report", str(path), "--proc", "tak"]) == 0
        out = capsys.readouterr().out
        assert "save region" in out

    def test_callee_region_rendered(self):
        compiled = compile_source(
            TAK,
            CompilerConfig(save_convention="callee", save_strategy="lazy"),
            prelude=False,
        )
        text = allocation_report(compiled, proc="tak")
        assert "callee:{" in text
