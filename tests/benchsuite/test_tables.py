"""Unit tests of the table generators (small benchmark subsets)."""

import pytest

from repro.benchsuite import BENCHMARKS, tables
from repro.benchsuite.runner import expected_value, run_benchmark
from repro.config import CompilerConfig
from repro.vm.callgraph import CATEGORIES

SMALL = ["tak", "fread"]


class TestTable2:
    def test_rows_and_average(self):
        rows = tables.table2(SMALL)
        assert len(rows) == 3
        assert rows[-1]["benchmark"] == "AVERAGE"
        for row in rows[:-1]:
            total = sum(row[c] for c in CATEGORIES)
            assert total == pytest.approx(1.0)

    def test_format(self):
        text = tables.format_table2(tables.table2(["tak"]))
        assert "tak" in text and "AVERAGE" in text


class TestTable3:
    def test_reductions_and_speedups(self):
        rows = tables.table3(["tak"])
        row = rows[0]
        for strategy in ("lazy", "early", "late"):
            assert 0 <= row[f"{strategy}-ref-reduction"] <= 1
            assert row[f"{strategy}-speedup"] > 0
        assert rows[-1]["benchmark"] == "AVERAGE"

    def test_format(self):
        text = tables.format_table3(tables.table3(["tak"]))
        assert "%" in text


class TestTables45:
    def test_table4_rows(self):
        rows = tables.table4()
        assert len(rows) == 2
        assert rows[0]["speedup-vs-cc"] == 0.0

    def test_table5_rows(self):
        rows = tables.table5()
        assert {r["configuration"] for r in rows} == {
            "callee-save early",
            "callee-save lazy",
            "caller-save lazy",
        }


class TestShuffleStats:
    def test_counts(self):
        stats = tables.shuffle_stats(["tak"])
        assert stats["call-sites"] > 0
        assert 0 <= stats["cyclic-fraction"] <= 1
        assert stats["greedy-optimal-sites"] <= stats["call-sites"]


class TestSweepAndRestores:
    def test_register_sweep_columns(self):
        rows = tables.register_sweep(["tak"], counts=(0, 6))
        assert rows[0]["registers"] == 0
        assert rows[0]["greedy-cycles"] > rows[1]["greedy-cycles"]

    def test_restore_comparison(self):
        rows = tables.restore_comparison(["tak"], latencies=(1,))
        assert {r["strategy"] for r in rows} == {"eager", "lazy"}

    def test_branch_prediction_rows(self):
        rows = tables.branch_prediction_experiment(["tak"])
        assert rows[-1]["benchmark"] == "AVERAGE"

    def test_compile_time_profile(self):
        profile = tables.compile_time_profile(["tak"], repeats=1)
        assert 0 < profile["register-allocation-fraction"] < 1

    def test_ablation_rows(self):
        rows = tables.save_placement_ablation(["shortcircuit"])
        assert rows[0]["revised-saves"] < rows[0]["simple-saves"]


class TestAllocatorAblation:
    def test_rows_cover_every_strategy(self):
        rows = tables.allocator_ablation(["tak"])
        assert [r["benchmark"] for r in rows] == ["tak", "TOTAL"]
        for allocator in tables.ALLOCATORS:
            for row in rows:
                assert f"{allocator}-cycles" in row
                assert f"{allocator}-spilled-vars" in row
        # Every strategy computes the benchmark (run_benchmark validates
        # the value), and lazy's counters are the paper's numbers.
        assert rows[0]["lazy-cycles"] > 0

    def test_format(self):
        text = tables.format_allocator_ablation(
            tables.allocator_ablation(["tak"])
        )
        assert "tak" in text
        for allocator in tables.ALLOCATORS:
            assert allocator in text


class TestRunner:
    def test_expected_value_cached(self):
        bench = BENCHMARKS["tak"]
        assert expected_value(bench) == "7"

    def test_run_benchmark_validates(self):
        run = run_benchmark("tak", CompilerConfig())
        assert run.value_text == "7"

    def test_validation_failure_raises(self, monkeypatch):
        from repro.benchsuite import runner

        monkeypatch.setitem(runner._expected_cache, "div-iter", "999")
        bench = BENCHMARKS["div-iter"]
        # div-iter has a baked-in expected of "100"; fake a mismatch
        monkeypatch.setattr(bench, "expected", "999")
        with pytest.raises(AssertionError):
            run_benchmark("div-iter", CompilerConfig())
