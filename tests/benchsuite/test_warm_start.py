"""The warm-start measurement behind ``repro bench --warm-start``.

Wall-clock assertions are kept deliberately loose — this runs on
shared single-core CI runners — but the *ordering* the artifact tier
exists to create must hold: loading a pre-built artifact is cheaper
than recompiling from the ISA tier, which is cheaper than (or at worst
comparable to) a fully cold start.
"""

from repro.benchsuite import vmbench

#: Generous multiplier absorbing scheduler noise on shared runners.
SLACK = 1.5


def test_warm_start_orders_the_tiers():
    doc = vmbench.collect_warm_start(names=("tak", "deriv"), repeats=3)
    assert sorted(doc["benchmarks"]) == ["deriv", "tak"]
    totals = doc["totals"]
    for key in ("cold_s", "isa_ready_s", "artifact_ready_s", "aot_import_s"):
        assert totals[key] > 0.0
    # The point of the tier: artifact warm start beats ISA warm start
    # (it skips predecode + blockcompile entirely) and the cold path.
    assert totals["artifact_ready_s"] <= totals["isa_ready_s"] * SLACK
    assert totals["artifact_ready_s"] < totals["cold_s"]


def test_warm_start_doc_is_baseline_compatible():
    """A BENCH_vm.json with a warm_start section must still pass the
    comparison gate — the section is informational history only."""
    doc = vmbench.collect_baseline(names=["tak"], timing_names=())
    doc["warm_start"] = {"totals": {"cold_s": 1.0}}
    assert vmbench.compare_baseline(doc, doc) == []
