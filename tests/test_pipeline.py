"""Pipeline driver tests."""

import pytest

from repro import (
    CompileTimes,
    CompilerError,
    SchemeError,
    compile_source,
    expand_source,
    run_compiled,
    run_source,
)


class TestCompile:
    def test_compile_returns_program(self):
        compiled = compile_source("(+ 1 2)")
        assert compiled.entry.instructions
        assert compiled.total_instructions() > 0

    def test_compile_records_times(self):
        times = CompileTimes()
        compile_source("(define (f x) x) (f 1)", times=times)
        assert times.total > 0
        for phase in ("read", "expand", "convert", "closure", "allocate", "codegen"):
            assert phase in times.phases
        assert 0 < times.register_allocation_fraction() < 1

    def test_prelude_optional(self):
        with pytest.raises(CompilerError, match="unbound"):
            compile_source("(map car '((1)))", prelude=False)
        compile_source("(map car '((1)))", prelude=True)

    def test_compile_error_propagates(self):
        with pytest.raises(CompilerError):
            compile_source("(nonsense-proc 1)")

    def test_reusable_compiled_program(self):
        compiled = compile_source("(define (f x) (* x x)) (f 12)")
        r1 = run_compiled(compiled)
        r2 = run_compiled(compiled)
        assert r1.value == r2.value == 144
        # counters are fresh per run
        assert r1.counters.instructions == r2.counters.instructions


class TestRun:
    def test_run_source(self):
        assert run_source("(* 6 7)").value == 42

    def test_run_collects_output(self):
        r = run_source('(begin (display "hey") 1)')
        assert r.output == "hey"

    def test_runtime_error_propagates(self):
        with pytest.raises(SchemeError):
            run_source("(car 5)")

    def test_expand_source(self):
        expr = expand_source("(+ 1 2)")

        # prelude wraps the program in its definitions
        assert expr is not None

    def test_max_instructions(self):
        from repro.vm.machine import VMError

        with pytest.raises(VMError):
            run_source(
                "(define (spin) (spin)) (spin)", max_instructions=1000
            )
