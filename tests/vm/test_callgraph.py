"""Activation classifier unit tests (Table 2 machinery)."""

from repro.astnodes import CodeObject, Quote
from repro.vm.callgraph import ActivationClassifier, classify


def make_code(name, syntactic_leaf=False, always_calls=False):
    code = CodeObject(name, [], [], Quote(False))
    code.syntactic_leaf = syntactic_leaf
    code.always_calls = always_calls
    return code


class TestClassify:
    def test_syntactic_leaf(self):
        assert classify(make_code("f", syntactic_leaf=True), False) == "syntactic-leaf"

    def test_non_syntactic_leaf(self):
        assert classify(make_code("f"), False) == "non-syntactic-leaf"

    def test_non_syntactic_internal(self):
        assert classify(make_code("f"), True) == "non-syntactic-internal"

    def test_syntactic_internal(self):
        assert classify(make_code("f", always_calls=True), True) == "syntactic-internal"


class TestShadowStack:
    def test_call_then_return(self):
        c = ActivationClassifier()
        leaf = make_code("leaf", syntactic_leaf=True)
        c.on_call(leaf)
        c.on_return()
        assert c.counts["syntactic-leaf"] == 1

    def test_caller_marked_on_call(self):
        c = ActivationClassifier()
        f = make_code("f")
        g = make_code("g", syntactic_leaf=True)
        c.on_call(f)
        c.on_call(g)
        c.on_return()  # g
        c.on_return()  # f made a call
        assert c.counts["non-syntactic-internal"] == 1
        assert c.counts["syntactic-leaf"] == 1

    def test_tail_call_retires_current(self):
        c = ActivationClassifier()
        f = make_code("f")
        g = make_code("g")
        c.on_call(f)
        c.on_tail_call(g)  # f retires without having called
        c.on_return()
        assert c.counts["non-syntactic-leaf"] == 2

    def test_tail_call_is_not_a_call(self):
        c = ActivationClassifier()
        f = make_code("f")
        g = make_code("g")
        c.on_call(f)
        c.on_tail_call(g)
        # f was retired as a leaf: the tail call did not set made_call
        assert c.counts["non-syntactic-leaf"] == 1

    def test_unwind(self):
        c = ActivationClassifier()
        for name in "abc":
            c.on_call(make_code(name))
        c.unwind_to(1)
        assert len(c.stack) == 1
        assert c.total == 2

    def test_finish(self):
        c = ActivationClassifier()
        c.on_call(make_code("main"))
        c.finish()
        assert c.total == 1
        assert not c.stack

    def test_fractions_sum_to_one(self):
        c = ActivationClassifier()
        c.on_call(make_code("a", syntactic_leaf=True))
        c.on_return()
        c.on_call(make_code("b"))
        c.on_return()
        assert abs(sum(c.fractions().values()) - 1.0) < 1e-9

    def test_empty_fractions(self):
        c = ActivationClassifier()
        assert all(v == 0.0 for v in c.fractions().values())
        assert c.effective_leaf_fraction == 0.0
