"""VM execution semantics, counters, and the cost model."""

import pytest

from repro.config import CompilerConfig, CostModel
from repro.pipeline import run_source
from repro.runtime.values import SchemeError
from repro.sexp.writer import write_datum
from repro.vm.machine import VMError


def run(src, config=None, **kw):
    return run_source(src, config or CompilerConfig(), prelude=False, debug=True, **kw)


class TestExecution:
    def test_constant(self):
        assert run("42").value == 42

    def test_call_and_return(self):
        assert run("(define (f x) (+ x 1)) (f 41)").value == 42

    def test_deep_recursion_uses_vm_stack(self):
        # far deeper than Python recursion would allow in the VM
        src = "(define (count n) (if (zero? n) 0 (+ 1 (count (- n 1))))) (count 20000)"
        assert run(src).value == 20000

    def test_deep_tail_recursion_constant_space(self):
        src = "(define (loop n) (if (zero? n) 'done (loop (- n 1)))) (loop 100000)"
        r = run(src)
        assert write_datum(r.value) == "done"

    def test_closures_share_environment(self):
        src = """
        (define (make-cell v)
          (cons (lambda (ignored) v) (lambda (x) (set! v x))))
        (define cell (make-cell 1))
        ((cdr cell) 99)
        ((car cell) 0)
        """
        assert run(src).value == 99

    def test_output_port(self):
        r = run('(begin (display "x") (display 7) (newline) 0)')
        assert r.output == "x7\n"

    def test_arity_mismatch(self):
        with pytest.raises(SchemeError, match="expected 1"):
            run("(define (f x) x) (f 1 2)")

    def test_apply_non_procedure(self):
        with pytest.raises(SchemeError, match="non-procedure"):
            run("(5 6)")

    def test_instruction_budget(self):
        with pytest.raises(VMError, match="budget"):
            run("(define (loop n) (loop n)) (loop 0)", max_instructions=10_000)


class TestContinuations:
    def test_escape(self):
        assert run("(call/cc (lambda (k) (+ 1 (k 42))))").value == 42

    def test_unused(self):
        assert run("(call/cc (lambda (k) 9))").value == 9

    def test_escape_across_frames(self):
        src = """
        (define (product ls k)
          (cond ((null? ls) 1)
                ((zero? (car ls)) (k 0))
                (else (* (car ls) (product (cdr ls) k)))))
        (call/cc (lambda (k) (product '(1 2 0 4) k)))
        """
        assert run(src).value == 0

    def test_reinvocable_continuation(self):
        # full stack-copying continuations: re-enter an exited frame
        src = """
        (define saved-k #f)
        (define count 0)
        (define r (+ 1 (call/cc (lambda (k) (set! saved-k k) 0))))
        (set! count (+ count 1))
        (if (< count 3) (saved-k r) r)
        """
        assert run(src).value == 3

    def test_continuation_counters(self):
        r = run("(call/cc (lambda (k) (k 1)))")
        assert r.counters.continuations_captured == 1
        assert r.counters.continuations_invoked == 1


class TestCounters:
    def test_instruction_count_positive(self):
        r = run("(+ 1 2)")
        assert r.counters.instructions > 0
        assert r.counters.cycles >= r.counters.instructions

    def test_stack_refs_zero_for_register_code(self):
        r = run("(define (f x y) (+ x y)) (f 1 2)")
        assert r.counters.total_stack_refs == 0

    def test_stack_refs_nonzero_for_baseline(self):
        r = run("(define (f x y) (+ x y)) (f 1 2)", CompilerConfig.baseline())
        assert r.counters.total_stack_refs > 0

    def test_save_restore_counted(self):
        r = run("(define (g n) n) (define (f x) (+ (g x) x)) (f 1)")
        assert r.counters.saves > 0
        assert r.counters.restores > 0

    def test_calls_vs_tail_calls(self):
        r = run(
            "(define (g n) n)"
            "(define (f x) (+ (g x) 1))"
            "(define (loop n) (if (zero? n) 0 (loop (- n 1))))"
            "(begin (f 1) (loop 5))"
        )
        assert r.counters.calls >= 1
        assert r.counters.tail_calls >= 5

    def test_summary_keys(self):
        s = run("(+ 1 2)").counters.summary()
        for key in ("instructions", "cycles", "stack_refs", "calls", "saves", "restores"):
            assert key in s


class TestCostModel:
    SRC = "(define (g n) n) (define (f x) (+ (g x) x)) (+ 0 (f 1))"

    def test_latency_increases_cycles(self):
        fast = run(self.SRC, CompilerConfig(cost_model=CostModel(load_latency=1)))
        slow = run(self.SRC, CompilerConfig(cost_model=CostModel(load_latency=8)))
        assert slow.counters.cycles > fast.counters.cycles
        assert slow.counters.instructions == fast.counters.instructions

    def test_eager_restores_hide_latency(self):
        """§2.2: at high latency, eager restores (issued right after
        the call) stall less per load than lazy loads at first use."""
        src = (
            "(define (g n) n)"
            "(define (f x) (begin (g 0) (+ x (+ x (+ x (+ x x))))))"
            "(let loop ((i 0) (acc 0))"
            "  (if (= i 30) acc (loop (+ i 1) (+ acc (f i)))))"
        )
        cost = CostModel(load_latency=10)
        eager = run_source(
            src, CompilerConfig(cost_model=cost), prelude=False
        )
        lazy = run_source(
            src,
            CompilerConfig(restore_strategy="lazy", cost_model=cost),
            prelude=False,
        )
        eager_stall = eager.counters.cycles / eager.counters.instructions
        lazy_stall = lazy.counters.cycles / lazy.counters.instructions
        assert eager_stall < lazy_stall

    def test_mispredict_penalty(self):
        src = (
            "(define (g n) n)"
            "(define (f p x) (if p (+ (g x) 1) x))"
            "(let loop ((i 0) (acc 0))"
            "  (if (= i 40) acc (loop (+ i 1) (+ acc (f (odd? i) i)))))"
        )
        none = run_source(src, CompilerConfig(branch_prediction=None), prelude=False)
        ft = run_source(
            src, CompilerConfig(branch_prediction="fallthrough"), prelude=False
        )
        assert ft.counters.mispredicts > 0
        assert ft.counters.cycles > none.counters.cycles


class TestClassifier:
    def test_tak_effective_leaves(self):
        src = """
        (define (tak x y z)
          (if (not (< y x)) z
              (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
        (tak 8 4 2)
        """
        r = run(src)
        # the paper's observation: most tak activations make no call
        assert r.classifier.effective_leaf_fraction > 0.5

    def test_syntactic_leaf_classified(self):
        r = run("(define (leaf x) (+ x 1)) (+ 0 (leaf 1))")
        assert r.classifier.counts["syntactic-leaf"] >= 1

    def test_syntactic_internal_classified(self):
        r = run(
            "(define (g n) n)"
            "(define (always x) (+ (g x) 1))"
            "(+ 0 (always 1))"
        )
        assert r.classifier.counts["syntactic-internal"] >= 1

    def test_totals_match_activations(self):
        r = run("(define (f x) (if (zero? x) 0 (+ 1 (f (- x 1))))) (f 5)")
        assert r.classifier.total >= 6


class TestStackShrink:
    """The VM stack must not stay at its high-water mark forever: once
    the live prefix drops below a quarter of an oversized stack, the
    dead tail is released (regression test for the ever-growing-stack
    bug)."""

    SOURCE = """
    (define (grow n) (if (zero? n) 0 (+ 1 (grow (- n 1)))))
    (define (leaf-loop n acc) (if (zero? n) acc (leaf-loop (- n 1) (+ acc 1))))
    (begin (grow 20000) (leaf-loop 1000 0))
    """

    @pytest.mark.parametrize("vm_fast", [False, True], ids=["legacy", "fast"])
    def test_stack_released_after_deep_recursion(self, vm_fast):
        from repro.pipeline import compile_source, run_compiled
        from repro.vm.machine import STACK_SHRINK_TRIGGER

        compiled = compile_source(self.SOURCE, CompilerConfig(), prelude=False)
        result = run_compiled(compiled, vm_fast=vm_fast)
        assert result.value == 1000
        machine = result.machine
        assert machine.stack_shrinks >= 1
        # Capacity ends near the shrink floor, far below the deep
        # recursion's high-water mark.
        assert machine.stack_capacity <= STACK_SHRINK_TRIGGER

    @pytest.mark.parametrize("vm_fast", [False, True], ids=["legacy", "fast"])
    def test_shallow_programs_never_shrink(self, vm_fast):
        from repro.pipeline import compile_source, run_compiled

        compiled = compile_source("(+ 20 22)", CompilerConfig(), prelude=False)
        result = run_compiled(compiled, vm_fast=vm_fast)
        assert result.value == 42
        assert result.machine.stack_shrinks == 0
