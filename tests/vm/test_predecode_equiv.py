"""Fast-path equivalence: the trace-compiled VM vs the legacy loop.

The whole design of the fast path (``repro.vm.predecode`` +
``repro.vm.blockcompile``) rests on one claim: it changes *nothing*
observable.  This suite runs every non-heavy benchmark and a batch of
generated fuzz programs under both loops from the same compiled
program and asserts bit-identical values, output, counters, and
per-procedure profiles.

The single documented relaxation is the instruction budget: the fast
loop checks it once per trace, so a budget-exceeded run may raise a
few instructions later than the legacy loop.  Whether the budget is
exceeded at all is still identical (the totals are identical), so the
fuzz half asserts error-class agreement and skips effect comparison on
budget errors.
"""

import pytest

from repro.benchsuite.programs import BENCHMARKS
from repro.config import CompilerConfig
from repro.errors import CompilerError
from repro.fuzz.genprog import generate_program
from repro.pipeline import compile_source, run_compiled
from repro.runtime.values import SchemeError
from repro.sexp.writer import write_datum
from repro.vm.machine import VMError

BENCH_NAMES = sorted(n for n, b in BENCHMARKS.items() if not b.heavy)

FUZZ_SEED = 4242
FUZZ_COUNT = 50
FUZZ_BUDGET = 2_000_000


def assert_equivalent(compiled, profile=True):
    slow = run_compiled(compiled, profile=profile, vm_fast=False)
    fast = run_compiled(compiled, profile=profile, vm_fast=True)
    assert write_datum(slow.value) == write_datum(fast.value)
    assert slow.output == fast.output
    assert slow.counters.as_dict() == fast.counters.as_dict()
    if profile:
        assert slow.profile.as_rows() == fast.profile.as_rows()
    assert slow.machine.stack_capacity == fast.machine.stack_capacity
    assert slow.machine.stack_shrinks == fast.machine.stack_shrinks
    assert slow.classifier.counts == fast.classifier.counts


@pytest.mark.parametrize("name", BENCH_NAMES)
def test_benchmark_equivalence(name):
    compiled = compile_source(BENCHMARKS[name].source)
    assert_equivalent(compiled)


@pytest.mark.parametrize(
    "config",
    [
        CompilerConfig(num_arg_regs=0, num_temp_regs=0),
        CompilerConfig(num_arg_regs=1, num_temp_regs=2),
        CompilerConfig(save_convention="callee"),
        CompilerConfig(branch_prediction="static-calls"),
    ],
    ids=["r0", "r2", "callee-save", "predict"],
)
def test_benchmark_equivalence_config_spread(config):
    """A register-starved, a tiny, a callee-save, and a predicted
    configuration: the shapes that exercise shuffles, spills, and
    mispredict accounting."""
    for name in ("tak", "ctak", "destruct", "fxtriang"):
        compiled = compile_source(BENCHMARKS[name].source, config)
        assert_equivalent(compiled)


@pytest.mark.parametrize("index", range(FUZZ_COUNT))
def test_fuzz_program_equivalence(index):
    program = generate_program(FUZZ_SEED, index)
    try:
        compiled = compile_source(program.source)
    except (CompilerError, RecursionError):  # pragma: no cover
        pytest.skip("generator produced an uncompilable program")

    def run(vm_fast):
        try:
            result = run_compiled(
                compiled, max_instructions=FUZZ_BUDGET, vm_fast=vm_fast
            )
            return ("ok", result)
        except VMError as exc:
            return ("vmerror", str(exc))
        except SchemeError as exc:
            return ("schemeerror", str(exc))

    slow_kind, slow = run(False)
    fast_kind, fast = run(True)
    assert slow_kind == fast_kind
    if slow_kind == "ok":
        assert write_datum(slow.value) == write_datum(fast.value)
        assert slow.output == fast.output
        assert slow.counters.as_dict() == fast.counters.as_dict()
    elif slow_kind == "schemeerror":
        assert slow == fast
    # vmerror: the budget relaxation — agreement on the error class is
    # the guarantee; the raise point (and thus partial effects) may
    # differ by up to one trace.
