"""The permutation instructions (``swap``/``permi``) at every layer.

The permopt shuffle strategy is the only emitter, but the opcodes are
ordinary ISA citizens: the legacy interpreter, the predecoder, and the
trace compiler must all agree on their semantics, cost (one issue
cycle), and counter effect (``swaps`` +1 per instruction).
"""

import pytest

from repro.backend.isa import ISA_SPEC, OPCODES, PERMI_MAX, format_instruction
from repro.config import CompilerConfig, CostModel
from repro.vm.blockcompile import ACC_SWAP
from repro.vm.machine import Machine
from repro.vm.predecode import OP_PERMI, OP_SWAP, predecode_code

from tests.vm.test_isa_level import RET, CP, RV, S0, S1, build

S2 = 5


def run_both(instructions, **kw):
    """Run hand-written instructions under the legacy and fast loops and
    assert identical value/counters before returning the legacy pair."""
    legacy = Machine(build(instructions, **kw), vm_fast=False)
    fast = Machine(build(instructions, **kw), vm_fast=True)
    lv, fv = legacy.run(), fast.run()
    assert lv == fv
    assert legacy.counters.as_dict() == fast.counters.as_dict()
    return lv, legacy


class TestIsaSurface:
    def test_opcodes_registered(self):
        assert "swap" in OPCODES
        assert "permi" in OPCODES

    def test_spec_rows_present(self):
        ops = {entry["op"] for entry in ISA_SPEC}
        assert {"swap", "permi"} <= ops

    def test_format_instruction(self):
        names = ["ret", "cp", "rv", "s0", "s1", "s2"]
        assert format_instruction(["swap", S0, S1], names) == "swap %s0, %s1"
        assert (
            format_instruction(["permi", [S0, S1, S2]], names)
            == "permi (%s0, %s1, %s2)"
        )


class TestSwapSemantics:
    def test_swap_exchanges_registers(self):
        value, m = run_both([
            ("li", S0, 1),
            ("li", S1, 2),
            ("swap", S0, S1),
            ("mov", RV, S0),
            ("return",),
        ])
        assert value == 2
        assert m.counters.swaps == 1

    def test_swap_other_direction(self):
        value, _ = run_both([
            ("li", S0, 1),
            ("li", S1, 2),
            ("swap", S0, S1),
            ("mov", RV, S1),
            ("return",),
        ])
        assert value == 1

    def test_swap_costs_one_cycle(self):
        base = [("li", S0, 1), ("li", S1, 2), ("mov", RV, S0), ("return",)]
        swapped = [
            ("li", S0, 1),
            ("li", S1, 2),
            ("swap", S0, S1),
            ("mov", RV, S0),
            ("return",),
        ]
        _, a = run_both(base)
        _, b = run_both(swapped)
        assert b.counters.cycles == a.counters.cycles + 1
        assert b.counters.instructions == a.counters.instructions + 1


class TestPermiSemantics:
    def test_left_rotation(self):
        # permi (r0, r1, r2): r0 <- old r1, r1 <- old r2, r2 <- old r0.
        for out_reg, expected in ((S0, 2), (S1, 3), (S2, 1)):
            value, m = run_both([
                ("li", S0, 1),
                ("li", S1, 2),
                ("li", S2, 3),
                ("permi", [S0, S1, S2]),
                ("mov", RV, out_reg),
                ("return",),
            ])
            assert value == expected
            assert m.counters.swaps == 1

    def test_two_element_permi_is_a_swap(self):
        value, _ = run_both([
            ("li", S0, 1),
            ("li", S1, 2),
            ("permi", [S0, S1]),
            ("mov", RV, S0),
            ("return",),
        ])
        assert value == 2

    def test_permi_costs_one_cycle(self):
        base = [
            ("li", S0, 1),
            ("li", S1, 2),
            ("li", S2, 3),
            ("mov", RV, S0),
            ("return",),
        ]
        rotated = [
            ("li", S0, 1),
            ("li", S1, 2),
            ("li", S2, 3),
            ("permi", [S0, S1, S2]),
            ("mov", RV, S0),
            ("return",),
        ]
        _, a = run_both(base)
        _, b = run_both(rotated)
        assert b.counters.cycles == a.counters.cycles + 1

    def test_chunked_rotation_composes(self):
        # A 5-cycle decomposed the way codegen chunks it (PERMI_MAX wide,
        # overlapping by one) must equal the full left rotation.
        regs = [S0, S1, S2, 6, 7]
        prog = [("li", r, i + 1) for i, r in enumerate(regs)]
        i = 0
        while i < len(regs) - 1:
            group = regs[i : i + PERMI_MAX]
            if len(group) == 2:
                prog.append(("swap", group[0], group[1]))
            else:
                prog.append(("permi", list(group)))
            i += len(group) - 1
        prog += [("mov", RV, S0), ("return",)]
        value, m = run_both(prog)
        # Full rotation: S0 gets old regs[1]'s value.
        assert value == 2
        assert m.counters.swaps == 2


class TestStallInteraction:
    def test_swap_waits_for_pending_load(self):
        cfg_fast = CompilerConfig(cost_model=CostModel(load_latency=1))
        cfg_slow = CompilerConfig(cost_model=CostModel(load_latency=10))
        prog = [
            ("li", S0, 7),
            ("st", 0, S0, "spill"),
            ("li", S0, 0),
            ("ld", S0, 0, "spill"),
            ("li", S1, 1),
            ("swap", S0, S1),  # must see the loaded value
            ("mov", RV, S1),
            ("return",),
        ]
        v_fast, a = run_both(prog, config=cfg_fast)
        v_slow, b = run_both(prog, config=cfg_slow)
        assert v_fast == v_slow == 7
        assert b.counters.cycles > a.counters.cycles


class TestPredecode:
    def test_int_opcodes(self):
        compiled = build([
            ("swap", S0, S1),
            ("permi", [S0, S1, S2]),
            ("return",),
        ])
        coded = predecode_code(compiled.entry)
        assert coded[0] == (OP_SWAP, S0, S1)
        assert coded[1] == (OP_PERMI, (S0, S1, S2))

    def test_acc_slot_distinct(self):
        # ACC_SWAP must be its own accumulator slot, not aliasing moves.
        from repro.vm import aotrt, blockcompile

        assert ACC_SWAP != blockcompile.ACC_MOV
        assert aotrt.ACC_SWAP == ACC_SWAP
        assert aotrt.ACC_SIZE == blockcompile.ACC_SIZE


class TestBlockcompileFacts:
    def test_swap_after_closure_bind_stays_correct(self):
        """Permuting a register that holds a known closure must not leave
        the trace compiler believing the closure is still there (the
        proven-callee fact table is permuted along with the values)."""
        src = """
        (define (apply-twice f x) (f (f x)))
        (define (inc n) (+ n 1))
        (define (flip f x n)
          (if (= n 0) (apply-twice f x) (flip f x (- n 1))))
        (flip inc 5 3)
        """
        from repro.pipeline import compile_source, run_compiled

        for strategy in ("greedy", "permopt"):
            cfg = CompilerConfig(shuffle_strategy=strategy)
            compiled = compile_source(src, cfg)
            slow = run_compiled(compiled, vm_fast=False)
            fast = run_compiled(compiled, vm_fast=True)
            assert slow.value == fast.value == 7
            assert slow.counters.as_dict() == fast.counters.as_dict()
