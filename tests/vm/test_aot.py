"""The AOT emitter: equivalence, direct-call collapse, and purity.

An emitted module's whole claim is *exact conservation*: value, output,
instruction/cycle counters, and activation classification must be
bit-identical to both in-process loops, while the executing process
never imports the compiler.  The equivalence half mirrors
``test_predecode_equiv`` (benchsuite + fuzz programs); the purity half
runs an emitted module in a subprocess and inspects which ``repro``
modules actually loaded.
"""

import importlib.util
import json
import os
import subprocess
import sys

import pytest

import repro.vm.aotrt as aotrt
import repro.vm.blockcompile as blockcompile
from repro.benchsuite.programs import BENCHMARKS
from repro.config import CompilerConfig
from repro.errors import CompilerError
from repro.fuzz.genprog import generate_program
from repro.pipeline import compile_source, run_compiled
from repro.runtime.values import SchemeError
from repro.sexp.writer import write_datum
from repro.vm.machine import VMError
from repro.vm.aotemit import EmitInfo, emit_module, emit_module_info
from repro.vm.predecode import KIND_NAMES

BENCH_NAMES = sorted(n for n, b in BENCHMARKS.items() if not b.heavy)

FUZZ_SEED = 20260808
FUZZ_COUNT = 25

#: Modules whose presence in an emitted module's process would mean
#: the compiler leaked into the runtime slice.
COMPILER_MODULES = (
    "repro.pipeline",
    "repro.frontend",
    "repro.alloc",
    "repro.backend",
    "repro.vm.predecode",
    "repro.vm.blockcompile",
    "repro.vm.machine",
    "repro.vm.aotemit",
    "repro.serve",
)


def _import_emitted(source: str, tmp_path, name: str):
    path = os.path.join(str(tmp_path), f"{name}.py")
    with open(path, "w") as handle:
        handle.write(source)
    spec = importlib.util.spec_from_file_location(f"aot_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def assert_aot_equivalent(compiled, tmp_path, name):
    reference = run_compiled(compiled)
    module = _import_emitted(emit_module(compiled, name), tmp_path, name)
    result = module.run()
    assert write_datum(result.value) == write_datum(reference.value)
    assert result.output == reference.output
    assert result.counters.as_dict() == reference.counters.as_dict()
    assert result.classifier.counts == reference.classifier.counts


@pytest.mark.parametrize("name", BENCH_NAMES)
def test_benchmark_aot_equivalence(name, tmp_path):
    compiled = compile_source(BENCHMARKS[name].source)
    assert_aot_equivalent(compiled, tmp_path, name.replace("-", "_"))


@pytest.mark.parametrize("index", range(FUZZ_COUNT))
def test_fuzz_aot_equivalence(index, tmp_path):
    program = generate_program(FUZZ_SEED, index)
    try:
        compiled = compile_source(program.source)
        reference = run_compiled(compiled)
    except (CompilerError, SchemeError, VMError) as exc:
        pytest.skip(f"generated program does not run cleanly: {exc}")
    module = _import_emitted(
        emit_module(compiled, f"fuzz-{index}"), tmp_path, f"fuzz_{index}"
    )
    result = module.run()
    assert write_datum(result.value) == write_datum(reference.value)
    assert result.output == reference.output
    assert result.counters.as_dict() == reference.counters.as_dict()


def test_direct_call_collapse_fires_for_tak(tmp_path):
    compiled = compile_source(BENCHMARKS["tak"].source)
    info = EmitInfo(0, 0, 0, 0)
    emit_module_info(compiled, "tak", info)
    assert info.call_sites > 0
    assert 0 < info.direct_calls <= info.call_sites
    # And collapsing must not change behaviour (the no-collapse module
    # is the control).
    plain = compile_source(
        BENCHMARKS["tak"].source, CompilerConfig(aot_direct_calls=False)
    )
    control = EmitInfo(0, 0, 0, 0)
    source = emit_module_info(plain, "tak", control)
    assert control.direct_calls == 0
    module = _import_emitted(source, tmp_path, "tak_dynamic")
    result = module.run()
    reference = run_compiled(compiled)
    assert write_datum(result.value) == write_datum(reference.value)
    assert result.counters.as_dict() == reference.counters.as_dict()


def test_emitted_module_runs_without_compiler(tmp_path):
    """The purity claim, checked end to end: a fresh interpreter runs
    the emitted module and reports which repro modules were loaded."""
    compiled = compile_source(BENCHMARKS["tak"].source)
    path = os.path.join(str(tmp_path), "tak_aot.py")
    with open(path, "w") as handle:
        handle.write(emit_module(compiled, "tak"))
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(aotrt.__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, path, "--json"],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    doc = json.loads(proc.stdout)
    reference = run_compiled(compiled)
    assert doc["value"] == write_datum(reference.value)
    assert doc["counters"] == reference.counters.as_dict()
    loaded = doc["repro_modules"]
    assert "repro.vm.aotrt" in loaded
    for banned in COMPILER_MODULES:
        hits = [m for m in loaded if m == banned or m.startswith(banned + ".")]
        assert not hits, f"compiler module leaked into the AOT runtime: {hits}"


def test_runtime_constants_stay_in_sync():
    """``aotrt`` duplicates the trace-protocol constants so emitted
    modules never import the compiler; this pins the two copies (and
    the kind-name table the counters use) together."""
    for name in (
        "K_FALL", "K_CALL", "K_TAIL", "K_CALLCC", "K_RET", "K_HALT",
        "ACC_PRIM", "ACC_MOV", "ACC_BRANCH", "ACC_MISS", "ACC_CALL",
        "ACC_TAIL", "ACC_CLO", "ACC_CC_CAP", "ACC_CC_INV",
        "ACC_READS", "ACC_WRITES", "ACC_SWAP", "ACC_SIZE",
    ):
        assert getattr(aotrt, name) == getattr(blockcompile, name), name
    # The direct kinds exist only on the AOT side, above the shared ones.
    assert aotrt.K_CALL_DIRECT == aotrt.K_HALT + 1
    assert aotrt.K_TAIL_DIRECT == aotrt.K_HALT + 2
    assert tuple(KIND_NAMES) == ("save", "restore", "spill", "arg", "temp")
