"""The executable-artifact tier: framing, staleness, and cache behaviour.

The format promise (docs/aot.md): an artifact either loads into the
exact executable state ``build_artifact`` captured, or it raises —
``ArtifactCorrupt`` for damage, ``ArtifactStale`` for any version or
fingerprint skew — and the cache treats both as a plain miss.  Nothing
a damaged artifact file contains may ever crash a worker or change a
program's observable behaviour.
"""

import importlib.util

import pytest

from repro.config import CompilerConfig
from repro.pipeline import compile_source, run_compiled
from repro.serve.cache import CompileCache, ShardedCompileCache
from repro.sexp.writer import write_datum
from repro.vm import artifact as artifact_mod
from repro.vm.artifact import (
    ArtifactCorrupt,
    ArtifactStale,
    build_artifact,
    load_artifact,
)

SOURCE = """
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(tak 14 8 2)
"""


def _run_signature(compiled):
    result = run_compiled(compiled)
    return (
        write_datum(result.value),
        result.output,
        result.counters.as_dict(),
        result.classifier.counts,
    )


# -- framing and round-trip -------------------------------------------


def test_round_trip_preserves_execution():
    compiled = compile_source(SOURCE)
    reference = _run_signature(compiled)
    data = build_artifact(compiled)
    loaded = load_artifact(data)
    # The executable state arrives pre-built: no predecode/blockcompile
    # work is left to do.
    assert all(code.fast_instructions is not None for code in loaded.codes)
    assert all(code.fast_blocks is not None for code in loaded.codes)
    assert _run_signature(loaded) == reference


def test_round_trip_checks_fingerprint():
    compiled = compile_source(SOURCE)
    data = build_artifact(compiled)
    load_artifact(data, expected_fingerprint=compiled.config.fingerprint())
    with pytest.raises(ArtifactStale):
        load_artifact(data, expected_fingerprint="not-this-config")


def test_truncated_artifact_is_corrupt():
    data = build_artifact(compile_source(SOURCE))
    for cut in (0, 3, len(data) // 2, len(data) - 1):
        with pytest.raises(ArtifactCorrupt):
            load_artifact(data[:cut])


def test_bit_flip_is_corrupt():
    data = build_artifact(compile_source(SOURCE))
    flipped = bytearray(data)
    flipped[len(data) // 2] ^= 0x40
    with pytest.raises(ArtifactCorrupt):
        load_artifact(bytes(flipped))


def test_format_version_skew_is_stale(monkeypatch):
    data = build_artifact(compile_source(SOURCE))
    monkeypatch.setattr(artifact_mod, "ARTIFACT_VERSION", 999)
    with pytest.raises(ArtifactStale):
        load_artifact(data)


def test_round_trip_preserves_permutation_opcodes():
    """permopt output carries the swap/permi opcodes through the packed
    instruction streams and the marshalled trace modules."""
    rotation = """
    (define (rot a b c n)
      (if (= n 0) (+ a (* 2 b) (* 3 c)) (rot b c a (- n 1))))
    (rot 1 2 3 50)
    """
    compiled = compile_source(
        rotation, CompilerConfig(shuffle_strategy="permopt")
    )
    reference = _run_signature(compiled)
    assert reference[2]["swaps"] > 0
    loaded = load_artifact(build_artifact(compiled))
    assert _run_signature(loaded) == reference


def test_format_version_covers_permutation_isa():
    """The swap/permi extension changed the decoded stream and the trace
    accumulator layout, so the format number was bumped: artifacts from
    a version-1 build must degrade to misses, never misexecute."""
    assert artifact_mod.ARTIFACT_VERSION >= 2


def test_py_magic_skew_is_stale(monkeypatch):
    data = build_artifact(compile_source(SOURCE))
    monkeypatch.setattr(importlib.util, "MAGIC_NUMBER", b"\x00\x00\x00\x00")
    with pytest.raises(ArtifactStale):
        load_artifact(data)


def test_package_version_skew_is_stale(monkeypatch):
    data = build_artifact(compile_source(SOURCE))
    monkeypatch.setattr(artifact_mod, "__version__", "0.0.0-other")
    with pytest.raises(ArtifactStale):
        load_artifact(data)


# -- cache integration ------------------------------------------------


def test_artifact_hit_skips_isa_tier(tmp_path):
    root = str(tmp_path)
    config = CompilerConfig()
    CompileCache(root=root).compile(SOURCE, config)
    warm = CompileCache(root=root)
    compiled, hit = warm.compile(SOURCE, config)
    assert hit
    assert warm.stats.artifact_hits == 1
    assert warm.stats.disk_hits == 0
    assert all(code.fast_blocks is not None for code in compiled.codes)


def test_corrupt_artifact_falls_back_to_isa_tier(tmp_path):
    root = str(tmp_path)
    config = CompilerConfig()
    cold = CompileCache(root=root)
    cold.compile(SOURCE, config)
    reference = _run_signature(compile_source(SOURCE, config))
    (entry,) = cold.entries(tier="artifacts")
    with open(entry.path, "rb") as handle:
        data = bytearray(handle.read())
    data[len(data) // 2] ^= 0x01
    with open(entry.path, "wb") as handle:
        handle.write(bytes(data))
    warm = CompileCache(root=root)
    compiled, hit = warm.compile(SOURCE, config)
    assert hit  # the ISA tier still serves it
    assert warm.stats.artifact_misses == 1
    assert warm.stats.artifact_corruptions == 1
    assert warm.stats.disk_hits == 1
    assert _run_signature(compiled) == reference


def test_stale_artifact_recompiles_without_crash(tmp_path, monkeypatch):
    root = str(tmp_path)
    config = CompilerConfig()
    CompileCache(root=root).compile(SOURCE, config)
    # A later release bumps the format: everything already on disk in
    # the artifact tier must degrade to a miss, never an error.
    monkeypatch.setattr(artifact_mod, "ARTIFACT_VERSION", 999)
    warm = CompileCache(root=root)
    compiled, hit = warm.compile(SOURCE, config)
    assert hit  # ISA tier is version-keyed separately and still valid
    assert warm.stats.artifact_hits == 0
    assert warm.stats.artifact_misses == 1
    result = run_compiled(compiled)
    assert write_datum(result.value) == "3"


def test_artifact_disabled_configs_skip_the_tier(tmp_path):
    root = str(tmp_path)
    for config in (
        CompilerConfig(artifact_cache=False),
        CompilerConfig(vm_fast=False),
    ):
        cache = CompileCache(root=root)
        cache.compile(SOURCE, config)
        assert cache.stats.artifact_stores == 0
        assert cache.entries(tier="artifacts") == []


def test_sharded_and_plain_caches_interoperate(tmp_path):
    root = str(tmp_path)
    config = CompilerConfig()
    ShardedCompileCache(root=root, shards=4).compile(SOURCE, config)
    plain = CompileCache(root=root)
    _, hit = plain.compile(SOURCE, config)
    assert hit
    assert plain.stats.artifact_hits == 1

    sharded = ShardedCompileCache(root=root, shards=4)
    _, hit = sharded.compile(SOURCE, config)
    assert hit
    assert sharded.stats.artifact_hits == 1
