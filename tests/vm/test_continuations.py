"""Stress tests for first-class continuations in the VM (stack
copying, in the spirit of the paper's [11] Hieb/Dybvig)."""

import pytest

from repro.config import CompilerConfig
from repro.pipeline import run_source
from repro.sexp.writer import write_datum
from tests.conftest import CONFIG_MATRIX, assert_compiles_like_interpreter


def run(src, config=None):
    return run_source(src, config or CompilerConfig(), prelude=False, debug=True)


class TestEscape:
    def test_product_short_circuit(self):
        src = """
        (define (product ls k)
          (cond ((null? ls) 1)
                ((zero? (car ls)) (k 'zero))
                (else (* (car ls) (product (cdr ls) k)))))
        (call/cc (lambda (k) (product '(1 2 3 0 4) k)))
        """
        assert write_datum(run(src).value) == "zero"

    def test_deep_escape_unwinds_many_frames(self):
        src = """
        (define (dig n k) (if (zero? n) (k 'bottom) (+ 1 (dig (- n 1) k))))
        (call/cc (lambda (k) (dig 500 k)))
        """
        assert write_datum(run(src).value) == "bottom"

    def test_escape_value_threading(self):
        src = "(+ 1000 (call/cc (lambda (k) (+ 1 (k 337)))))"
        assert run(src).value == 1337


class TestReentry:
    def test_loop_via_stored_continuation(self):
        src = """
        (define k-cell (cons #f #f))
        (define n-cell (cons 0 #f))
        (define r (call/cc (lambda (k) (set-car! k-cell k) 0)))
        (set-car! n-cell (+ (car n-cell) 1))
        (if (< (car n-cell) 5)
            ((car k-cell) (+ r 1))
            (cons r (car n-cell)))
        """
        result = run(src)
        assert write_datum(result.value) == "(4 . 5)"

    def test_generator_style_back_and_forth(self):
        # continuation captured inside a consumed frame, re-entered
        src = """
        (define saved (cons #f #f))
        (define log (cons '() #f))
        (define (emit x) (set-car! log (cons x (car log))))
        (define (producer)
          (emit (call/cc (lambda (k) (set-car! saved k) 'first)))
          'done)
        (producer)
        (if (< (length (car log)) 3)
            ((car saved) 'again)
            (car log))
        """
        result = run(src)
        assert write_datum(result.value) == "(again again first)"

    def test_continuation_survives_frame_reuse(self):
        # after the captured frame returns, deeper calls reuse its
        # stack space; re-entry must restore the snapshot
        src = """
        (define saved (cons #f #f))
        (define count (cons 0 #f))
        (define (capture x) (call/cc (lambda (k) (set-car! saved k) x)))
        (define (noise n) (if (zero? n) 0 (+ 1 (noise (- n 1)))))
        (define r (capture 10))
        (noise 50)
        (set-car! count (+ (car count) 1))
        (if (< (car count) 3) ((car saved) (+ r 1)) r)
        """
        assert run(src).value == 12


class TestAcrossConfigs:
    SRC = """
    (define (find-leak ls k)
      (cond ((null? ls) 'none)
            ((< (car ls) 0) (k (car ls)))
            (else (find-leak (cdr ls) k))))
    (call/cc (lambda (k) (find-leak '(3 1 4 -1 5) k)))
    """

    @pytest.mark.parametrize("config", CONFIG_MATRIX)
    def test_matches_interpreter(self, config):
        assert_compiles_like_interpreter(self.SRC, config, prelude=False)


class TestClassifierWithContinuations:
    def test_abandoned_activations_retired(self):
        src = """
        (define (deep n k) (if (zero? n) (k 'out) (+ 1 (deep (- n 1) k))))
        (call/cc (lambda (k) (deep 10 k)))
        """
        result = run(src)
        # all 11 deep activations + receiver + main retire
        assert result.classifier.total >= 12
