"""Opcode-level VM tests: hand-written instruction sequences."""

import pytest

from repro.astnodes import CodeObject, Program, Quote
from repro.backend.codegen import CompiledProgram
from repro.config import CompilerConfig, CostModel
from repro.core.allocator import ProgramAllocation
from repro.core.registers import RegisterFile
from repro.runtime.values import SchemeError
from repro.vm.machine import Machine, VMError


def build(instructions, frame_size=4, config=None, extra_codes=()):
    """Assemble a runnable program from raw entry instructions."""
    config = config or CompilerConfig()
    entry = CodeObject("main", [], [], Quote(False))
    entry.instructions = [list(i) for i in instructions]
    entry.frame_size = frame_size
    codes = [entry, *extra_codes]
    program = Program(codes, entry)
    regfile = RegisterFile(config.num_arg_regs, config.num_temp_regs)
    allocation = ProgramAllocation(regfile)
    compiled = CompiledProgram.__new__(CompiledProgram)
    compiled.program = program
    compiled.allocation = allocation
    compiled.config = config
    compiled.regfile = regfile
    compiled.entry = entry
    return compiled


def run(instructions, **kw):
    machine = Machine(build(instructions, **kw))
    value = machine.run()
    return value, machine


RET, CP, RV = 0, 1, 2
S0, S1 = 3, 4


class TestDataMovement:
    def test_li_return(self):
        value, _ = run([("li", RV, 42), ("return",)])
        assert value == 42

    def test_mov(self):
        value, _ = run([("li", S0, 7), ("mov", RV, S0), ("return",)])
        assert value == 7

    def test_st_ld_roundtrip(self):
        value, m = run([
            ("li", S0, 99),
            ("st", 0, S0, "spill"),
            ("li", S0, 0),
            ("ld", RV, 0, "spill"),
            ("return",),
        ])
        assert value == 99
        assert m.counters.stack_writes == {"spill": 1}
        assert m.counters.stack_reads == {"spill": 1}

    def test_st_out_ld_out(self):
        value, _ = run([
            ("li", S0, 5),
            ("st_out", 0, S0, "arg"),
            ("ld_out", RV, 0, "temp"),
            ("return",),
        ])
        assert value == 5


class TestPrimAndBranches:
    def test_prim_with_registers_and_immediates(self):
        value, _ = run([
            ("li", S0, 40),
            ("prim", RV, "+", [S0, ("imm", 2)]),
            ("return",),
        ])
        assert value == 42

    def test_brf_taken_on_false(self):
        value, _ = run([
            ("li", S0, False),
            ("brf", S0, 4, None),
            ("li", RV, 1),
            ("return",),
            ("li", RV, 2),
            ("return",),
        ])
        assert value == 2

    def test_brf_falls_through_on_truthy(self):
        value, _ = run([
            ("li", S0, 0),  # 0 is true in Scheme
            ("brf", S0, 4, None),
            ("li", RV, 1),
            ("return",),
            ("li", RV, 2),
            ("return",),
        ])
        assert value == 1

    def test_brt_taken_on_truthy(self):
        value, _ = run([
            ("li", S0, 1),
            ("brt", S0, 4, None),
            ("li", RV, 1),
            ("return",),
            ("li", RV, 2),
            ("return",),
        ])
        assert value == 2

    def test_jmp(self):
        value, _ = run([
            ("jmp", 3),
            ("li", RV, 1),
            ("return",),
            ("li", RV, 9),
            ("return",),
        ])
        assert value == 9

    def test_prim_error_annotated_with_procedure(self):
        with pytest.raises(SchemeError, match=r"\(in main\)"):
            run([("prim", RV, "car", [("imm", 5)]), ("return",)])


class TestCallsAtIsaLevel:
    def make_callee(self, nparams, instructions):
        code = CodeObject("callee", [object()] * 0, [], Quote(False))
        code.params = [type("P", (), {})() for _ in range(nparams)]
        code.instructions = [list(i) for i in instructions]
        code.frame_size = 2
        return code

    def test_call_and_return(self):
        config = CompilerConfig()
        a0 = 6  # first arg register with 3 scratch regs
        callee = self.make_callee(1, [
            ("prim", RV, "+", [a0, ("imm", 1)]),
            ("return",),
        ])
        compiled = build(
            [
                ("clo_alloc", CP, callee, 0),
                ("li", a0, 41),
                ("call", 1),
                ("li", RET, None),  # restore the halt sentinel by hand
                ("return",),
            ],
            config=config,
            extra_codes=[callee],
        )
        machine = Machine(compiled)
        assert machine.run() == 42
        assert machine.counters.calls == 1

    def test_call_arity_mismatch(self):
        callee = self.make_callee(2, [("return",)])
        compiled = build(
            [
                ("clo_alloc", CP, callee, 0),
                ("call", 1),
                ("return",),
            ],
            extra_codes=[callee],
        )
        with pytest.raises(SchemeError, match="expected 2"):
            Machine(compiled).run()

    def test_call_non_procedure(self):
        compiled = build([
            ("li", CP, 5),
            ("call", 0),
            ("return",),
        ])
        with pytest.raises(SchemeError, match="non-procedure"):
            Machine(compiled).run()


class TestClosureOps:
    def test_closure_and_clo_ref(self):
        inner = CodeObject("inner", [], [], Quote(False))
        inner.instructions = [("clo_ref", RV, 0), ("return",)]
        inner.frame_size = 0
        value, _ = run(
            [
                ("li", S0, 77),
                ("closure", CP, inner, [S0]),
                ("call", 0),
                ("li", RET, None),
                ("return",),
            ],
            extra_codes=[inner],
        )
        assert value == 77

    def test_clo_alloc_and_set(self):
        inner = CodeObject("inner", [], [], Quote(False))
        inner.instructions = [("clo_ref", RV, 0), ("return",)]
        inner.frame_size = 0
        value, _ = run(
            [
                ("clo_alloc", S0, inner, 1),
                ("li", S1, 31),
                ("clo_set", S0, 0, S1),
                ("mov", CP, S0),
                ("call", 0),
                ("li", RET, None),
                ("return",),
            ],
            extra_codes=[inner],
        )
        assert value == 31


class TestCostAccounting:
    def test_load_latency_stalls_immediate_use(self):
        fast_cfg = CompilerConfig(cost_model=CostModel(load_latency=1))
        slow_cfg = CompilerConfig(cost_model=CostModel(load_latency=10))
        prog = [
            ("li", S0, 1),
            ("st", 0, S0, "spill"),
            ("ld", S0, 0, "spill"),
            ("prim", RV, "+", [S0, ("imm", 1)]),  # immediate use: stalls
            ("return",),
        ]
        _, fast = run(prog, config=fast_cfg)
        _, slow = run(prog, config=slow_cfg)
        assert slow.counters.cycles > fast.counters.cycles
        assert slow.counters.instructions == fast.counters.instructions

    def test_independent_work_hides_latency(self):
        cfg = CompilerConfig(cost_model=CostModel(load_latency=4))
        stalled = [
            ("li", S0, 1),
            ("st", 0, S0, "spill"),
            ("ld", S0, 0, "spill"),
            ("prim", RV, "+", [S0, ("imm", 1)]),
            ("return",),
        ]
        overlapped = [
            ("li", S0, 1),
            ("st", 0, S0, "spill"),
            ("ld", S0, 0, "spill"),
            ("li", S1, 0),  # independent fillers overlap the load
            ("li", S1, 0),
            ("li", S1, 0),
            ("prim", RV, "+", [S0, ("imm", 1)]),
            ("return",),
        ]
        _, a = run(stalled, config=cfg)
        _, b = run(overlapped, config=cfg)
        # three extra instructions, but not three extra cycles: the
        # fillers execute inside the load shadow
        assert b.counters.instructions == a.counters.instructions + 3
        assert b.counters.cycles <= a.counters.cycles + 1

    def test_instruction_budget_enforced(self):
        compiled = build([("jmp", 0)])
        machine = Machine(compiled, max_instructions=100)
        with pytest.raises(VMError, match="budget"):
            machine.run()
