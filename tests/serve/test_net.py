"""The TCP front door (``repro serve --tcp``): admission control,
single-flight dedup, graceful drain, and the loadgen harness.

Every test runs a real server (:class:`BackgroundServer` on its own
event-loop thread) and talks to it over real sockets — the in-process
StringIO harness of ``test_stdio.py`` cannot exercise multiplexing,
disconnects, or backpressure.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.config import ServeConfig
from repro.observe.reqtrace import ReqTracer, TailSampler
from repro.observe.spanstore import (
    SpanStore,
    build_tree,
    iter_records,
    load_trace,
)
from repro.serve.net import BackgroundServer
from repro.serve.net.admission import AdmissionController
from repro.serve.net.loadgen import (
    check_slo,
    client_traceparent,
    percentile,
    request_indices,
    run_loadgen,
    stddev,
)
from repro.serve.net.singleflight import FlightTable

#: Takes a worker a few hundred ms — long enough that a request sent
#: right after it is admitted while it is still unresolved, short
#: enough to keep the suite fast.
SLOW = "(define (spin n) (if (= n 0) 0 (spin (- n 1)))) (spin 2000000)"


class _Client:
    """A blocking JSON-lines client for one connection."""

    def __init__(self, address, timeout=60.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.banner = json.loads(self.reader.readline())

    def send(self, doc):
        self.sock.sendall((json.dumps(doc) + "\n").encode())

    def recv(self):
        line = self.reader.readline()
        return json.loads(line) if line else None

    def recv_response(self):
        """Next non-event document (skips informational events)."""
        while True:
            doc = self.recv()
            if doc is None or "event" not in doc:
                return doc

    def request(self, doc):
        self.send(doc)
        return self.recv_response()

    def close(self):
        # makefile() holds a dup of the fd: shut the socket down first
        # so the server actually sees EOF, then close both handles.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for handle in (self.reader, self.sock):
            try:
                handle.close()
            except OSError:
                pass


@pytest.fixture
def server():
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        yield bg


def test_ready_banner_and_round_trip(server):
    client = _Client(server.address)
    assert client.banner["event"] == "ready"
    assert client.banner["transport"] == "tcp"
    response = client.request({"id": 1, "op": "run", "source": "(+ 20 22)"})
    assert response["ok"] and response["value"] == "42"
    client.close()


def test_multiple_clients_multiplex(server):
    clients = [_Client(server.address) for _ in range(5)]
    for i, client in enumerate(clients):
        client.send({"id": i, "op": "run", "source": f"(* {i} 10)"})
    for i, client in enumerate(clients):
        response = client.recv_response()
        assert response["id"] == i
        assert response["value"] == str(i * 10)
    stats = clients[0].request({"id": "s", "op": "stats"})["stats"]["server"]
    assert stats["clients"] == 5
    assert stats["clients_peak"] == 5
    for client in clients:
        client.close()


def test_protocol_error_and_unknown_op(server):
    client = _Client(server.address)
    assert client.request({"id": 1, "op": "run"})["error_kind"] == "protocol"
    assert (
        client.request({"id": 2, "op": "nope", "source": "1"})["error_kind"]
        == "protocol"
    )
    response = client.request("not a dict")
    assert response["error_kind"] == "protocol"
    client.close()


def test_tenant_isolation_and_bounded_queue():
    config = ServeConfig(max_pending_per_tenant=1, max_pending_total=10)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        noisy = _Client(bg.address)
        quiet = _Client(bg.address)
        # Tenant A's one slot is taken by a slow request; its second
        # request is rejected at intake.  Tenant B is not displaced.
        noisy.send({"id": "a1", "op": "run", "source": SLOW, "tenant": "a"})
        rejected = noisy.request(
            {"id": "a2", "op": "run", "source": "(+ 1 1)", "tenant": "a"}
        )
        assert rejected["ok"] is False
        assert rejected["error_kind"] == "overloaded"
        assert rejected["reason"] == "tenant-queue-full"
        assert rejected["retry_after_s"] > 0
        response = quiet.request(
            {"id": "b1", "op": "run", "source": "(+ 2 2)", "tenant": "b"}
        )
        assert response["ok"] and response["value"] == "4"
        # The slow leader still completes.
        assert noisy.recv_response()["id"] == "a1"
        stats = quiet.request({"id": "s", "op": "stats"})["stats"]["server"]
        assert stats["admission"]["rejects"] == {"tenant-queue-full": 1}
        noisy.close()
        quiet.close()


def test_global_queue_bound():
    config = ServeConfig(max_pending_per_tenant=10, max_pending_total=2)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        client = _Client(bg.address)
        client.send({"id": 1, "op": "run", "source": SLOW, "tenant": "a"})
        client.send({"id": 2, "op": "run", "source": SLOW + " ", "tenant": "b"})
        rejected = client.request(
            {"id": 3, "op": "run", "source": "(+ 1 1)", "tenant": "c"}
        )
        assert rejected["error_kind"] == "overloaded"
        assert rejected["reason"] == "queue-full"
        assert client.recv_response()["ok"]
        assert client.recv_response()["ok"]
        client.close()


def test_max_clients_connection_cap():
    config = ServeConfig(max_clients=1)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        first = _Client(bg.address)
        assert first.banner["event"] == "ready"
        second = _Client(bg.address)
        assert second.banner == {"event": "overloaded", "reason": "max-clients"}
        second.close()
        first.close()


def test_single_flight_dedup():
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        client = _Client(bg.address)
        source = "(define (f x) (* x x)) (f 12)"
        # Both lines land before the leader's compile finishes: the
        # second request joins the first's flight.
        client.send({"id": 1, "op": "compile", "source": source})
        client.send({"id": 2, "op": "compile", "source": source})
        responses = {r["id"]: r for r in (client.recv_response(),
                                          client.recv_response())}
        assert responses[1]["ok"] and responses[2]["ok"]
        assert responses[1]["instructions"] == responses[2]["instructions"]
        deduped = [r for r in responses.values() if r.get("deduped")]
        assert len(deduped) == 1
        stats = client.request({"id": "s", "op": "stats"})["stats"]["server"]
        assert stats["singleflight"]["dedup_hits"] == 1
        assert stats["singleflight"]["in_flight"] == 0
        client.close()


def test_dedup_across_connections_with_leader_disconnect():
    # The leader's pool task is server-owned: killing the leader's
    # connection mid-request must not strand the follower.
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        leader = _Client(bg.address)
        follower = _Client(bg.address)
        leader.send({"id": "L", "op": "run", "source": SLOW})
        follower.send({"id": "F", "op": "run", "source": SLOW})
        leader.close()
        response = follower.recv_response()
        assert response["id"] == "F"
        assert response["ok"] and response["value"] == "0"
        # And the server is still healthy for new clients.
        probe = _Client(bg.address)
        assert probe.request({"id": "p", "op": "ping"})["pong"]
        probe.close()
        follower.close()


def test_client_disconnect_mid_request_leaves_server_healthy():
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        doomed = _Client(bg.address)
        doomed.send({"id": 1, "op": "run", "source": SLOW})
        doomed.close()
        probe = _Client(bg.address)
        response = probe.request({"id": 2, "op": "run", "source": "(+ 3 4)"})
        assert response["ok"] and response["value"] == "7"
        deadline = time.monotonic() + 10
        while True:
            health = probe.request({"id": "h", "op": "health"})["health"]
            assert health["status"] == "ok"
            if health["clients"] == 1 or time.monotonic() > deadline:
                break
            time.sleep(0.05)  # the server has not yet seen doomed's EOF
        assert health["clients"] == 1
        probe.close()


def test_drain_under_load_answers_everything():
    # shutdown with requests still in flight: every admitted request is
    # answered (ok or cancelled) before the bye event.
    with BackgroundServer(jobs=2, disk_cache=False) as bg:
        client = _Client(bg.address)
        for i in range(6):
            client.send({"id": i, "op": "run", "source": f"(+ {i} 1)"})
        client.send({"id": "down", "op": "shutdown"})
        docs = []
        while True:
            doc = client.recv()
            if doc is None or doc.get("event") == "bye":
                break
            docs.append(doc)
        by_id = {d["id"]: d for d in docs if "event" not in d}
        assert by_id["down"]["shutdown"] is True
        for i in range(6):
            assert i in by_id, f"request {i} unanswered at drain"
            assert by_id[i]["ok"] or by_id[i]["error_kind"] == "cancelled"
        client.close()
    events = [e["event"] for e in bg.events]
    assert events[0] == "listening"
    assert "draining" in events and events[-1] == "bye"


def test_requests_after_drain_are_rejected():
    config = ServeConfig(drain_grace_s=5.0)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        client = _Client(bg.address)
        client.send({"id": "slow", "op": "run", "source": SLOW})
        client.send({"id": "down", "op": "shutdown"})
        client.send({"id": "late", "op": "run", "source": "(+ 1 1)"})
        docs = {}
        while True:
            doc = client.recv()
            if doc is None or doc.get("event") == "bye":
                break
            if "event" not in doc:
                docs[doc["id"]] = doc
        assert docs["slow"]["ok"] or docs["slow"]["error_kind"] == "cancelled"
        late = docs["late"]
        assert late["error_kind"] == "overloaded"
        assert late["reason"] == "draining"
        client.close()


# ---------------------------------------------------------------------------
# Request tracing
# ---------------------------------------------------------------------------


def _tracer(tmp_path, rate=1.0, slowest_k=0):
    return ReqTracer(
        SpanStore(str(tmp_path / "spans")),
        TailSampler(rate=rate, slowest_k=slowest_k, seed=0),
    )


def _wait_for_trace(directory, trace_id, deadline_s=10.0):
    """finish() runs after the response is written, so poll briefly."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        records = load_trace(directory, trace_id)
        if records:
            return records
        time.sleep(0.02)
    return []


def _assert_nested(records):
    """Every child's interval lies inside its parent's."""

    def walk(node):
        record, kids = node
        end = record["start_ns"] + record["dur_ns"]
        for kid in kids:
            assert kid[0]["start_ns"] >= record["start_ns"]
            assert kid[0]["start_ns"] + kid[0]["dur_ns"] <= end
            walk(kid)

    for root in build_tree(records):
        walk(root)


def test_tracing_reconstructs_full_request_tree(tmp_path):
    reqtracer = _tracer(tmp_path)
    store_dir = str(tmp_path / "spans")
    with BackgroundServer(jobs=1, disk_cache=False, reqtracer=reqtracer) as bg:
        client = _Client(bg.address)
        assert client.banner["tracing"] is True
        parent = client_traceparent(seed=5, vuser=0, sent=0)
        response = client.request(
            {"id": 1, "op": "run", "source": "(+ 20 22)",
             "traceparent": parent}
        )
        assert response["ok"] and response["value"] == "42"
        trace_id, client_span = parent.split("-")
        # The response echoes the trace so the client can log it.
        assert response["traceparent"].startswith(trace_id + "-")
        records = _wait_for_trace(store_dir, trace_id)
        client.close()
    names = {r["name"] for r in records}
    assert {"request", "intake", "admission", "dedup", "wait", "queue",
            "run", "respond"} <= names
    # The worker's per-pass compile spans rode back through task meta.
    assert {"compile", "read", "allocate", "codegen"} <= names
    assert len({r["pid"] for r in records}) >= 2  # daemon + worker
    by_name = {r["name"]: r for r in records}
    root = by_name["request"]
    assert root["parent"] == client_span  # child of the client's span
    assert root["attrs"]["status"] == "ok"
    assert root["attrs"]["tenant"] == "default"
    assert by_name["queue"]["parent"] == by_name["wait"]["span"]
    assert by_name["run"]["parent"] == by_name["wait"]["span"]
    assert by_name["compile"]["parent"] == by_name["run"]["span"]
    assert by_name["compile"]["service"] == "worker"
    _assert_nested(records)


def test_tracing_dedup_follower_has_no_worker_spans(tmp_path):
    reqtracer = _tracer(tmp_path)
    store_dir = str(tmp_path / "spans")
    with BackgroundServer(jobs=1, disk_cache=False, reqtracer=reqtracer) as bg:
        client = _Client(bg.address)
        lead_tp = client_traceparent(seed=1, vuser=1, sent=0)
        follow_tp = client_traceparent(seed=1, vuser=2, sent=0)
        client.send({"id": "L", "op": "run", "source": SLOW,
                     "traceparent": lead_tp})
        client.send({"id": "F", "op": "run", "source": SLOW,
                     "traceparent": follow_tp})
        responses = {r["id"]: r for r in (client.recv_response(),
                                          client.recv_response())}
        deduped_id = next(
            rid for rid, r in responses.items() if r.get("deduped")
        )
        leader_id = "L" if deduped_id == "F" else "F"
        leader_records = _wait_for_trace(
            store_dir, responses[leader_id]["traceparent"].split("-")[0]
        )
        follower_records = _wait_for_trace(
            store_dir, responses[deduped_id]["traceparent"].split("-")[0]
        )
        client.close()
    leader_names = {r["name"] for r in leader_records}
    follower_names = {r["name"] for r in follower_records}
    # Only the leader reached the pool: worker spans are its alone.
    assert "compile" in leader_names or "execute" in leader_names
    assert "run" in leader_names
    assert "run" not in follower_names
    assert "compile" not in follower_names
    follower_dedup = next(
        r for r in follower_records if r["name"] == "dedup"
    )
    assert follower_dedup["attrs"]["role"] == "follower"
    assert {"request", "wait", "respond"} <= follower_names


def test_tail_sampling_keeps_errors_and_overloads_at_rate_zero(tmp_path):
    reqtracer = _tracer(tmp_path, rate=0.0)
    store_dir = str(tmp_path / "spans")
    config = ServeConfig(max_pending_per_tenant=1, max_pending_total=10)
    with BackgroundServer(
        jobs=1, disk_cache=False, config=config, reqtracer=reqtracer
    ) as bg:
        client = _Client(bg.address)
        ok_tp = client_traceparent(seed=2, vuser=0, sent=0)
        ok = client.request(
            {"id": 1, "op": "run", "source": "(+ 1 1)", "traceparent": ok_tp}
        )
        assert ok["ok"]
        err_tp = client_traceparent(seed=2, vuser=0, sent=1)
        err = client.request(
            {"id": 2, "op": "run", "source": "(car 5)", "traceparent": err_tp}
        )
        assert not err["ok"]
        err_records = _wait_for_trace(store_dir, err_tp.split("-")[0])
        # Overload: fill the tenant slot, then get rejected.
        slow_tp = client_traceparent(seed=2, vuser=0, sent=2)
        over_tp = client_traceparent(seed=2, vuser=0, sent=3)
        client.send({"id": 3, "op": "run", "source": SLOW,
                     "traceparent": slow_tp})
        rejected = client.request(
            {"id": 4, "op": "run", "source": "(+ 2 2)", "traceparent": over_tp}
        )
        assert rejected["error_kind"] == "overloaded"
        assert rejected["traceparent"].startswith(over_tp.split("-")[0])
        over_records = _wait_for_trace(store_dir, over_tp.split("-")[0])
        assert client.recv_response()["id"] == 3  # the slow one completes
        client.close()
    # Error and overloaded traces retained despite rate 0.0 …
    assert err_records
    err_root = next(r for r in err_records if r["name"] == "request")
    assert err_root["attrs"]["status"] == "runtime-error"
    assert over_records
    over_root = next(r for r in over_records if r["name"] == "request")
    assert over_root["attrs"]["status"] == "overloaded"
    assert over_root["attrs"]["reason"] == "tenant-queue-full"
    # … while the ok trace was dropped.
    assert load_trace(store_dir, ok_tp.split("-")[0]) == []


def test_tracing_off_is_the_default(tmp_path):
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        client = _Client(bg.address)
        assert client.banner["tracing"] is False
        response = client.request(
            {"id": 1, "op": "run", "source": "(+ 1 2)",
             "traceparent": client_traceparent(seed=0, vuser=0, sent=0)}
        )
        assert response["ok"]
        assert "traceparent" not in response
        client.close()


# ---------------------------------------------------------------------------
# Units: admission and the flight table
# ---------------------------------------------------------------------------


def test_admission_controller_bounds():
    admission = AdmissionController(max_pending_per_tenant=2, max_pending_total=3)
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") == "tenant-queue-full"
    assert admission.try_admit("b") is None
    assert admission.try_admit("b") == "queue-full"  # global before tenant cap
    admission.release("a")
    assert admission.try_admit("b") is None
    stats = admission.stats()
    assert stats["pending_total"] == 3
    assert stats["rejects"] == {"tenant-queue-full": 1, "queue-full": 1}
    for tenant in ("a", "b", "b"):
        admission.release(tenant)
    assert admission.total == 0
    assert admission.stats()["per_tenant"] == {}


def test_flight_table_join_resolve():
    import asyncio

    async def body():
        table = FlightTable(shards=4)
        leader, f1 = table.join("ab1234:compile:None")
        follower, f2 = table.join("ab1234:compile:None")
        assert leader and not follower
        assert f1 is f2
        assert table.in_flight == 1
        table.resolve("ab1234:compile:None", "result")
        assert await f1 == "result"
        assert table.in_flight == 0
        assert table.stats()["dedup_hits"] == 1

    asyncio.run(body())


# ---------------------------------------------------------------------------
# Loadgen
# ---------------------------------------------------------------------------


def test_loadgen_schedule_determinism():
    first = request_indices(seed=42, vuser=3, count=50, corpus_size=20)
    again = request_indices(seed=42, vuser=3, count=50, corpus_size=20)
    other_seed = request_indices(seed=43, vuser=3, count=50, corpus_size=20)
    other_vuser = request_indices(seed=42, vuser=4, count=50, corpus_size=20)
    assert first == again
    assert first != other_seed
    assert first != other_vuser
    assert all(0 <= i < 20 for i in first)


def test_loadgen_duplicate_fraction_hits_hot_set():
    always = request_indices(
        seed=1, vuser=0, count=100, corpus_size=50, duplicate_fraction=1.0
    )
    assert set(always) <= set(range(4))  # everything from the hot set
    never = request_indices(
        seed=1, vuser=0, count=200, corpus_size=50, duplicate_fraction=0.0
    )
    assert max(never) >= 4  # the cold tail is actually reachable


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.50) == 50.0
    assert percentile(values, 0.99) == 99.0
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([], 0.5) is None


def test_check_slo_pass_and_violations():
    report = {
        "latency_s": {"p50": 0.1, "p90": 0.2, "p99": 0.5},
        "error_rate": 0.0,
        "errors": 0,
        "error_kinds": {},
        "rejected": 0,
        "deduped": 3,
        "completed": 100,
        "vuser_failures": [],
    }
    thresholds = {
        "p99_s": 1.0,
        "max_error_rate": 0.0,
        "max_rejects": 0,
        "min_dedup_hits": 1,
        "min_requests": 50,
    }
    assert check_slo(report, thresholds)["ok"]
    tight = dict(thresholds, p99_s=0.1, min_requests=1000)
    verdict = check_slo(report, tight, tolerance=2.0)
    assert not verdict["ok"]
    assert any("p99" in v for v in verdict["violations"])
    assert any("completed" in v for v in verdict["violations"])


def test_stddev():
    assert stddev([]) is None
    assert stddev([3.0, 3.0, 3.0]) == 0.0
    assert stddev([2.0, 4.0]) == pytest.approx(1.0)


def test_client_traceparent_is_deterministic_and_wellformed():
    from repro.observe.reqtrace import parse_traceparent

    first = client_traceparent(seed=9, vuser=3, sent=7)
    assert first == client_traceparent(seed=9, vuser=3, sent=7)
    assert first != client_traceparent(seed=9, vuser=3, sent=8)
    assert first != client_traceparent(seed=8, vuser=3, sent=7)
    assert parse_traceparent(first) is not None


def test_loadgen_latencies_out_and_tracing(tmp_path):
    corpus = [("sq", "(define (sq x) (* x x)) (sq 9)"), ("add", "(+ 1 2)")]
    latencies_path = tmp_path / "lat" / "latencies.jsonl"
    trace_dir = tmp_path / "spans"
    report = run_loadgen(
        spawn=True,
        spawn_jobs=1,
        corpus=corpus,
        op="run",
        concurrency=4,
        requests=3,
        seed=17,
        trace_dir=str(trace_dir),
        trace_sample=1.0,
        latencies_out=str(latencies_path),
    )
    assert report["completed"] == 12
    latency = report["latency_s"]
    assert latency["stddev"] is not None and latency["stddev"] >= 0.0
    assert latency["max"] >= latency["p99"] >= latency["p50"]
    # The slowest requests are named with their trace ids.
    assert len(report["slowest"]) == 5
    assert report["slowest"][0]["latency_s"] == pytest.approx(
        latency["max"], rel=1e-3
    )
    for entry in report["slowest"]:
        assert len(entry["trace"]) == 16
    # One JSON line per request: latency, status, trace id.
    lines = [
        json.loads(line)
        for line in latencies_path.read_text().splitlines()
        if line.strip()
    ]
    assert len(lines) == 12
    for line in lines:
        assert line["ok"] is True
        assert line["latency_s"] > 0
        assert len(line["trace"]) == 16
    # Per-vuser request order is the deterministic schedule, so the
    # n-th record of vuser v carries client_traceparent(seed, v, n).
    for vuser in range(4):
        mine = [line for line in lines if line["vuser"] == vuser]
        for sent, line in enumerate(mine):
            expected = client_traceparent(17, vuser, sent).split("-")[0]
            assert line["trace"] == expected
    # The spawned server kept traces under the client-chosen ids.
    stored = {r["trace"] for r in iter_records(str(trace_dir))}
    client_ids = {line["trace"] for line in lines}
    assert stored == client_ids


def test_loadgen_end_to_end_spawn():
    corpus = [
        ("sq", "(define (sq x) (* x x)) (sq 9)"),
        ("add", "(+ 1 2)"),
        ("fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)"),
        ("let", "(let ((a 1) (b 2)) (+ a b))"),
    ]
    report = run_loadgen(
        spawn=True,
        spawn_jobs=2,
        corpus=corpus,
        op="run",
        concurrency=8,
        requests=4,
        seed=11,
        duplicate_fraction=0.8,
    )
    assert report["requests"] == 32
    assert report["completed"] == 32
    assert report["errors"] == 0
    assert report["rejected"] == 0
    assert report["vuser_failures"] == []
    assert report["latency_s"]["p99"] >= report["latency_s"]["p50"] > 0
    server = report["server"]["server"]
    assert server["requests"] == 32
    # 8 cold-cache vusers stampeding a 4-program hot set: single-flight
    # must have collapsed some of them.
    assert server["singleflight"]["dedup_hits"] > 0
