"""The TCP front door (``repro serve --tcp``): admission control,
single-flight dedup, graceful drain, and the loadgen harness.

Every test runs a real server (:class:`BackgroundServer` on its own
event-loop thread) and talks to it over real sockets — the in-process
StringIO harness of ``test_stdio.py`` cannot exercise multiplexing,
disconnects, or backpressure.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.config import ServeConfig
from repro.serve.net import BackgroundServer
from repro.serve.net.admission import AdmissionController
from repro.serve.net.loadgen import (
    check_slo,
    percentile,
    request_indices,
    run_loadgen,
)
from repro.serve.net.singleflight import FlightTable

#: Takes a worker a few hundred ms — long enough that a request sent
#: right after it is admitted while it is still unresolved, short
#: enough to keep the suite fast.
SLOW = "(define (spin n) (if (= n 0) 0 (spin (- n 1)))) (spin 2000000)"


class _Client:
    """A blocking JSON-lines client for one connection."""

    def __init__(self, address, timeout=60.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.banner = json.loads(self.reader.readline())

    def send(self, doc):
        self.sock.sendall((json.dumps(doc) + "\n").encode())

    def recv(self):
        line = self.reader.readline()
        return json.loads(line) if line else None

    def recv_response(self):
        """Next non-event document (skips informational events)."""
        while True:
            doc = self.recv()
            if doc is None or "event" not in doc:
                return doc

    def request(self, doc):
        self.send(doc)
        return self.recv_response()

    def close(self):
        # makefile() holds a dup of the fd: shut the socket down first
        # so the server actually sees EOF, then close both handles.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for handle in (self.reader, self.sock):
            try:
                handle.close()
            except OSError:
                pass


@pytest.fixture
def server():
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        yield bg


def test_ready_banner_and_round_trip(server):
    client = _Client(server.address)
    assert client.banner["event"] == "ready"
    assert client.banner["transport"] == "tcp"
    response = client.request({"id": 1, "op": "run", "source": "(+ 20 22)"})
    assert response["ok"] and response["value"] == "42"
    client.close()


def test_multiple_clients_multiplex(server):
    clients = [_Client(server.address) for _ in range(5)]
    for i, client in enumerate(clients):
        client.send({"id": i, "op": "run", "source": f"(* {i} 10)"})
    for i, client in enumerate(clients):
        response = client.recv_response()
        assert response["id"] == i
        assert response["value"] == str(i * 10)
    stats = clients[0].request({"id": "s", "op": "stats"})["stats"]["server"]
    assert stats["clients"] == 5
    assert stats["clients_peak"] == 5
    for client in clients:
        client.close()


def test_protocol_error_and_unknown_op(server):
    client = _Client(server.address)
    assert client.request({"id": 1, "op": "run"})["error_kind"] == "protocol"
    assert (
        client.request({"id": 2, "op": "nope", "source": "1"})["error_kind"]
        == "protocol"
    )
    response = client.request("not a dict")
    assert response["error_kind"] == "protocol"
    client.close()


def test_tenant_isolation_and_bounded_queue():
    config = ServeConfig(max_pending_per_tenant=1, max_pending_total=10)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        noisy = _Client(bg.address)
        quiet = _Client(bg.address)
        # Tenant A's one slot is taken by a slow request; its second
        # request is rejected at intake.  Tenant B is not displaced.
        noisy.send({"id": "a1", "op": "run", "source": SLOW, "tenant": "a"})
        rejected = noisy.request(
            {"id": "a2", "op": "run", "source": "(+ 1 1)", "tenant": "a"}
        )
        assert rejected["ok"] is False
        assert rejected["error_kind"] == "overloaded"
        assert rejected["reason"] == "tenant-queue-full"
        assert rejected["retry_after_s"] > 0
        response = quiet.request(
            {"id": "b1", "op": "run", "source": "(+ 2 2)", "tenant": "b"}
        )
        assert response["ok"] and response["value"] == "4"
        # The slow leader still completes.
        assert noisy.recv_response()["id"] == "a1"
        stats = quiet.request({"id": "s", "op": "stats"})["stats"]["server"]
        assert stats["admission"]["rejects"] == {"tenant-queue-full": 1}
        noisy.close()
        quiet.close()


def test_global_queue_bound():
    config = ServeConfig(max_pending_per_tenant=10, max_pending_total=2)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        client = _Client(bg.address)
        client.send({"id": 1, "op": "run", "source": SLOW, "tenant": "a"})
        client.send({"id": 2, "op": "run", "source": SLOW + " ", "tenant": "b"})
        rejected = client.request(
            {"id": 3, "op": "run", "source": "(+ 1 1)", "tenant": "c"}
        )
        assert rejected["error_kind"] == "overloaded"
        assert rejected["reason"] == "queue-full"
        assert client.recv_response()["ok"]
        assert client.recv_response()["ok"]
        client.close()


def test_max_clients_connection_cap():
    config = ServeConfig(max_clients=1)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        first = _Client(bg.address)
        assert first.banner["event"] == "ready"
        second = _Client(bg.address)
        assert second.banner == {"event": "overloaded", "reason": "max-clients"}
        second.close()
        first.close()


def test_single_flight_dedup():
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        client = _Client(bg.address)
        source = "(define (f x) (* x x)) (f 12)"
        # Both lines land before the leader's compile finishes: the
        # second request joins the first's flight.
        client.send({"id": 1, "op": "compile", "source": source})
        client.send({"id": 2, "op": "compile", "source": source})
        responses = {r["id"]: r for r in (client.recv_response(),
                                          client.recv_response())}
        assert responses[1]["ok"] and responses[2]["ok"]
        assert responses[1]["instructions"] == responses[2]["instructions"]
        deduped = [r for r in responses.values() if r.get("deduped")]
        assert len(deduped) == 1
        stats = client.request({"id": "s", "op": "stats"})["stats"]["server"]
        assert stats["singleflight"]["dedup_hits"] == 1
        assert stats["singleflight"]["in_flight"] == 0
        client.close()


def test_dedup_across_connections_with_leader_disconnect():
    # The leader's pool task is server-owned: killing the leader's
    # connection mid-request must not strand the follower.
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        leader = _Client(bg.address)
        follower = _Client(bg.address)
        leader.send({"id": "L", "op": "run", "source": SLOW})
        follower.send({"id": "F", "op": "run", "source": SLOW})
        leader.close()
        response = follower.recv_response()
        assert response["id"] == "F"
        assert response["ok"] and response["value"] == "0"
        # And the server is still healthy for new clients.
        probe = _Client(bg.address)
        assert probe.request({"id": "p", "op": "ping"})["pong"]
        probe.close()
        follower.close()


def test_client_disconnect_mid_request_leaves_server_healthy():
    with BackgroundServer(jobs=1, disk_cache=False) as bg:
        doomed = _Client(bg.address)
        doomed.send({"id": 1, "op": "run", "source": SLOW})
        doomed.close()
        probe = _Client(bg.address)
        response = probe.request({"id": 2, "op": "run", "source": "(+ 3 4)"})
        assert response["ok"] and response["value"] == "7"
        deadline = time.monotonic() + 10
        while True:
            health = probe.request({"id": "h", "op": "health"})["health"]
            assert health["status"] == "ok"
            if health["clients"] == 1 or time.monotonic() > deadline:
                break
            time.sleep(0.05)  # the server has not yet seen doomed's EOF
        assert health["clients"] == 1
        probe.close()


def test_drain_under_load_answers_everything():
    # shutdown with requests still in flight: every admitted request is
    # answered (ok or cancelled) before the bye event.
    with BackgroundServer(jobs=2, disk_cache=False) as bg:
        client = _Client(bg.address)
        for i in range(6):
            client.send({"id": i, "op": "run", "source": f"(+ {i} 1)"})
        client.send({"id": "down", "op": "shutdown"})
        docs = []
        while True:
            doc = client.recv()
            if doc is None or doc.get("event") == "bye":
                break
            docs.append(doc)
        by_id = {d["id"]: d for d in docs if "event" not in d}
        assert by_id["down"]["shutdown"] is True
        for i in range(6):
            assert i in by_id, f"request {i} unanswered at drain"
            assert by_id[i]["ok"] or by_id[i]["error_kind"] == "cancelled"
        client.close()
    events = [e["event"] for e in bg.events]
    assert events[0] == "listening"
    assert "draining" in events and events[-1] == "bye"


def test_requests_after_drain_are_rejected():
    config = ServeConfig(drain_grace_s=5.0)
    with BackgroundServer(jobs=1, disk_cache=False, config=config) as bg:
        client = _Client(bg.address)
        client.send({"id": "slow", "op": "run", "source": SLOW})
        client.send({"id": "down", "op": "shutdown"})
        client.send({"id": "late", "op": "run", "source": "(+ 1 1)"})
        docs = {}
        while True:
            doc = client.recv()
            if doc is None or doc.get("event") == "bye":
                break
            if "event" not in doc:
                docs[doc["id"]] = doc
        assert docs["slow"]["ok"] or docs["slow"]["error_kind"] == "cancelled"
        late = docs["late"]
        assert late["error_kind"] == "overloaded"
        assert late["reason"] == "draining"
        client.close()


# ---------------------------------------------------------------------------
# Units: admission and the flight table
# ---------------------------------------------------------------------------


def test_admission_controller_bounds():
    admission = AdmissionController(max_pending_per_tenant=2, max_pending_total=3)
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") == "tenant-queue-full"
    assert admission.try_admit("b") is None
    assert admission.try_admit("b") == "queue-full"  # global before tenant cap
    admission.release("a")
    assert admission.try_admit("b") is None
    stats = admission.stats()
    assert stats["pending_total"] == 3
    assert stats["rejects"] == {"tenant-queue-full": 1, "queue-full": 1}
    for tenant in ("a", "b", "b"):
        admission.release(tenant)
    assert admission.total == 0
    assert admission.stats()["per_tenant"] == {}


def test_flight_table_join_resolve():
    import asyncio

    async def body():
        table = FlightTable(shards=4)
        leader, f1 = table.join("ab1234:compile:None")
        follower, f2 = table.join("ab1234:compile:None")
        assert leader and not follower
        assert f1 is f2
        assert table.in_flight == 1
        table.resolve("ab1234:compile:None", "result")
        assert await f1 == "result"
        assert table.in_flight == 0
        assert table.stats()["dedup_hits"] == 1

    asyncio.run(body())


# ---------------------------------------------------------------------------
# Loadgen
# ---------------------------------------------------------------------------


def test_loadgen_schedule_determinism():
    first = request_indices(seed=42, vuser=3, count=50, corpus_size=20)
    again = request_indices(seed=42, vuser=3, count=50, corpus_size=20)
    other_seed = request_indices(seed=43, vuser=3, count=50, corpus_size=20)
    other_vuser = request_indices(seed=42, vuser=4, count=50, corpus_size=20)
    assert first == again
    assert first != other_seed
    assert first != other_vuser
    assert all(0 <= i < 20 for i in first)


def test_loadgen_duplicate_fraction_hits_hot_set():
    always = request_indices(
        seed=1, vuser=0, count=100, corpus_size=50, duplicate_fraction=1.0
    )
    assert set(always) <= set(range(4))  # everything from the hot set
    never = request_indices(
        seed=1, vuser=0, count=200, corpus_size=50, duplicate_fraction=0.0
    )
    assert max(never) >= 4  # the cold tail is actually reachable


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.50) == 50.0
    assert percentile(values, 0.99) == 99.0
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([], 0.5) is None


def test_check_slo_pass_and_violations():
    report = {
        "latency_s": {"p50": 0.1, "p90": 0.2, "p99": 0.5},
        "error_rate": 0.0,
        "errors": 0,
        "error_kinds": {},
        "rejected": 0,
        "deduped": 3,
        "completed": 100,
        "vuser_failures": [],
    }
    thresholds = {
        "p99_s": 1.0,
        "max_error_rate": 0.0,
        "max_rejects": 0,
        "min_dedup_hits": 1,
        "min_requests": 50,
    }
    assert check_slo(report, thresholds)["ok"]
    tight = dict(thresholds, p99_s=0.1, min_requests=1000)
    verdict = check_slo(report, tight, tolerance=2.0)
    assert not verdict["ok"]
    assert any("p99" in v for v in verdict["violations"])
    assert any("completed" in v for v in verdict["violations"])


def test_loadgen_end_to_end_spawn():
    corpus = [
        ("sq", "(define (sq x) (* x x)) (sq 9)"),
        ("add", "(+ 1 2)"),
        ("fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)"),
        ("let", "(let ((a 1) (b 2)) (+ a b))"),
    ]
    report = run_loadgen(
        spawn=True,
        spawn_jobs=2,
        corpus=corpus,
        op="run",
        concurrency=8,
        requests=4,
        seed=11,
        duplicate_fraction=0.8,
    )
    assert report["requests"] == 32
    assert report["completed"] == 32
    assert report["errors"] == 0
    assert report["rejected"] == 0
    assert report["vuser_failures"] == []
    assert report["latency_s"]["p99"] >= report["latency_s"]["p50"] > 0
    server = report["server"]["server"]
    assert server["requests"] == 32
    # 8 cold-cache vusers stampeding a 4-program hot set: single-flight
    # must have collapsed some of them.
    assert server["singleflight"]["dedup_hits"] > 0
