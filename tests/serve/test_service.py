"""BatchService: request/response shapes, inline vs pooled execution,
cache accounting, and observe integration."""

from __future__ import annotations

import pytest

from repro.config import CompilerConfig
from repro.observe import Tracer
from repro.serve.service import BatchService, Request, Response, summarize

GOOD = "(define (f x) (* x x)) (f 7)"
LOOPS = "(define (spin n) (if (= n 0) 'done (spin (- n 1)))) (spin 100000000)"


def test_request_rejects_unknown_op():
    with pytest.raises(ValueError, match="unknown op"):
        Request(op="transmogrify", source="(+ 1 2)")


def test_request_dict_round_trip():
    request = Request.from_dict(
        {
            "id": "r1",
            "op": "run",
            "source": GOOD,
            "config": {"save_strategy": "early"},
            "max_instructions": 1000,
        }
    )
    assert request.id == "r1"
    assert request.config.save_strategy == "early"
    assert request.payload()["max_instructions"] == 1000


def test_inline_run_request():
    service = BatchService(jobs=1, cache=False)
    (response,) = service.run([Request(op="run", source=GOOD)])
    assert response.ok
    assert response.value == "49"
    assert response.counters["instructions"] > 0


def test_inline_compile_request():
    service = BatchService(jobs=1, cache=False)
    (response,) = service.run([Request(op="compile", source=GOOD, id="c")])
    assert response.ok
    assert response.id == "c"
    assert response.instructions > 0
    assert response.procedures > 0
    assert response.value is None


def test_inline_error_classification():
    service = BatchService(jobs=1, cache=False)
    responses = service.run(
        [
            Request(op="run", source="(unbound-proc 1)", id="compile-err"),
            Request(op="run", source="(car 5)", id="runtime-err"),
            Request(op="run", source="(", id="read-err"),
            Request(op="run", source=LOOPS, id="budget", max_instructions=10_000),
            Request(op="run", source=GOOD, id="fine"),
        ]
    )
    kinds = {r.id: (r.ok, r.error_kind) for r in responses}
    assert kinds["compile-err"] == (False, "compile-error")
    assert kinds["runtime-err"] == (False, "runtime-error")
    assert kinds["read-err"] == (False, "read-error")
    assert kinds["budget"] == (False, "budget")
    assert kinds["fine"] == (True, None)


def test_inline_cache_hits(tmp_path):
    service = BatchService(jobs=1, cache_dir=str(tmp_path))
    requests = [Request(op="compile", source=GOOD, id=i) for i in range(3)]
    responses = service.run(requests)
    assert [r.cached for r in responses] == [False, True, True]
    stats = service.stats()
    assert stats["cache"]["hits"] == 2
    assert stats["cache"]["misses"] == 1


def test_responses_in_request_order_ids_default_to_index():
    service = BatchService(jobs=1, cache=False)
    responses = service.run(
        [Request(op="compile", source=f"(+ {i} {i})") for i in range(4)]
    )
    assert [r.id for r in responses] == [0, 1, 2, 3]


def test_pooled_batch_matches_inline(tmp_path):
    requests = [
        Request(op="run", source=GOOD, id="a"),
        Request(op="run", source="(car 5)", id="b"),
        Request(op="compile", source="(+ 1 2)", id="c"),
    ]
    inline = BatchService(jobs=1, cache=False).run(requests)
    pooled = BatchService(jobs=2, cache=False).run(requests)
    strip = lambda r: (r.id, r.op, r.ok, r.value, r.error_kind)  # noqa: E731
    assert [strip(r) for r in inline] == [strip(r) for r in pooled]


def test_pooled_cache_hits_via_disk(tmp_path):
    requests = [Request(op="compile", source=GOOD, id=i) for i in range(2)]
    BatchService(jobs=2, cache_dir=str(tmp_path)).run(requests)
    service = BatchService(jobs=2, cache_dir=str(tmp_path))
    responses = service.run(requests)
    assert all(r.cached for r in responses)
    assert service.stats()["cache"]["hits"] == len(requests)
    assert service.stats()["pool"]["completed"] == len(requests)


def test_on_response_fires_per_completion():
    seen = []
    service = BatchService(jobs=1, cache=False)
    service.run(
        [Request(op="compile", source="(+ 1 2)", id=i) for i in range(3)],
        on_response=lambda r: seen.append(r.id),
    )
    assert sorted(seen) == [0, 1, 2]


def test_tracer_records_batch_span_and_request_events():
    tracer = Tracer()
    service = BatchService(jobs=1, cache=False, tracer=tracer)
    service.run([Request(op="compile", source="(+ 1 2)")])
    names = [s.name for s in tracer.spans]
    assert "batch" in names
    events = [e for e in tracer.events if e.name == "request"]
    assert len(events) == 1
    assert events[0].args["ok"] is True


def _reqtracer(tmp_path, rate=1.0):
    from repro.observe.reqtrace import ReqTracer, TailSampler
    from repro.observe.spanstore import SpanStore

    store = SpanStore(str(tmp_path / "spans"))
    return ReqTracer(store, TailSampler(rate=rate, slowest_k=0, seed=0),
                     service="batch")


def _traces(tmp_path):
    from repro.observe.spanstore import iter_records

    by_trace = {}
    for record in iter_records(str(tmp_path / "spans")):
        by_trace.setdefault(record["trace"], []).append(record)
    return by_trace


def test_inline_requests_are_traced(tmp_path):
    service = BatchService(jobs=1, cache=False, reqtracer=_reqtracer(tmp_path))
    responses = service.run(
        [
            Request(op="run", source=GOOD, id="good"),
            Request(op="run", source="(car 5)", id="bad"),
        ]
    )
    assert [r.ok for r in responses] == [True, False]
    by_trace = _traces(tmp_path)
    assert len(by_trace) == 2
    roots = {
        r["attrs"]["id"]: r
        for records in by_trace.values()
        for r in records
        if r["name"] == "request"
    }
    assert roots["good"]["attrs"]["status"] == "ok"
    assert roots["bad"]["attrs"]["status"] == "runtime-error"
    # The in-process pass tracer's compile spans were absorbed under
    # the request trace.
    good_names = {
        r["name"] for r in by_trace[roots["good"]["trace"]]
    }
    assert "compile" in good_names
    assert "allocate" in good_names


def test_pooled_requests_are_traced(tmp_path):
    service = BatchService(jobs=2, cache=False, reqtracer=_reqtracer(tmp_path))
    responses = service.run(
        [Request(op="run", source=GOOD, id=i) for i in range(3)]
    )
    assert all(r.ok for r in responses)
    by_trace = _traces(tmp_path)
    assert len(by_trace) == 3
    for records in by_trace.values():
        by_name = {r["name"]: r for r in records}
        assert {"request", "queue", "run"} <= set(by_name)
        # Worker pass spans rode home through the task meta, under run.
        assert by_name["compile"]["parent"] == by_name["run"]["span"]
        assert by_name["compile"]["service"] == "worker"
        assert len({r["pid"] for r in records}) == 2
        # Timestamps nest monotonically after clock normalization.
        for record in records:
            parent = next(
                (p for p in records if p["span"] == record.get("parent")), None
            )
            if parent is not None:
                assert parent["start_ns"] <= record["start_ns"]
                assert (parent["start_ns"] + parent["dur_ns"]
                        >= record["start_ns"] + record["dur_ns"])


def test_untraced_service_unchanged(tmp_path):
    service = BatchService(jobs=1, cache=False)
    assert service.reqtracer is None
    (response,) = service.run([Request(op="run", source=GOOD)])
    assert response.ok


def test_summarize():
    responses = [
        Response(id=0, op="run", ok=True, cached=True),
        Response(id=1, op="run", ok=True, cached=False),
        Response(id=2, op="run", ok=False, error_kind="budget"),
    ]
    doc = summarize(responses)
    assert doc == {
        "requests": 3,
        "ok": 2,
        "errors": {"budget": 1},
        "cache_hits": 1,
        "cache_misses": 1,
    }


def test_response_dict_shapes():
    ok = Response(id=1, op="run", ok=True, value="3", counters={}).as_dict()
    assert ok["value"] == "3"
    assert "error" not in ok
    bad = Response(id=2, op="run", ok=False, error_kind="crash", error="x").as_dict()
    assert bad["error_kind"] == "crash"
    assert "value" not in bad
