"""The ``repro batch`` and ``repro cache`` CLI surfaces."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

NAMES = ["tak", "takl", "deriv"]


def _batch(capsys, *argv):
    code = main(["batch", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_bench_batch_cold_then_warm(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    code, out, err = _batch(
        capsys, "--bench", *NAMES, "--cache-dir", cache, "--json"
    )
    assert code == 0
    cold = json.loads(out)
    assert cold["summary"]["cache_misses"] == len(NAMES)

    code, out, err = _batch(
        capsys, "--bench", *NAMES, "--cache-dir", cache, "--json"
    )
    assert code == 0
    warm = json.loads(out)
    # The acceptance bar: a warm-cache pass recompiles nothing.
    assert warm["summary"]["cache_hits"] == len(NAMES)
    assert warm["summary"]["cache_misses"] == 0
    assert warm["stats"]["cache"]["misses"] == 0


def test_bench_batch_run_mode(tmp_path, capsys):
    code, out, _ = _batch(
        capsys, "--bench", "tak", "--run",
        "--cache-dir", str(tmp_path), "--json",
    )
    assert code == 0
    (response,) = json.loads(out)["responses"]
    assert response["op"] == "run"
    assert response["value"] is not None


def test_bench_batch_unknown_name(tmp_path, capsys):
    code, _, err = _batch(
        capsys, "--bench", "nonesuch", "--cache-dir", str(tmp_path)
    )
    assert code == 1
    assert "unknown benchmark" in err


def test_batch_requires_input(capsys):
    code, _, err = _batch(capsys)
    assert code == 1
    assert "request file" in err


def test_request_file_batch(tmp_path, capsys):
    requests = tmp_path / "requests.jsonl"
    requests.write_text(
        "\n".join(
            [
                "# comment lines are skipped",
                json.dumps({"id": "a", "op": "run", "source": "(+ 1 2)"}),
                json.dumps({"op": "compile", "source": "(* 2 3)"}),
                json.dumps({"id": "bad", "op": "run", "source": "(car 9)"}),
            ]
        )
        + "\n"
    )
    code, out, _ = _batch(
        capsys, str(requests), "--cache-dir", str(tmp_path / "c"), "--json"
    )
    assert code == 1  # one failing request fails the batch
    doc = json.loads(out)
    by_id = {r["id"]: r for r in doc["responses"]}
    assert by_id["a"]["value"] == "3"
    assert by_id[3]["ok"]  # unnamed request gets its line number
    assert by_id["bad"]["error_kind"] == "runtime-error"


def test_request_file_bad_line(tmp_path, capsys):
    requests = tmp_path / "requests.jsonl"
    requests.write_text("{not json}\n")
    code, _, err = _batch(capsys, str(requests))
    assert code == 1
    assert "line 1" in err


def test_batch_per_line_output(tmp_path, capsys):
    code, out, err = _batch(
        capsys, "--bench", "tak", "--cache-dir", str(tmp_path)
    )
    assert code == 0
    (line,) = out.strip().splitlines()
    assert json.loads(line)["id"] == "tak"
    assert "1 request(s)" in err


def test_no_cache_never_hits(tmp_path, capsys):
    for _ in range(2):
        code, out, _ = _batch(capsys, "--bench", "tak", "--no-cache", "--json")
        assert code == 0
        assert json.loads(out)["summary"]["cache_hits"] == 0


@pytest.mark.parametrize("flag", ["stats", "clear"])
def test_cache_cli(tmp_path, capsys, flag):
    cache = str(tmp_path / "cache")
    assert main(["batch", "--bench", "tak", "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", flag, "--cache-dir", cache]) == 0
    captured = capsys.readouterr()
    # One ISA entry plus its executable artifact.
    if flag == "stats":
        assert "entries  2" in captured.out
    else:
        assert "cleared 2" in captured.err


def test_cache_gc_cli(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    main(["batch", "--bench", *NAMES, "--cache-dir", cache])
    capsys.readouterr()
    assert main(["cache", "gc", "--cache-dir", cache, "--max-entries", "1"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["entries"] == 1


def test_cache_gc_requires_a_bound(tmp_path, capsys):
    assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2
    assert "give --max-entries" in capsys.readouterr().err


def test_serve_requires_stdio(capsys):
    assert main(["serve"]) == 2
    assert "--stdio" in capsys.readouterr().err


def test_cache_stats_verify_cli(tmp_path, capsys):
    cache = str(tmp_path / "cc")
    assert main(["batch", "--bench", "tak", "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(
        ["cache", "stats", "--cache-dir", cache, "--verify", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    # Both tiers scanned: the ISA entry and its executable artifact.
    assert doc["verify"]["scanned"] == doc["entries"] == 2
    assert doc["verify"]["corrupt"] == 0
    assert doc["verify"]["tiers"]["artifacts"]["scanned"] == 1
    assert doc["counters"]["corruptions"] == 0

    # Corrupt the *artifact* entry on disk: verify must scan that tier
    # too, report it, and exit non-zero.
    from repro.serve.cache import CompileCache

    (artifact,) = CompileCache(root=cache).entries(tier="artifacts")
    with open(artifact.path, "wb") as handle:
        handle.write(b"junk")
    assert main(["cache", "stats", "--cache-dir", cache, "--verify"]) == 1
    out = capsys.readouterr().out
    assert "1 corrupt" in out


def test_batch_writes_metrics_snapshot(tmp_path, capsys):
    path = str(tmp_path / "metrics.json")
    code, _, err = _batch(
        capsys, "--bench", "tak", "--memory-cache", "--metrics-out", path
    )
    assert code == 0
    assert f"metrics written to {path}" in err
    doc = json.loads(open(path).read())
    assert doc["counters"]['repro_requests{op="compile",status="ok"}'] == 1

    # --no-metrics suppresses the snapshot entirely.
    missing = str(tmp_path / "none.json")
    code, _, err = _batch(
        capsys, "--bench", "tak", "--memory-cache",
        "--metrics-out", missing, "--no-metrics",
    )
    assert code == 0
    import os

    assert not os.path.exists(missing)


def test_batch_trace_merges_worker_spans(tmp_path, capsys):
    trace = str(tmp_path / "trace.json")
    code, _, err = _batch(
        capsys, "--bench", "tak", "deriv", "--jobs", "2",
        "--memory-cache", "--no-metrics", "--trace", trace,
    )
    assert code == 0
    doc = json.loads(open(trace).read())
    span_pids = {
        e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"
    }
    assert len(span_pids) >= 2, "worker compile spans missing from trace"


def test_bench_history_appends_records(tmp_path, capsys):
    path = str(tmp_path / "bench.jsonl")
    assert main(["bench", "tak", "--history", path]) == 0
    assert main(["bench", "tak", "--json", "--history", path]) == 0
    capsys.readouterr()
    records = [json.loads(line) for line in open(path)]
    assert len(records) == 2
    for record in records:
        assert record["kind"] == "bench"
        assert record["benchmarks"] == ["tak"]
        assert "ts" in record and "unix_s" in record and "version" in record
        assert record["config"]["save_strategy"] == "lazy"
    assert "rows" in records[1]
    assert records[1]["rows"][0]["counters"]["instructions"] > 0
