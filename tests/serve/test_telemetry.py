"""Service-level telemetry end to end: conservation of pool task
counts, exact worker-delta aggregation, crash flight dumps,
cross-process trace merging, and the daemon's metrics/health ops."""

from __future__ import annotations

import io
import json
import os

from repro.observe import Tracer, chrome_trace
from repro.observe.metrics import (
    MetricsRegistry,
    lint_openmetrics,
    render_openmetrics,
)
from repro.observe.recorder import FlightRecorder
from repro.serve.pool import WorkerPool
from repro.serve.service import BatchService, Request
from repro.serve.stdio import serve_stdio

GOOD = "(define (f x) (* x x)) (f 7)"


def _drain(pool):
    return {r.task_id: r for r in pool.results()}


def _counter(registry, key):
    return registry.snapshot()["counters"].get(key, 0)


# ---------------------------------------------------------------------------
# Conservation
# ---------------------------------------------------------------------------


def test_pool_stats_conserve_over_mixed_outcomes():
    registry = MetricsRegistry()
    with WorkerPool(jobs=2, cache=False, registry=registry) as pool:
        for i in range(3):
            pool.submit("selftest", {"action": "echo", "value": i})
        pool.submit("selftest", {"action": "raise", "message": "boom"})
        pool.submit("selftest", {"action": "exit", "code": 11})
        slow = pool.submit(
            "selftest", {"action": "sleep", "seconds": 60.0}, timeout=0.2
        )
        assert slow
        results = _drain(pool)
        stats = pool.stats()

    # Every submitted task resolved exactly once.
    assert stats["submitted"] == 6
    assert stats["outstanding"] == 0
    assert stats["submitted"] == (
        stats["ok"] + stats["errors"] + stats["cancelled"]
    )
    assert stats["ok"] == 3
    assert len(results) == 6

    # The registry saw the same conservation.
    submitted = _counter(registry, "repro_pool_submitted")
    resolved = sum(
        value
        for key, value in registry.snapshot()["counters"].items()
        if key.startswith("repro_pool_tasks{")
    )
    assert submitted == 6
    assert resolved == submitted
    # Queue depth gauge settles back to zero.
    assert registry.snapshot()["gauges"]["repro_pool_queue_depth"] == 0


def test_pool_cancellation_counts_as_cancelled():
    registry = MetricsRegistry()
    with WorkerPool(jobs=1, cache=False, registry=registry) as pool:
        blocker = pool.submit("selftest", {"action": "sleep", "seconds": 60.0})
        queued = [
            pool.submit("selftest", {"action": "echo", "value": i})
            for i in range(3)
        ]
        assert queued
        pool.cancel_pending()
        pool.cancel(blocker)
        results = _drain(pool)
        stats = pool.stats()
    assert stats["submitted"] == stats["ok"] + stats["errors"] + stats["cancelled"]
    assert stats["cancelled"] >= 3
    assert len(results) == 4


def test_respawn_counted_separately_from_first_spawn():
    registry = MetricsRegistry()
    with WorkerPool(jobs=1, cache=False, registry=registry) as pool:
        pool.submit("selftest", {"action": "exit", "code": 3})
        _drain(pool)
        after_crash = pool.submit("selftest", {"action": "echo", "value": 1})
        results = _drain(pool)
        stats = pool.stats()
    assert results[after_crash].ok
    assert stats["respawns"] == 1
    assert _counter(registry, 'repro_pool_worker_events{event="spawn"}') == 1
    assert _counter(registry, 'repro_pool_worker_events{event="respawn"}') == 1
    assert _counter(registry, 'repro_pool_worker_events{event="crash"}') == 1


# ---------------------------------------------------------------------------
# Worker delta aggregation
# ---------------------------------------------------------------------------


def test_pooled_counters_match_inline_exactly():
    sources = [f"(define (g x) (+ x {i})) (g {i})" for i in range(4)]

    inline = BatchService(jobs=1, cache=True, disk_cache=False,
                          registry=MetricsRegistry())
    inline.run([Request(op="compile", source=s, id=i)
                for i, s in enumerate(sources)])
    pooled = BatchService(jobs=2, cache=True, disk_cache=False,
                          registry=MetricsRegistry())
    pooled.run([Request(op="compile", source=s, id=i)
                for i, s in enumerate(sources)])

    for registry in (inline.registry, pooled.registry):
        snap = registry.snapshot()
        # Every request was a fresh compile: misses and timed compiles
        # agree exactly with the request count, wherever they ran.
        assert snap["counters"]["repro_cache_misses"] == len(sources)
        hist = snap["histograms"]["repro_compile_seconds"]
        assert sum(hist["counts"]) == len(sources)
        assert snap["counters"]['repro_requests{op="compile",status="ok"}'] == len(
            sources
        )


def test_worker_deltas_are_not_double_counted():
    # Two batches through the same service: totals accumulate exactly,
    # not multiplicatively (a fork-inheritance bug would double-count).
    service = BatchService(jobs=2, cache=True, disk_cache=False,
                           registry=MetricsRegistry())
    service.run([Request(op="compile", source=GOOD, id="a")])
    service.run([Request(op="compile", source="(+ 1 2)", id="b")])
    snap = service.registry.snapshot()
    assert snap["counters"]["repro_cache_misses"] == 2
    assert sum(snap["histograms"]["repro_compile_seconds"]["counts"]) == 2


def test_service_registry_renders_clean_openmetrics():
    service = BatchService(jobs=2, cache=True, disk_cache=False,
                           registry=MetricsRegistry())
    service.run([Request(op="run", source=GOOD, id="r")])
    text = render_openmetrics(service.registry.snapshot())
    assert lint_openmetrics(text) == []
    assert "repro_requests_total" in text


def test_write_metrics_snapshot(tmp_path):
    service = BatchService(jobs=1, cache=False, registry=MetricsRegistry())
    service.run([Request(op="compile", source=GOOD)])
    path = tmp_path / "metrics.json"
    service.write_metrics(str(path))
    doc = json.loads(path.read_text())
    assert doc["counters"]['repro_requests{op="compile",status="ok"}'] == 1


# ---------------------------------------------------------------------------
# Flight recorder wiring
# ---------------------------------------------------------------------------


def test_worker_crash_dumps_flight_recording(tmp_path):
    registry = MetricsRegistry()
    recorder = FlightRecorder(capacity=64)
    flight_dir = tmp_path / "flights"
    with WorkerPool(
        jobs=2,
        cache=False,
        registry=registry,
        recorder=recorder,
        flight_dir=str(flight_dir),
    ) as pool:
        victim = pool.submit("selftest", {"action": "exit", "code": 7})
        pool.submit("selftest", {"action": "echo", "value": 1})
        _drain(pool)
        dumps = list(pool.flight_dumps)

    assert len(dumps) == 1
    doc = json.loads(open(dumps[0]).read())
    assert doc["reason"] == "worker-crash"
    # The dump carries the crashed task's request...
    assert doc["context"]["task_id"] == victim
    assert doc["context"]["payload"]["action"] == "exit"
    # ...and the timeline that led up to it.
    kinds = [e["kind"] for e in doc["events"]]
    assert "pool.submit" in kinds
    assert _counter(registry, 'repro_flight_dumps{reason="worker-crash"}') == 1


def test_no_flight_dump_without_flight_dir(tmp_path):
    with WorkerPool(jobs=1, cache=False, recorder=FlightRecorder()) as pool:
        pool.submit("selftest", {"action": "exit", "code": 7})
        _drain(pool)
        assert pool.flight_dumps == []


def test_batch_service_collects_pool_flight_dumps(tmp_path):
    # The service threads flight_dir into its pool; a clean batch
    # produces no dumps and stats() omits the key.
    service = BatchService(
        jobs=2,
        cache=False,
        registry=MetricsRegistry(),
        recorder=FlightRecorder(),
        flight_dir=str(tmp_path),
    )
    responses = service.run([Request(op="compile", source=GOOD, id="fine")])
    assert responses[0].ok
    assert service.flight_dumps == []
    assert "flight_dumps" not in service.stats()


# ---------------------------------------------------------------------------
# Cross-process trace merging
# ---------------------------------------------------------------------------


def test_pooled_compile_spans_merge_into_parent_trace():
    tracer = Tracer()
    service = BatchService(jobs=2, cache=True, disk_cache=False,
                           tracer=tracer, registry=MetricsRegistry())
    sources = [f"(+ {i} {i})" for i in range(4)]
    responses = service.run(
        [Request(op="compile", source=s, id=i) for i, s in enumerate(sources)]
    )
    assert all(r.ok for r in responses)
    assert service.worker_spans, "workers shipped no span payloads"
    for payload in service.worker_spans:
        assert payload["trace_id"] == tracer.trace_id
        assert payload["pid"] != os.getpid()

    doc = chrome_trace(tracer, workers=service.worker_spans)
    events = doc["traceEvents"]
    pids = {e["pid"] for e in events if e.get("ph") == "X"}
    assert len(pids) >= 2, "expected parent and worker pid rows"
    names = {e["name"] for e in events if e.get("ph") == "X"}
    # The compiler's per-pass spans landed from the worker processes.
    assert "expand" in names and "allocate" in names


def test_worker_spans_from_other_trace_are_rejected():
    tracer = Tracer()
    stray = {
        "trace_id": "deadbeef",
        "pid": 4242,
        "wall_epoch_ns": 0,
        "spans": [{"name": "stale", "start": 0, "dur": 1, "args": {}}],
    }
    doc = chrome_trace(tracer, workers=[stray])
    assert 4242 not in {e.get("pid") for e in doc["traceEvents"]}
    assert "stale" not in {e.get("name") for e in doc["traceEvents"]}


def test_untraced_service_ships_no_spans():
    service = BatchService(jobs=2, cache=False, registry=MetricsRegistry())
    service.run([Request(op="compile", source=GOOD)])
    assert service.worker_spans == []


# ---------------------------------------------------------------------------
# The stdio daemon's control ops
# ---------------------------------------------------------------------------


def _serve(lines, **kwargs):
    raw = "\n".join(json.dumps(line) for line in lines)
    stdout = io.StringIO()
    code = serve_stdio(
        stdin=io.StringIO(raw + "\n"), stdout=stdout, jobs=1, cache=False,
        **kwargs,
    )
    docs = [json.loads(line) for line in stdout.getvalue().splitlines()]
    return {d["id"]: d for d in docs if "id" in d}, code


def test_stdio_metrics_op_returns_snapshot():
    docs, code = _serve(
        [
            {"id": 1, "op": "compile", "source": GOOD},
            {"id": 2, "op": "metrics"},
            {"id": 3, "op": "shutdown"},
        ]
    )
    assert code == 0
    response = docs[2]
    assert response["ok"]
    snap = response["metrics"]
    # Control ops answer immediately, so the compile may still be in
    # flight — but its submission is already counted.
    assert snap["counters"]["repro_pool_submitted"] == 1
    assert snap["version"] == 1
    assert "meta" in snap and "histograms" in snap


def test_stdio_metrics_op_openmetrics_format():
    docs, _ = _serve(
        [
            {"id": 1, "op": "compile", "source": GOOD},
            {"id": 2, "op": "metrics", "format": "openmetrics"},
            {"id": 3, "op": "shutdown"},
        ]
    )
    text = docs[2]["openmetrics"]
    assert lint_openmetrics(text) == []
    assert "repro_pool_submitted_total 1" in text


def test_stdio_health_op():
    docs, _ = _serve(
        [{"id": 1, "op": "health"}, {"id": 2, "op": "shutdown"}]
    )
    health = docs[1]["health"]
    assert health["status"] == "ok"
    assert health["pid"] == os.getpid()
    assert health["jobs"] == 1
    assert health["uptime_s"] >= 0


def test_stdio_dumps_metrics_snapshot_on_exit(tmp_path):
    path = tmp_path / "daemon.json"
    _, code = _serve(
        [
            {"id": 1, "op": "compile", "source": GOOD},
            {"id": 2, "op": "shutdown"},
        ],
        metrics_out=str(path),
    )
    assert code == 0
    doc = json.loads(path.read_text())
    assert doc["counters"]['repro_requests{op="compile",status="ok"}'] == 1
