"""The ``repro serve --stdio`` JSON-lines daemon, run in-process over
string streams."""

from __future__ import annotations

import io
import json

from repro.serve.stdio import PROTOCOL_VERSION, serve_stdio


def _serve(lines, jobs=1, **kwargs):
    """Feed *lines* (dicts or raw strings) to the daemon; return the
    parsed response documents in emission order and the exit code."""
    raw = "\n".join(
        line if isinstance(line, str) else json.dumps(line) for line in lines
    )
    stdout = io.StringIO()
    code = serve_stdio(
        stdin=io.StringIO(raw + "\n"), stdout=stdout, jobs=jobs, cache=False,
        **kwargs
    )
    docs = [json.loads(line) for line in stdout.getvalue().splitlines()]
    return docs, code


def _by_id(docs):
    return {d["id"]: d for d in docs if "id" in d and d.get("event") is None}


def test_ready_banner_and_bye():
    docs, code = _serve([{"id": 1, "op": "ping"}, {"id": 2, "op": "shutdown"}])
    assert code == 0
    assert docs[0]["event"] == "ready"
    assert docs[0]["protocol"] == PROTOCOL_VERSION
    assert docs[0]["jobs"] == 1
    assert docs[-1]["event"] == "bye"


def test_ping_pong():
    docs, _ = _serve([{"id": "p", "op": "ping"}, {"op": "shutdown"}])
    assert _by_id(docs)["p"] == {"id": "p", "ok": True, "pong": True}


def test_run_request_round_trip():
    docs, _ = _serve(
        [
            {"id": 1, "op": "run", "source": "(+ 20 22)"},
            {"id": 2, "op": "shutdown"},
        ]
    )
    response = _by_id(docs)[1]
    assert response["ok"]
    assert response["value"] == "42"
    assert response["op"] == "run"


def test_compile_request_and_config():
    docs, _ = _serve(
        [
            {
                "id": "c",
                "op": "compile",
                "source": "(define (f x) (+ x 1)) (f 1)",
                "config": {"save_strategy": "early"},
            },
            {"op": "shutdown"},
        ]
    )
    response = _by_id(docs)["c"]
    assert response["ok"]
    assert response["instructions"] > 0


def test_errors_are_per_request():
    # No shutdown line: shutdown cancels queued requests, EOF drains them.
    docs, _ = _serve(
        [
            {"id": "bad", "op": "run", "source": "(car 5)"},
            {"id": "good", "op": "run", "source": "(+ 1 1)"},
        ]
    )
    by_id = _by_id(docs)
    assert by_id["bad"]["ok"] is False
    assert by_id["bad"]["error_kind"] == "runtime-error"
    assert by_id["good"]["value"] == "2"


def test_unparseable_line_is_protocol_error():
    docs, _ = _serve(["this is not json", {"op": "shutdown"}])
    errors = [d for d in docs if d.get("error_kind") == "protocol"]
    assert len(errors) == 1
    assert errors[0]["id"] is None


def test_bad_request_shape_is_protocol_error():
    docs, _ = _serve(
        [
            {"id": 7, "op": "run"},  # no source
            {"id": 8, "op": "frobnicate", "source": "(+ 1 2)"},
            {"op": "shutdown"},
        ]
    )
    by_id = _by_id(docs)
    assert by_id[7]["error_kind"] == "protocol"
    assert by_id[8]["error_kind"] == "protocol"


def test_stats_control():
    docs, _ = _serve([{"id": "s", "op": "stats"}, {"op": "shutdown"}])
    stats = _by_id(docs)["s"]["stats"]
    assert stats["jobs"] == 1
    assert "queue_depth" in stats


def test_budget_enforced():
    docs, _ = _serve(
        [
            {
                "id": "b",
                "op": "run",
                "source": "(define (spin n) (if (= n 0) 0 (spin (- n 1)))) (spin 100000000)",
                "max_instructions": 10000,
            },
            {"op": "shutdown"},
        ]
    )
    response = _by_id(docs)["b"]
    assert response["ok"] is False
    assert response["error_kind"] == "budget"


def test_eof_drains_in_flight():
    # No shutdown line: EOF should still deliver the pending response.
    docs, code = _serve([{"id": 1, "op": "run", "source": "(* 6 7)"}])
    assert code == 0
    assert _by_id(docs)[1]["value"] == "42"
    assert docs[-1]["event"] == "bye"


def test_shutdown_cancels_queued_requests():
    lines = [
        {"id": "slow", "op": "run",
         "source": "(define (spin n) (if (= n 0) 0 (spin (- n 1)))) (spin 2000000)"},
        {"id": "queued", "op": "run", "source": "(+ 1 1)"},
        {"id": "bye", "op": "shutdown"},
    ]
    docs, _ = _serve(lines, jobs=1)
    by_id = _by_id(docs)
    # The queued request either ran before shutdown was processed or
    # was cancelled — but it must have been answered either way.
    assert "queued" in by_id
    assert by_id["queued"]["ok"] or by_id["queued"]["error_kind"] == "cancelled"


def test_eof_mid_burst_drains_every_response():
    # A burst of requests followed immediately by EOF (no shutdown):
    # the daemon must answer every id before bye, not just the ones
    # that finished while stdin was still open.
    lines = [
        {"id": i, "op": "run", "source": f"(+ {i} 100)"} for i in range(8)
    ]
    docs, code = _serve(lines, jobs=2)
    assert code == 0
    by_id = _by_id(docs)
    for i in range(8):
        assert by_id[i]["value"] == str(i + 100), f"request {i} lost at EOF"
    assert docs[-1]["event"] == "bye"


class _DyingPipe(io.StringIO):
    """A stdout that dies (like a killed client's pipe) after N writes."""

    def __init__(self, fail_after: int) -> None:
        super().__init__()
        self.fail_after = fail_after
        self.writes = 0

    def write(self, text: str) -> int:
        self.writes += 1
        if self.writes > self.fail_after:
            raise BrokenPipeError("client went away")
        return super().write(text)


def test_client_death_mid_burst_exits_cleanly(tmp_path):
    # Regression test: the client dies mid-burst (EOF on stdin AND a
    # broken stdout pipe).  The daemon used to crash out of its drain
    # on the first failed write — exiting nonzero with queued responses
    # undelivered and no final metrics snapshot.  Now a dead pipe joins
    # the same graceful-drain path as shutdown/EOF: exit 0, metrics
    # flushed.
    from repro.serve.stdio import serve_stdio

    metrics_out = tmp_path / "metrics.json"
    lines = "\n".join(
        json.dumps({"id": i, "op": "run", "source": f"(* {i} 3)"})
        for i in range(6)
    )
    stdout = _DyingPipe(fail_after=2)  # ready banner + one response
    code = serve_stdio(
        stdin=io.StringIO(lines + "\n"),
        stdout=stdout,
        jobs=1,
        cache=False,
        metrics_out=str(metrics_out),
    )
    assert code == 0
    assert metrics_out.exists(), "final metrics snapshot not flushed"
    # Whatever made it out before the pipe broke is intact JSON.
    for line in stdout.getvalue().splitlines():
        json.loads(line)


def test_client_death_drops_queued_work(tmp_path):
    # With the client gone nobody reads the answers: queued (not yet
    # running) tasks are cancelled rather than computed for a dead
    # peer, and the daemon still exits 0.
    from repro.serve.stdio import serve_stdio

    lines = "\n".join(
        json.dumps({"id": i, "op": "run", "source": "(+ 1 1)"})
        for i in range(10)
    )
    stdout = _DyingPipe(fail_after=1)  # dies right after the banner
    code = serve_stdio(
        stdin=io.StringIO(lines + "\n"), stdout=stdout, jobs=1, cache=False
    )
    assert code == 0


def test_stdio_requests_are_traced(tmp_path):
    trace_dir = tmp_path / "spans"
    docs, code = _serve(
        [
            {"id": 1, "op": "run", "source": "(+ 20 22)",
             "traceparent": "ab" * 8 + "-" + "cd" * 8},
            {"id": 2, "op": "run", "source": "(car 5)"},
            # No shutdown line: EOF drains, so neither request is
            # cancelled out of the queue before it runs.
        ],
        trace_dir=str(trace_dir),
        trace_sample=1.0,
    )
    assert code == 0
    by_id = _by_id(docs)
    assert by_id[1]["ok"]
    # The response echoes the client's trace id.
    assert by_id[1]["traceparent"].startswith("ab" * 8 + "-")
    assert by_id[2]["error_kind"] == "runtime-error"

    from repro.observe.spanstore import build_tree, load_trace

    records = load_trace(str(trace_dir), "ab" * 8)
    names = {r["name"] for r in records}
    assert {"request", "intake", "queue", "run", "respond"} <= names
    # Worker compile spans rode home through the task meta.
    assert "compile" in names
    assert len({r["pid"] for r in records}) >= 2
    by_name = {r["name"]: r for r in records}
    assert by_name["request"]["parent"] == "cd" * 8
    assert by_name["request"]["attrs"]["status"] == "ok"
    assert by_name["compile"]["parent"] == by_name["run"]["span"]
    (root,) = build_tree(records)
    assert root[0]["name"] == "request"
    # The error request's trace is there too, status classified.
    err_trace = by_id[2]["traceparent"].split("-")[0]
    err_records = load_trace(str(trace_dir), err_trace)
    err_root = next(r for r in err_records if r["name"] == "request")
    assert err_root["attrs"]["status"] == "runtime-error"


def test_daemon_subprocess_round_trip():
    # Regression test: run the daemon as a real subprocess over real
    # pipes.  A worker forked while the reader thread held sys.stdin's
    # buffered-stream lock used to inherit the held lock and deadlock
    # in multiprocessing's _close_stdin, so the daemon never answered.
    # The in-process StringIO harness above cannot reproduce that; only
    # a blocking read on a real fd can.
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    lines = "\n".join(
        [
            json.dumps({"id": 1, "op": "run", "source": "(+ 20 22)"}),
            json.dumps({"id": 2, "op": "shutdown"}),
        ]
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--stdio", "--no-cache"],
        input=lines + "\n",
        capture_output=True,
        text=True,
        timeout=60,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    docs = [json.loads(line) for line in proc.stdout.splitlines()]
    assert _by_id(docs)[1]["value"] == "42"
    assert docs[-1]["event"] == "bye"
