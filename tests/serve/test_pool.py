"""The worker pool's scheduling guarantees: crash isolation, timeouts,
cancellation, and telemetry — exercised through the deterministic
``selftest`` task handlers."""

from __future__ import annotations

import pytest

from repro.serve.pool import WorkerPool, default_jobs


def _collect(pool):
    return {r.task_id: r for r in pool.results()}


@pytest.fixture
def pool():
    with WorkerPool(jobs=2, cache=False) as p:
        yield p


def test_echo_round_trip(pool):
    tid = pool.submit("selftest", {"action": "echo", "value": 42})
    results = _collect(pool)
    assert results[tid].ok
    assert results[tid].value["echo"] == 42


def test_tasks_spread_over_workers(pool):
    ids = [
        pool.submit("selftest", {"action": "echo", "value": i}) for i in range(8)
    ]
    results = _collect(pool)
    assert all(results[t].ok for t in ids)
    assert {results[t].value["echo"] for t in ids} == set(range(8))


def test_handler_exception_is_classified_not_fatal(pool):
    bad = pool.submit("selftest", {"action": "raise", "message": "boom"})
    good = pool.submit("selftest", {"action": "echo", "value": "fine"})
    results = _collect(pool)
    assert not results[bad].ok
    assert results[bad].error_kind == "error"
    assert "boom" in results[bad].error
    assert results[good].ok


def test_worker_crash_fails_only_its_task(pool):
    crash = pool.submit("selftest", {"action": "exit", "code": 13})
    okay = [
        pool.submit("selftest", {"action": "echo", "value": i}) for i in range(3)
    ]
    results = _collect(pool)
    assert results[crash].error_kind == "crash"
    assert "13" in results[crash].error
    assert all(results[t].ok for t in okay)
    assert pool.stats()["crashes"] == 1


def test_pool_survives_repeated_crashes(pool):
    crashes = [
        pool.submit("selftest", {"action": "exit", "code": 9}) for _ in range(3)
    ]
    okay = pool.submit("selftest", {"action": "echo", "value": "alive"})
    results = _collect(pool)
    assert all(results[t].error_kind == "crash" for t in crashes)
    assert results[okay].ok


def test_timeout_kills_the_worker(pool):
    slow = pool.submit(
        "selftest", {"action": "sleep", "seconds": 60.0}, timeout=0.3
    )
    fast = pool.submit("selftest", {"action": "echo", "value": "quick"})
    results = _collect(pool)
    assert results[slow].error_kind == "timeout"
    assert results[fast].ok
    assert pool.stats()["timeouts"] == 1


def test_cancel_queued_task():
    with WorkerPool(jobs=1, cache=False) as pool:
        running = pool.submit("selftest", {"action": "sleep", "seconds": 0.4})
        queued = pool.submit("selftest", {"action": "echo", "value": "no"})
        assert pool.cancel(queued)
        results = _collect(pool)
        assert results[queued].error_kind == "cancelled"
        assert results[running].ok


def test_cancel_running_task(pool):
    slow = pool.submit("selftest", {"action": "sleep", "seconds": 60.0})
    # Give the scheduler a beat to hand the task to a worker.
    pool.poll(0.2)
    assert pool.cancel(slow)
    results = _collect(pool)
    assert results[slow].error_kind == "cancelled"


def test_cancel_unknown_id(pool):
    assert not pool.cancel(999)


def test_cancel_pending_drops_only_queued():
    with WorkerPool(jobs=1, cache=False) as pool:
        running = pool.submit("selftest", {"action": "sleep", "seconds": 0.3})
        queued = [
            pool.submit("selftest", {"action": "echo", "value": i})
            for i in range(3)
        ]
        dropped = pool.cancel_pending()
        assert dropped == len(queued)
        results = _collect(pool)
        assert results[running].ok
        assert all(results[t].error_kind == "cancelled" for t in queued)
        assert pool.stats()["cancelled"] == len(queued)


def test_stats_shape(pool):
    pool.submit("selftest", {"action": "echo", "value": 1})
    _collect(pool)
    stats = pool.stats()
    assert stats["jobs"] == 2
    assert stats["completed"] == 1
    assert stats["queue_depth"] == 0
    assert stats["queue_depth_max"] >= 1
    assert stats["latency_max_s"] >= stats["latency_avg_s"] >= 0


def test_unknown_kind_is_an_error(pool):
    tid = pool.submit("no-such-kind", {})
    results = _collect(pool)
    assert not results[tid].ok


def test_default_jobs_positive():
    assert default_jobs() >= 1
