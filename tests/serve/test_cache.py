"""The content-addressed compile cache: keys, serialization, tiers.

The correctness bar here is the one docs/serving.md promises: a cache
hit is observationally identical to a fresh compile (values, output,
counters, profiles, under both VM dispatch loops), the key covers every
input that can change the generated code, and a damaged store degrades
to misses, never to errors.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro.config import CompilerConfig, CostModel
from repro.pipeline import compile_source, run_compiled
from repro.serve.cache import (
    CacheCorrupt,
    CompileCache,
    cache_key,
    canonical_source,
    default_cache_dir,
    deserialize_compiled,
    serialize_compiled,
)
from repro.sexp.reader import ReaderError
from repro.sexp.writer import write_datum

TAK = "(define (tak x y z) (if (not (< y x)) z (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y)))) (tak 8 4 2)"

CONFIG_SPREAD = [
    pytest.param(CompilerConfig(), id="paper-default"),
    pytest.param(CompilerConfig.baseline(), id="baseline"),
    pytest.param(CompilerConfig(save_strategy="early"), id="early-save"),
    pytest.param(
        CompilerConfig(save_convention="callee", save_strategy="lazy"),
        id="callee-lazy",
    ),
    pytest.param(CompilerConfig(shuffle_strategy="naive"), id="naive-shuffle"),
    pytest.param(CompilerConfig(vm_fast=False), id="legacy-vm"),
]


# -- canonicalization and keys -----------------------------------------


def test_canonical_source_ignores_formatting():
    a = canonical_source("(define (f x)\n  ; doubles\n  (+ x   x))\n(f 3)")
    b = canonical_source("(define (f x) (+ x x)) (f 3)")
    assert a == b


def test_canonical_source_distinguishes_prelude():
    assert canonical_source("(+ 1 2)", prelude=True) != canonical_source(
        "(+ 1 2)", prelude=False
    )


def test_canonical_source_rejects_unreadable():
    with pytest.raises(ReaderError):
        canonical_source("(unbalanced")


def test_cache_key_stable_across_formatting():
    config = CompilerConfig()
    assert cache_key("(+ 1 ; comment\n 2)", config) == cache_key("(+ 1 2)", config)


def test_cache_key_distinguishes_programs():
    assert cache_key("(+ 1 2)") != cache_key("(+ 1 3)")


# -- config fingerprint exhaustiveness ---------------------------------

# One mutation per CompilerConfig field, each producing a *valid*
# config that differs from the default only in that field.  The test
# below fails if a field is added without a mutation here, so a new
# knob can never be silently left out of the cache key.
FIELD_MUTATIONS = {
    "allocator": "linearscan",
    "num_arg_regs": 4,
    "num_temp_regs": 3,
    "lambda_lift": True,
    "lambda_lift_max_params": 4,
    "peephole": False,
    "save_strategy": "early",
    "restore_strategy": "lazy",
    "shuffle_strategy": "naive",
    "save_convention": "callee",
    "branch_prediction": "static-calls",
    "trace": "all",
    "vm_fast": False,
    "artifact_cache": False,
    "aot_direct_calls": False,
    "cost_model": CostModel(load_latency=5),
}


def test_fingerprint_mutation_table_is_exhaustive():
    names = {f.name for f in dataclasses.fields(CompilerConfig)}
    assert names == set(FIELD_MUTATIONS), (
        "CompilerConfig grew a field without a FIELD_MUTATIONS entry; "
        "add one so the cache key is known to cover it"
    )


@pytest.mark.parametrize("name", sorted(FIELD_MUTATIONS))
def test_fingerprint_changes_on_every_field(name):
    default = CompilerConfig()
    mutated = default.with_(**{name: FIELD_MUTATIONS[name]})
    assert mutated.fingerprint() != default.fingerprint()
    assert cache_key("(+ 1 2)", mutated) != cache_key("(+ 1 2)", default)


def test_fingerprint_covers_cost_model_fields():
    default = CompilerConfig()
    for f in dataclasses.fields(CostModel):
        model = dataclasses.replace(default.cost_model, **{f.name: 99})
        assert default.with_(cost_model=model).fingerprint() != default.fingerprint()


def test_as_dict_round_trips():
    config = CompilerConfig(
        save_strategy="early", vm_fast=False, cost_model=CostModel(load_latency=7)
    )
    again = CompilerConfig.from_dict(config.as_dict())
    assert again == config
    assert again.fingerprint() == config.fingerprint()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown config fields"):
        CompilerConfig.from_dict({"num_arg_regs": 6, "turbo": True})


# -- serialization ------------------------------------------------------


def _run_all_ways(compiled):
    """(value, output, counters, profile rows) under both VM loops."""
    out = {}
    for fast in (True, False):
        result = run_compiled(compiled, profile=True, vm_fast=fast)
        # The profile "label" embeds the CodeObject uid — a per-process
        # counter, not an observable of the compiled program.
        rows = sorted(
            (
                {k: v for k, v in p.as_dict().items() if k != "label"}
                for p in result.profile.profiles.values()
            ),
            key=lambda d: d["name"],
        )
        out[fast] = (
            write_datum(result.value),
            result.output,
            result.counters.as_dict(),
            rows,
        )
    return out


@pytest.mark.parametrize("config", CONFIG_SPREAD)
def test_roundtrip_is_observationally_identical(config):
    fresh = compile_source(TAK, config)
    thawed = deserialize_compiled(serialize_compiled(fresh))
    assert _run_all_ways(thawed) == _run_all_ways(compile_source(TAK, config))


def test_serialize_restores_fast_caches():
    compiled = compile_source(TAK, CompilerConfig())
    run_compiled(compiled)  # populate the lazily built fast caches
    populated = [c.fast_instructions for c in compiled.codes]
    serialize_compiled(compiled)
    assert [c.fast_instructions for c in compiled.codes] == populated


def test_deserialize_rejects_bad_magic():
    with pytest.raises(CacheCorrupt, match="header"):
        deserialize_compiled(b"NOPE" + b"\x00" * 40)


def test_deserialize_rejects_truncation():
    blob = serialize_compiled(compile_source("(+ 1 2)", CompilerConfig()))
    with pytest.raises(CacheCorrupt):
        deserialize_compiled(blob[: len(blob) // 2])


def test_deserialize_rejects_flipped_byte():
    blob = bytearray(serialize_compiled(compile_source("(+ 1 2)", CompilerConfig())))
    blob[-1] ^= 0xFF
    with pytest.raises(CacheCorrupt, match="checksum"):
        deserialize_compiled(bytes(blob))


def test_deserialize_rejects_wrong_payload_type():
    body = pickle.dumps({"not": "a program"})
    import hashlib

    from repro.serve.cache import MAGIC

    framed = MAGIC + hashlib.sha256(body).digest() + body
    with pytest.raises(CacheCorrupt, match="payload type"):
        deserialize_compiled(framed)


# -- the cache proper ---------------------------------------------------


def test_hit_matches_fresh_compile(tmp_path):
    cache = CompileCache(root=str(tmp_path))
    config = CompilerConfig()
    first, hit1 = cache.compile(TAK, config)
    second, hit2 = cache.compile(TAK.replace(" ", "  ") + " ; same program", config)
    assert (hit1, hit2) == (False, True)
    assert second is first  # memory tier returns the same object
    assert _run_all_ways(second) == _run_all_ways(compile_source(TAK, config))


def test_disk_hit_survives_new_process_object(tmp_path):
    # artifacts=False pins this to the ISA tier; the artifact tier's
    # process-survival behaviour is tested in tests/vm/test_artifact.py.
    CompileCache(root=str(tmp_path), artifacts=False).compile(TAK, CompilerConfig())
    fresh_cache = CompileCache(root=str(tmp_path), artifacts=False)
    compiled, hit = fresh_cache.compile(TAK, CompilerConfig())
    assert hit
    assert fresh_cache.stats.disk_hits == 1
    assert _run_all_ways(compiled) == _run_all_ways(
        compile_source(TAK, CompilerConfig())
    )


def test_config_spread_gets_distinct_entries(tmp_path):
    cache = CompileCache(root=str(tmp_path))
    for param in CONFIG_SPREAD:
        _, hit = cache.compile(TAK, param.values[0])
        assert not hit
    assert len(cache.entries(tier="objects")) == len(CONFIG_SPREAD)
    # Every vm_fast config also wrote an executable artifact.
    fast = sum(1 for p in CONFIG_SPREAD if p.values[0].vm_fast)
    assert len(cache.entries(tier="artifacts")) == fast


def test_corrupted_entry_is_a_miss_not_a_crash(tmp_path):
    cache = CompileCache(root=str(tmp_path), artifacts=False)
    cache.compile(TAK, CompilerConfig())
    (entry,) = cache.entries()
    with open(entry.path, "wb") as handle:
        handle.write(b"garbage")
    fresh = CompileCache(root=str(tmp_path), artifacts=False)
    compiled, hit = fresh.compile(TAK, CompilerConfig())
    assert not hit
    assert fresh.stats.corruptions == 1
    # The bad entry was discarded and rewritten; next time hits.
    _, hit2 = CompileCache(root=str(tmp_path), artifacts=False).compile(
        TAK, CompilerConfig()
    )
    assert hit2
    assert compiled.total_instructions() > 0


def test_truncated_entry_is_a_miss(tmp_path):
    cache = CompileCache(root=str(tmp_path), artifacts=False)
    cache.compile(TAK, CompilerConfig())
    (entry,) = cache.entries()
    with open(entry.path, "rb") as handle:
        data = handle.read()
    with open(entry.path, "wb") as handle:
        handle.write(data[: len(data) // 3])
    fresh = CompileCache(root=str(tmp_path), artifacts=False)
    _, hit = fresh.compile(TAK, CompilerConfig())
    assert not hit
    assert fresh.stats.corruptions == 1


def test_memory_lru_evicts_oldest(tmp_path):
    cache = CompileCache(root=str(tmp_path), memory_entries=2, artifacts=False)
    sources = ["(+ 1 1)", "(+ 2 2)", "(+ 3 3)"]
    for source in sources:
        cache.compile(source, CompilerConfig())
    assert cache.stats.evictions == 1
    # Oldest fell out of memory but still hits from disk.
    _, hit = cache.compile(sources[0], CompilerConfig())
    assert hit
    assert cache.stats.disk_hits == 1


def test_memory_only_mode_touches_no_disk(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
    cache = CompileCache(disk=False)
    _, hit1 = cache.compile("(+ 1 2)", CompilerConfig())
    _, hit2 = cache.compile("(+ 1 2)", CompilerConfig())
    assert (hit1, hit2) == (False, True)
    assert not os.path.exists(str(tmp_path / "never"))


def test_gc_evicts_lru_first(tmp_path):
    cache = CompileCache(root=str(tmp_path), artifacts=False)
    sources = ["(+ 1 1)", "(+ 2 2)", "(+ 3 3)"]
    for source in sources:
        cache.compile(source, CompilerConfig())
    entries = cache.entries()
    os.utime(entries[0].path, (1, 1))  # force a stale mtime
    removed = cache.gc(max_entries=2)
    assert removed == 1
    keys = {e.key for e in cache.entries()}
    assert entries[0].key not in keys


def test_gc_max_bytes(tmp_path):
    cache = CompileCache(root=str(tmp_path))
    for source in ["(+ 1 1)", "(+ 2 2)"]:
        cache.compile(source, CompilerConfig())
    _, total = cache.disk_usage()
    assert cache.gc(max_bytes=total - 1) >= 1


def test_clear_invalidates_everything(tmp_path):
    cache = CompileCache(root=str(tmp_path))
    cache.compile("(+ 1 2)", CompilerConfig())
    # clear drops both tiers: the ISA entry and its artifact.
    assert cache.clear() == 2
    assert cache.disk_usage() == (0, 0)
    _, hit = cache.compile("(+ 1 2)", CompilerConfig())
    assert not hit


def test_default_cache_dir_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/explicit/dir")
    assert default_cache_dir() == "/explicit/dir"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", "/xdg")
    assert default_cache_dir() == os.path.join("/xdg", "repro")
    monkeypatch.delenv("XDG_CACHE_HOME")
    monkeypatch.setenv("HOME", "/home/someone")
    assert default_cache_dir() == "/home/someone/.cache/repro"


def test_verify_scans_and_removes_corrupt_entries(tmp_path):
    cache = CompileCache(root=str(tmp_path), artifacts=False)
    cache.compile(TAK, CompilerConfig())
    cache.compile("(+ 1 2)", CompilerConfig())
    entries = cache.entries()
    with open(entries[0].path, "wb") as handle:
        handle.write(b"garbage")

    fresh = CompileCache(root=str(tmp_path), artifacts=False)
    report = fresh.verify()
    assert report["scanned"] == 2
    assert report["ok"] == 1
    assert report["corrupt"] == 1
    assert report["removed"] == 0
    assert fresh.stats.corruptions == 1
    assert fresh.disk_usage()[0] == 2  # scan-only leaves the store alone

    report = fresh.verify(remove=True)
    assert report["removed"] == 1
    assert fresh.disk_usage()[0] == 1
    # After removal the store is clean.
    assert CompileCache(root=str(tmp_path)).verify()["corrupt"] == 0


# -- sharding ---------------------------------------------------------


def test_shard_index_is_stable_and_in_range():
    from repro.serve.cache import shard_index

    key = cache_key(TAK, CompilerConfig())
    assert 0 <= shard_index(key, 8) < 8
    assert shard_index(key, 8) == shard_index(key, 8)
    assert shard_index(key, 1) == 0


def test_sharded_cache_round_trip_and_shared_disk(tmp_path):
    from repro.serve.cache import ShardedCompileCache

    sharded = ShardedCompileCache(root=str(tmp_path), shards=4)
    compiled, hit = sharded.compile(TAK, CompilerConfig())
    assert not hit
    _, hit = sharded.compile(TAK, CompilerConfig())
    assert hit
    assert run_compiled(compiled).value is not None
    # The shards share one disk root: a plain cache over the same root
    # (any shard count) sees the entry.
    plain = CompileCache(root=str(tmp_path))
    _, hit = plain.compile(TAK, CompilerConfig())
    assert hit
    other = ShardedCompileCache(root=str(tmp_path), shards=8)
    _, hit = other.compile(TAK, CompilerConfig())
    assert hit


def test_sharded_cache_spreads_memory_entries(tmp_path):
    from repro.serve.cache import ShardedCompileCache, shard_index

    sharded = ShardedCompileCache(root=str(tmp_path), shards=4, memory_entries=64)
    sources = [f"(+ {i} {i})" for i in range(24)]
    buckets = set()
    for source in sources:
        sharded.compile(source, CompilerConfig())
        buckets.add(shard_index(cache_key(source, CompilerConfig()), 4))
    assert len(buckets) > 1  # the keyspace actually spreads
    stats = sharded.stats
    assert stats.misses == len(sources)
    assert stats.stores == len(sources)
