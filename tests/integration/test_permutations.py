"""Shuffle correctness oracle: every permutation of argument registers
must be realized exactly, under every shuffle strategy.

A call ``(f xσ(1) ... xσ(n))`` is a parallel assignment of the argument
registers; permutations with long cycles are the worst case for the
shuffler (the paper's NP-complete ordering problem)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CompilerConfig
from repro.pipeline import run_source
from repro.sexp.writer import write_datum

PARAMS = ["a", "b", "c", "d", "e", "f"]


def permutation_program(perm, n):
    names = PARAMS[:n]
    reordered = " ".join(names[i] for i in perm)
    body = " ".join(names)
    return (
        f"(define (target {' '.join(names)}) (list {body}))"
        f"(define (caller {' '.join(names)}) (target {reordered}))"
        f"(caller {' '.join(str(i * 10) for i in range(1, n + 1))})"
    )


def expected_value(perm, n):
    values = [(i + 1) * 10 for i in range(n)]
    return "(" + " ".join(str(values[i]) for i in perm) + ")"


STRATEGIES = ["greedy", "naive", "spill-all", "optimal"]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize(
    "perm",
    [
        (1, 0),  # swap
        (1, 2, 0),  # 3-cycle
        (2, 0, 1),  # 3-cycle, other direction
        (1, 0, 3, 2),  # two disjoint swaps
        (3, 2, 1, 0),  # full reversal
        (1, 2, 3, 4, 0),  # 5-cycle
        (5, 4, 3, 2, 1, 0),  # 6-element reversal
        (1, 2, 0, 4, 5, 3),  # two 3-cycles
    ],
)
def test_fixed_permutations(perm, strategy):
    n = len(perm)
    src = permutation_program(perm, n)
    result = run_source(
        src, CompilerConfig(shuffle_strategy=strategy), prelude=False, debug=True
    )
    assert write_datum(result.value) == expected_value(perm, n)


@pytest.mark.parametrize("strategy", ["greedy", "optimal"])
def test_all_permutations_of_four(strategy):
    for perm in itertools.permutations(range(4)):
        src = permutation_program(perm, 4)
        result = run_source(
            src, CompilerConfig(shuffle_strategy=strategy), prelude=False, debug=True
        )
        assert write_datum(result.value) == expected_value(perm, 4)


@given(
    st.permutations(range(6)),
    st.sampled_from(STRATEGIES),
    st.sampled_from([1, 2, 3, 6]),
)
@settings(max_examples=60, deadline=None)
def test_random_permutations_and_register_counts(perm, strategy, nregs):
    src = permutation_program(tuple(perm), 6)
    cfg = CompilerConfig(
        shuffle_strategy=strategy, num_arg_regs=nregs, num_temp_regs=nregs
    )
    result = run_source(src, cfg, prelude=False, debug=True)
    assert write_datum(result.value) == expected_value(tuple(perm), 6)
