"""Cross-strategy shape assertions: the qualitative claims of the
paper's evaluation must hold on our simulator."""

import pytest

from repro.benchsuite.runner import run_benchmark
from repro.config import CompilerConfig

TAK = "tak"


@pytest.fixture(scope="module")
def runs():
    """tak under the principal configurations (computed once)."""
    return {
        "lazy": run_benchmark(TAK, CompilerConfig()),
        "early": run_benchmark(TAK, CompilerConfig(save_strategy="early")),
        "late": run_benchmark(TAK, CompilerConfig(save_strategy="late")),
        "baseline": run_benchmark(TAK, CompilerConfig.baseline()),
        "callee-early": run_benchmark(
            TAK, CompilerConfig(save_convention="callee", save_strategy="early")
        ),
        "callee-lazy": run_benchmark(
            TAK, CompilerConfig(save_convention="callee", save_strategy="lazy")
        ),
    }


class TestTable3Shape:
    def test_all_agree_on_value(self, runs):
        values = {r.value_text for r in runs.values()}
        assert values == {"7"}

    def test_registers_beat_baseline(self, runs):
        for name in ("lazy", "early", "late"):
            assert runs[name].stack_refs < runs["baseline"].stack_refs
            assert runs[name].cycles < runs["baseline"].cycles

    def test_lazy_beats_early(self, runs):
        assert runs["lazy"].stack_refs < runs["early"].stack_refs
        assert runs["lazy"].cycles < runs["early"].cycles

    def test_lazy_beats_late(self, runs):
        assert runs["lazy"].stack_refs < runs["late"].stack_refs
        assert runs["lazy"].cycles < runs["late"].cycles

    def test_early_has_no_redundant_saves_but_more_of_them(self, runs):
        # early saves strictly more than lazy on effective-leaf-heavy tak
        assert runs["early"].counters.saves > runs["lazy"].counters.saves

    def test_late_duplicates_saves_on_multi_call_paths(self, runs):
        assert runs["late"].counters.saves > runs["lazy"].counters.saves


class TestTable5Shape:
    def test_lazy_callee_beats_early_callee(self, runs):
        assert runs["callee-lazy"].cycles < runs["callee-early"].cycles
        assert runs["callee-lazy"].stack_refs < runs["callee-early"].stack_refs

    def test_caller_lazy_in_range_of_callee_lazy(self, runs):
        # Table 5: lazy callee-save "brings the performance ... within
        # range of the caller-save code"
        ratio = runs["lazy"].cycles / runs["callee-lazy"].cycles
        assert 0.8 < ratio < 1.25


class TestTable2Shape:
    def test_effective_leaves_dominate_tak(self, runs):
        assert runs["lazy"].classifier.effective_leaf_fraction > 2 / 3

    def test_classification_stable_across_configs(self, runs):
        fractions = {
            name: r.classifier.fractions() for name, r in runs.items()
        }
        for name, f in fractions.items():
            assert f == fractions["lazy"], name


class TestRestoreStrategies:
    def test_lazy_restore_executes_fewer_restores(self):
        eager = run_benchmark(TAK, CompilerConfig())
        lazy = run_benchmark(TAK, CompilerConfig(restore_strategy="lazy"))
        assert lazy.counters.restores <= eager.counters.restores

    def test_values_agree(self):
        eager = run_benchmark("deriv", CompilerConfig())
        lazy = run_benchmark("deriv", CompilerConfig(restore_strategy="lazy"))
        assert eager.value_text == lazy.value_text


class TestRegisterSweepShape:
    def test_more_registers_fewer_stack_refs(self):
        refs = []
        for n in (0, 2, 4, 6):
            cfg = CompilerConfig(num_arg_regs=n, num_temp_regs=n)
            refs.append(run_benchmark(TAK, cfg).stack_refs)
        assert refs[0] > refs[1] > refs[2] >= refs[3]


class TestShuffleMatters:
    def test_greedy_not_worse_than_naive(self):
        greedy = run_benchmark(TAK, CompilerConfig())
        naive = run_benchmark(TAK, CompilerConfig(shuffle_strategy="naive"))
        assert greedy.cycles <= naive.cycles
        assert greedy.value_text == naive.value_text
