"""Differential testing: the compiled VM must agree with the reference
interpreter on every configuration, including hypothesis-generated
programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CompilerConfig
from tests.conftest import CONFIG_MATRIX, assert_compiles_like_interpreter

PROGRAMS = [
    "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)",
    """(define (tak x y z)
         (if (not (< y x)) z
             (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
       (tak 7 5 2)""",
    "(let loop ((i 0) (acc 1)) (if (= i 12) acc (loop (+ i 1) (* acc 2))))",
    "(call/cc (lambda (k) (+ 1 (k 42))))",
    "(+ 1 (call/cc (lambda (k) (+ 1 (k 40)))))",
    "(define (make-adder n) (lambda (x) (+ x n))) ((make-adder 3) 4)",
    "(let ((x 1)) (set! x (+ x 41)) x)",
    "(map (lambda (x) (* x x)) '(1 2 3 4))",
    "(define (sw a b) (cons a b)) (define (go x y) (sw y x)) (go 10 4)",
    "(define (rot a b c) (if (zero? a) (list a b c) (rot (- a 1) c b))) (rot 5 'x 'y)",
    "(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 10) s))",
    "(filter odd? (iota 10))",
    "(define (f8 a b c d e f g h) (list a b c d e f g h)) (f8 1 2 3 4 5 6 7 8)",
    "(define (deep x) (+ (+ (+ x 1) (+ x 2)) (+ (+ x 3) (+ (+ x 4) (+ x 5))))) (deep 1)",
    "(define (g n) (if (and (> n 0) (even? n)) 'pos-even (if (or (= n 1) (= n -1)) 'unit 'other))) (list (g 2) (g 1) (g 5))",
    "(define v (make-vector 4 0)) (vector-set! v 2 'z) (vector-ref v 2)",
    "(append '(1) (append '(2) '(3)))",
    "(define (two-calls x) (+ (two x) (two x))) (define (two n) (* n 2)) (two-calls 3)",
]


@pytest.mark.parametrize("config", CONFIG_MATRIX)
@pytest.mark.parametrize("source", PROGRAMS)
def test_fixed_programs(source, config):
    assert_compiles_like_interpreter(source, config)


# ---------------------------------------------------------------------------
# Random first-order programs
# ---------------------------------------------------------------------------

_HELPERS = """
(define (h0 a) (+ a 1))
(define (h1 a b) (if (< a b) (h0 a) (h0 b)))
(define (h2 a b) (- (h1 a b) (h1 b a)))
"""

_VARS = ("va", "vb", "vc")


@st.composite
def _int_expr(draw, depth=3, scope=_VARS):
    if depth == 0:
        return draw(
            st.one_of(
                st.integers(min_value=-50, max_value=50).map(str),
                st.sampled_from(scope),
            )
        )
    kind = draw(
        st.sampled_from(
            ["leaf", "add", "sub", "mul", "if", "let", "call1", "call2", "seq"]
        )
    )
    def sub():
        return draw(_int_expr(depth=depth - 1, scope=scope))

    if kind == "leaf":
        return draw(_int_expr(depth=0, scope=scope))
    if kind == "add":
        return f"(+ {sub()} {sub()})"
    if kind == "sub":
        return f"(- {sub()} {sub()})"
    if kind == "mul":
        return f"(* {sub()} {sub()})"
    if kind == "if":
        test = draw(_bool_expr(depth=depth - 1, scope=scope))
        return f"(if {test} {sub()} {sub()})"
    if kind == "let":
        var = draw(st.sampled_from(("la", "lb")))
        inner = draw(_int_expr(depth=depth - 1, scope=(*scope, var)))
        return f"(let (({var} {sub()})) {inner})"
    if kind == "call1":
        return f"(h0 {sub()})"
    if kind == "call2":
        return f"(h2 {sub()} {sub()})"
    return f"(begin {sub()} {sub()})"


@st.composite
def _bool_expr(draw, depth=2, scope=_VARS):
    a = draw(_int_expr(depth=depth, scope=scope))
    b = draw(_int_expr(depth=depth, scope=scope))
    op = draw(st.sampled_from(["<", ">", "=", "<=", ">="]))
    base = f"({op} {a} {b})"
    combo = draw(st.sampled_from(["plain", "not", "and", "or"]))
    if combo == "plain":
        return base
    if combo == "not":
        return f"(not {base})"
    c = draw(_int_expr(depth=1, scope=scope))
    other = f"(odd? {c})"
    return f"({combo} {base} {other})"


@st.composite
def random_program(draw):
    body = draw(_int_expr(depth=4))
    return f"{_HELPERS}\n(define (main va vb vc) {body})\n(main 3 -7 11)"


_SAMPLED_CONFIGS = [
    CompilerConfig(),
    CompilerConfig.baseline(),
    CompilerConfig(save_strategy="late", restore_strategy="lazy"),
    CompilerConfig(num_arg_regs=2, num_temp_regs=1, shuffle_strategy="naive"),
    CompilerConfig(save_convention="callee", save_strategy="lazy"),
]


@given(random_program(), st.sampled_from(range(len(_SAMPLED_CONFIGS))))
@settings(max_examples=60, deadline=None)
def test_random_programs(source, config_index):
    assert_compiles_like_interpreter(
        source, _SAMPLED_CONFIGS[config_index], prelude=False
    )
