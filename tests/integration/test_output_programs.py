"""End-to-end programs exercising output, strings, and data structures
— compiler output must match the interpreter byte for byte."""

import pytest

from repro.config import CompilerConfig
from repro.interp.interpreter import Interpreter
from repro.pipeline import run_source
from tests.conftest import CONFIG_MATRIX


def both_outputs(src, config):
    interp = Interpreter()
    interp.run_source(src)
    compiled = run_source(src, config, debug=True)
    return compiled.output, interp.port.contents()


PROGRAMS = [
    # printer recursion (the fprint substitute's shape)
    """
    (define (print-tree t)
      (if (pair? t)
          (begin (display "(") (print-tree (car t)) (display " . ")
                 (print-tree (cdr t)) (display ")"))
          (display t)))
    (print-tree '((1 . 2) . (3 . 4)))
    (newline)
    0
    """,
    # table formatting with string building
    """
    (define (row label n)
      (display label) (display ": ") (display n) (newline))
    (for-each (lambda (i) (row 'item (* i i))) (iota 4))
    'done
    """,
    # write vs display quoting
    """
    (begin (write "quoted") (display " ") (display "bare") (newline)
           (write #\\a) (display #\\b) (newline)
           (write '(1 "s" #\\c)) (newline)
           0)
    """,
]


@pytest.mark.parametrize("src", PROGRAMS)
def test_output_matches_interpreter(src):
    got, want = both_outputs(src, CompilerConfig())
    assert got == want


@pytest.mark.parametrize("config", CONFIG_MATRIX)
def test_output_stable_across_configs(config):
    src = PROGRAMS[0]
    got, want = both_outputs(src, config)
    assert got == want


class TestStringPrograms:
    def test_string_builder(self):
        src = """
        (define (join ls sep)
          (cond ((null? ls) "")
                ((null? (cdr ls)) (car ls))
                (else (string-append (car ls)
                        (string-append sep (join (cdr ls) sep))))))
        (join '("a" "b" "c") ", ")
        """
        result = run_source(src, debug=True)
        assert result.value.text == "a, b, c"

    def test_number_formatting(self):
        src = """
        (define (commas n)
          (if (< n 1000)
              (number->string n)
              (string-append (commas (quotient n 1000))
                (string-append "," (pad (remainder n 1000))))))
        (define (pad n)
          (cond ((< n 10) (string-append "00" (number->string n)))
                ((< n 100) (string-append "0" (number->string n)))
                (else (number->string n))))
        (commas 1234567)
        """
        result = run_source(src, debug=True)
        assert result.value.text == "1,234,567"

    def test_symbol_interning_across_boundary(self):
        src = "(eq? (string->symbol \"abc\") 'abc)"
        assert run_source(src, debug=True).value is True
