"""Every benchmark compiles, runs, and matches the reference
interpreter under the paper's configuration."""

import pytest

from repro.benchsuite import BENCHMARKS
from repro.benchsuite.runner import run_benchmark
from repro.config import CompilerConfig

ALL_NAMES = sorted(BENCHMARKS.keys())
LIGHT_NAMES = [n for n in ALL_NAMES if not BENCHMARKS[n].heavy]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_benchmark_validates(name):
    run = run_benchmark(name, CompilerConfig(), debug=(BENCHMARKS[name].heavy is False))
    assert run.counters.instructions > 0


@pytest.mark.parametrize("name", LIGHT_NAMES)
def test_benchmark_validates_baseline(name):
    run = run_benchmark(name, CompilerConfig.baseline())
    assert run.counters.total_stack_refs > 0


@pytest.mark.parametrize(
    "name", ["tak", "cpstak", "deriv", "browse", "boyer", "fread"]
)
@pytest.mark.parametrize(
    "strategy", ["lazy", "lazy-simple", "early", "late"]
)
def test_benchmark_all_save_strategies(name, strategy):
    run_benchmark(name, CompilerConfig(save_strategy=strategy), debug=True)


@pytest.mark.parametrize("name", ["tak", "deriv", "matcher"])
def test_benchmark_callee_modes(name):
    for strategy in ("early", "lazy"):
        run_benchmark(
            name,
            CompilerConfig(save_convention="callee", save_strategy=strategy),
            debug=True,
        )


@pytest.mark.parametrize("name", ["tak", "cpstak", "fft"])
def test_benchmark_lazy_restores(name):
    run_benchmark(name, CompilerConfig(restore_strategy="lazy"), debug=True)


class TestRegistry:
    def test_names_unique_and_described(self):
        for name, bench in BENCHMARKS.items():
            assert bench.name == name
            assert bench.description
            assert bench.scaling

    def test_covers_paper_suite(self):
        expected = {
            "tak", "takl", "takr", "cpstak", "ctak", "deriv", "dderiv",
            "destruct", "div-iter", "div-rec", "browse", "boyer",
            "puzzle", "triang", "fxtriang", "fxtak", "fft", "fprint",
            "fread", "tprint", "traverse-init", "traverse",
            "meta", "matcher",
        }
        assert expected <= set(BENCHMARKS.keys())
