"""CompilerConfig validation and presets."""

import pytest

from repro.config import CompilerConfig, CostModel


class TestPresets:
    def test_paper_default(self):
        cfg = CompilerConfig.paper_default()
        assert cfg.num_arg_regs == 6
        assert cfg.num_temp_regs == 6
        assert cfg.save_strategy == "lazy"
        assert cfg.restore_strategy == "eager"
        assert cfg.shuffle_strategy == "greedy"
        assert cfg.save_convention == "caller"

    def test_baseline(self):
        cfg = CompilerConfig.baseline()
        assert cfg.num_arg_regs == 0
        assert cfg.num_temp_regs == 0

    def test_with_override(self):
        cfg = CompilerConfig().with_(save_strategy="late")
        assert cfg.save_strategy == "late"
        assert cfg.num_arg_regs == 6

    def test_frozen(self):
        with pytest.raises(Exception):
            CompilerConfig().save_strategy = "early"


class TestValidation:
    def test_bad_save_strategy(self):
        with pytest.raises(ValueError, match="save strategy"):
            CompilerConfig(save_strategy="sometimes")

    def test_bad_restore_strategy(self):
        with pytest.raises(ValueError, match="restore strategy"):
            CompilerConfig(restore_strategy="never")

    def test_bad_shuffle_strategy(self):
        with pytest.raises(ValueError, match="shuffle strategy"):
            CompilerConfig(shuffle_strategy="random")

    def test_bad_convention(self):
        with pytest.raises(ValueError, match="convention"):
            CompilerConfig(save_convention="both")

    def test_bad_prediction_mode(self):
        with pytest.raises(ValueError, match="prediction"):
            CompilerConfig(branch_prediction="oracle")

    def test_negative_registers(self):
        with pytest.raises(ValueError):
            CompilerConfig(num_arg_regs=-1)

    def test_bad_cost_model(self):
        with pytest.raises(ValueError):
            CompilerConfig(cost_model=CostModel(load_latency=0))

    def test_valid_prediction_modes(self):
        CompilerConfig(branch_prediction=None)
        CompilerConfig(branch_prediction="static-calls")
        CompilerConfig(branch_prediction="fallthrough")
