"""CompilerConfig validation and presets."""

import pytest

from repro.config import ALLOCATOR_STRATEGIES, CompilerConfig, CostModel


class TestPresets:
    def test_paper_default(self):
        cfg = CompilerConfig.paper_default()
        assert cfg.num_arg_regs == 6
        assert cfg.num_temp_regs == 6
        assert cfg.save_strategy == "lazy"
        assert cfg.restore_strategy == "eager"
        assert cfg.shuffle_strategy == "greedy"
        assert cfg.save_convention == "caller"

    def test_baseline(self):
        cfg = CompilerConfig.baseline()
        assert cfg.num_arg_regs == 0
        assert cfg.num_temp_regs == 0

    def test_with_override(self):
        cfg = CompilerConfig().with_(save_strategy="late")
        assert cfg.save_strategy == "late"
        assert cfg.num_arg_regs == 6

    def test_frozen(self):
        with pytest.raises(Exception):
            CompilerConfig().save_strategy = "early"


class TestValidation:
    def test_bad_save_strategy(self):
        with pytest.raises(ValueError, match="save strategy"):
            CompilerConfig(save_strategy="sometimes")

    def test_bad_restore_strategy(self):
        with pytest.raises(ValueError, match="restore strategy"):
            CompilerConfig(restore_strategy="never")

    def test_bad_shuffle_strategy(self):
        with pytest.raises(ValueError, match="shuffle strategy"):
            CompilerConfig(shuffle_strategy="random")

    def test_bad_convention(self):
        with pytest.raises(ValueError, match="convention"):
            CompilerConfig(save_convention="both")

    def test_bad_prediction_mode(self):
        with pytest.raises(ValueError, match="prediction"):
            CompilerConfig(branch_prediction="oracle")

    def test_negative_registers(self):
        with pytest.raises(ValueError):
            CompilerConfig(num_arg_regs=-1)

    def test_bad_cost_model(self):
        with pytest.raises(ValueError):
            CompilerConfig(cost_model=CostModel(load_latency=0))

    def test_valid_prediction_modes(self):
        CompilerConfig(branch_prediction=None)
        CompilerConfig(branch_prediction="static-calls")
        CompilerConfig(branch_prediction="fallthrough")


class TestAllocatorField:
    def test_default_is_lazy(self):
        assert CompilerConfig().allocator == "lazy"

    def test_every_registered_strategy_is_accepted(self):
        for name in ALLOCATOR_STRATEGIES:
            assert CompilerConfig(allocator=name).allocator == name

    def test_unknown_allocator_one_line_diagnostic(self):
        with pytest.raises(ValueError) as exc:
            CompilerConfig(allocator="firstfit")
        message = str(exc.value)
        assert "unknown allocator: 'firstfit'" in message
        assert "\n" not in message
        for name in ALLOCATOR_STRATEGIES:
            assert name in message

    def test_fingerprint_differs_per_strategy(self):
        prints = {
            CompilerConfig(allocator=name).fingerprint()
            for name in ALLOCATOR_STRATEGIES
        }
        assert len(prints) == len(ALLOCATOR_STRATEGIES)

    def test_round_trip_preserves_allocator(self):
        cfg = CompilerConfig(allocator="graphcolor", num_arg_regs=2)
        again = CompilerConfig.from_dict(cfg.as_dict())
        assert again == cfg
        assert again.allocator == "graphcolor"

    def test_summary_omits_default_allocator(self):
        # Golden corpus headers predate the allocator field; the default
        # must not change their byte content.
        assert "allocator" not in CompilerConfig().summary()
        assert (
            CompilerConfig(allocator="linearscan").summary()["allocator"]
            == "linearscan"
        )


class TestShuffleStrategies:
    def test_permopt_registered(self):
        from repro.config import SHUFFLE_STRATEGIES

        assert "permopt" in SHUFFLE_STRATEGIES
        assert CompilerConfig(shuffle_strategy="permopt").shuffle_strategy == (
            "permopt"
        )

    def test_fingerprint_differs_per_shuffle_strategy(self):
        from repro.config import SHUFFLE_STRATEGIES

        prints = {
            CompilerConfig(shuffle_strategy=name).fingerprint()
            for name in SHUFFLE_STRATEGIES
        }
        assert len(prints) == len(SHUFFLE_STRATEGIES)

    def test_shuffle_matrix_pins_the_strategy(self):
        from repro.config import shuffle_matrix

        configs = shuffle_matrix("permopt")
        assert configs
        assert all(c.shuffle_strategy == "permopt" for c in configs)
        # The matrix varies the orthogonal knobs, not just registers.
        assert len({c.summary().get("allocator", "lazy") for c in configs}) > 1

    def test_shuffle_matrix_rejects_unknown_strategy(self):
        from repro.config import shuffle_matrix

        with pytest.raises(ValueError):
            shuffle_matrix("bogus")

    def test_full_matrix_includes_permopt(self):
        from repro.config import full_matrix

        assert any(
            c.shuffle_strategy == "permopt" for c in full_matrix()
        )


class TestServeConfig:
    def test_defaults_and_round_trip(self):
        from repro.config import ServeConfig

        config = ServeConfig()
        doc = config.as_dict()
        assert doc["max_clients"] == 128
        assert doc["dedup"] is True
        assert ServeConfig(**doc) == config

    def test_validation(self):
        import pytest

        from repro.config import ServeConfig

        with pytest.raises(ValueError):
            ServeConfig(port=70000)
        with pytest.raises(ValueError):
            ServeConfig(max_clients=0)
        with pytest.raises(ValueError):
            ServeConfig(max_pending_per_tenant=0)
        with pytest.raises(ValueError):
            ServeConfig(drain_grace_s=-1)
        with pytest.raises(ValueError):
            ServeConfig(cache_shards=0)

    def test_parse_address(self):
        import pytest

        from repro.config import ServeConfig

        assert ServeConfig.parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert ServeConfig.parse_address("localhost:0") == ("localhost", 0)
        for bad in ("8080", ":8080", "host:", "host:nan", "host:99999"):
            with pytest.raises(ValueError):
                ServeConfig.parse_address(bad)

    def test_with_address(self):
        from repro.config import ServeConfig

        moved = ServeConfig().with_address("0.0.0.0", 9000)
        assert (moved.host, moved.port) == ("0.0.0.0", 9000)
        assert moved.max_clients == ServeConfig().max_clients
