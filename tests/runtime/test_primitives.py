"""Primitive operation tests (shared by interpreter and VM)."""

import pytest

from repro.runtime.primitives import PRIMITIVES, is_primitive, prim_spec
from repro.runtime.values import Box, OutputPort, SchemeError
from repro.sexp.datum import (
    Char,
    MutableString,
    NIL,
    Pair,
    Symbol,
    UNSPECIFIED,
    list_to_pairs,
    pairs_to_list,
)


def call(name, *args, port=None):
    return PRIMITIVES[name].fn(list(args), port or OutputPort())


def slist(*items):
    return list_to_pairs(list(items))


class TestPairs:
    def test_cons_car_cdr(self):
        p = call("cons", 1, 2)
        assert call("car", p) == 1
        assert call("cdr", p) == 2

    def test_car_type_error(self):
        with pytest.raises(SchemeError):
            call("car", 5)

    def test_set_car(self):
        p = call("cons", 1, 2)
        call("set-car!", p, 9)
        assert p.car == 9

    def test_set_cdr(self):
        p = call("cons", 1, 2)
        call("set-cdr!", p, 9)
        assert p.cdr == 9

    def test_predicates(self):
        assert call("pair?", Pair(1, 2)) is True
        assert call("pair?", NIL) is False
        assert call("null?", NIL) is True
        assert call("null?", Pair(1, 2)) is False
        assert call("atom?", 5) is True
        assert call("atom?", Pair(1, 2)) is False

    def test_list_p(self):
        assert call("list?", slist(1, 2)) is True
        assert call("list?", Pair(1, 2)) is False


class TestListOps:
    def test_length(self):
        assert call("length", slist(1, 2, 3)) == 3
        assert call("length", NIL) == 0

    def test_length_improper(self):
        with pytest.raises(SchemeError):
            call("length", Pair(1, 2))

    def test_append(self):
        result = call("append", slist(1, 2), slist(3))
        assert pairs_to_list(result) == [1, 2, 3]

    def test_append_shares_tail(self):
        tail = slist(3)
        result = call("append", slist(1), tail)
        assert result.cdr is tail

    def test_reverse(self):
        assert pairs_to_list(call("reverse", slist(1, 2, 3))) == [3, 2, 1]

    def test_memq_found(self):
        ls = slist(Symbol("a"), Symbol("b"))
        hit = call("memq", Symbol("b"), ls)
        assert hit.car is Symbol("b")

    def test_memq_fixnums(self):
        assert call("memq", 2, slist(1, 2, 3)) is not False

    def test_memq_missing(self):
        assert call("memq", Symbol("z"), slist(Symbol("a"))) is False

    def test_member_structural(self):
        inner = slist(1, 2)
        assert call("member", slist(1, 2), slist(inner)) is not False

    def test_assq(self):
        alist = slist(Pair(Symbol("a"), 1), Pair(Symbol("b"), 2))
        assert call("assq", Symbol("b"), alist).cdr == 2
        assert call("assq", Symbol("c"), alist) is False

    def test_assoc(self):
        alist = slist(Pair(slist(1), Symbol("hit")))
        assert call("assoc", slist(1), alist).cdr is Symbol("hit")

    def test_list_tail(self):
        assert pairs_to_list(call("list-tail", slist(1, 2, 3), 1)) == [2, 3]

    def test_list_ref(self):
        assert call("list-ref", slist(10, 20, 30), 2) == 30

    def test_last_pair(self):
        assert call("last-pair", slist(1, 2, 3)).car == 3


class TestArithmetic:
    def test_basic(self):
        assert call("+", 2, 3) == 5
        assert call("-", 2, 3) == -1
        assert call("*", 4, 3) == 12

    def test_division(self):
        assert call("/", 6, 3) == 2
        assert call("/", 7, 2) == 3.5
        with pytest.raises(SchemeError):
            call("/", 1, 0)

    def test_quotient_truncates_toward_zero(self):
        assert call("quotient", 7, 2) == 3
        assert call("quotient", -7, 2) == -3
        assert call("quotient", 7, -2) == -3

    def test_remainder_sign_of_dividend(self):
        assert call("remainder", 7, 2) == 1
        assert call("remainder", -7, 2) == -1
        assert call("remainder", 7, -2) == 1

    def test_modulo_sign_of_divisor(self):
        assert call("modulo", -7, 2) == 1
        assert call("modulo", 7, -2) == -1

    def test_quotient_by_zero(self):
        with pytest.raises(SchemeError):
            call("quotient", 1, 0)

    def test_abs_min_max(self):
        assert call("abs", -4) == 4
        assert call("min", 2, 5) == 2
        assert call("max", 2, 5) == 5

    def test_expt_gcd(self):
        assert call("expt", 2, 10) == 1024
        assert call("gcd", 12, 18) == 6

    def test_sqrt_exact(self):
        assert call("sqrt", 16) == 4
        assert isinstance(call("sqrt", 16), int)

    def test_sqrt_inexact(self):
        assert call("sqrt", 2.0) == pytest.approx(1.41421356)

    def test_comparisons(self):
        assert call("<", 1, 2) is True
        assert call(">", 1, 2) is False
        assert call("<=", 2, 2) is True
        assert call(">=", 2, 3) is False
        assert call("=", 3, 3) is True

    def test_sign_predicates(self):
        assert call("zero?", 0) is True
        assert call("positive?", 3) is True
        assert call("negative?", -3) is True
        assert call("even?", 4) is True
        assert call("odd?", 3) is True

    def test_add1_sub1(self):
        assert call("add1", 4) == 5
        assert call("sub1", 4) == 3

    def test_type_errors(self):
        with pytest.raises(SchemeError):
            call("+", 1, Symbol("x"))
        with pytest.raises(SchemeError):
            call("<", True, 1)

    def test_floor(self):
        assert call("floor", 2.7) == 2.0
        assert call("floor", 5) == 5

    def test_exactness_conversions(self):
        assert call("exact->inexact", 3) == 3.0
        assert call("inexact->exact", 3.9) == 3


class TestEquality:
    def test_eq_symbols(self):
        assert call("eq?", Symbol("a"), Symbol("a")) is True

    def test_eq_fixnums_immediate(self):
        assert call("eq?", 10**6, 10**6) is True

    def test_eq_distinct_pairs(self):
        assert call("eq?", Pair(1, NIL), Pair(1, NIL)) is False

    def test_eqv_floats(self):
        assert call("eqv?", 1.5, 1.5) is True

    def test_equal_nested(self):
        assert call("equal?", slist(1, slist(2)), slist(1, slist(2))) is True

    def test_not(self):
        assert call("not", False) is True
        assert call("not", 0) is False
        assert call("not", NIL) is False


class TestTypePredicates:
    def test_all(self):
        assert call("boolean?", True) is True
        assert call("boolean?", 0) is False
        assert call("symbol?", Symbol("s")) is True
        assert call("number?", 3) is True
        assert call("number?", True) is False
        assert call("integer?", 3) is True
        assert call("integer?", 3.0) is True
        assert call("integer?", 3.5) is False
        assert call("string?", MutableString("")) is True
        assert call("char?", Char("c")) is True
        assert call("vector?", [1]) is True
        assert call("box?", Box(1)) is True


class TestVectors:
    def test_make_and_access(self):
        v = call("make-vector", 3, 0)
        assert call("vector-length", v) == 3
        call("vector-set!", v, 1, 9)
        assert call("vector-ref", v, 1) == 9

    def test_bounds(self):
        v = call("make-vector", 2, 0)
        with pytest.raises(SchemeError):
            call("vector-ref", v, 2)
        with pytest.raises(SchemeError):
            call("vector-set!", v, -1, 0)

    def test_negative_length(self):
        with pytest.raises(SchemeError):
            call("make-vector", -1, 0)

    def test_fill(self):
        v = call("make-vector", 3, 0)
        call("vector-fill!", v, 7)
        assert v == [7, 7, 7]


class TestStringsChars:
    def test_length_ref(self):
        s = MutableString("abc")
        assert call("string-length", s) == 3
        assert call("string-ref", s, 1) is Char("b")

    def test_set(self):
        s = MutableString("abc")
        call("string-set!", s, 0, Char("X"))
        assert s.text == "Xbc"

    def test_make_string(self):
        assert call("make-string", 3, Char("z")).text == "zzz"

    def test_append_and_compare(self):
        a = call("string-append", MutableString("ab"), MutableString("cd"))
        assert a.text == "abcd"
        assert call("string=?", a, MutableString("abcd")) is True
        assert call("string<?", MutableString("ab"), MutableString("b")) is True

    def test_substring(self):
        assert call("substring", MutableString("hello"), 1, 3).text == "el"
        with pytest.raises(SchemeError):
            call("substring", MutableString("hi"), 0, 5)

    def test_symbol_conversions(self):
        assert call("string->symbol", MutableString("foo")) is Symbol("foo")
        assert call("symbol->string", Symbol("bar")).text == "bar"

    def test_number_to_string(self):
        assert call("number->string", 42).text == "42"

    def test_string_to_list(self):
        chars = pairs_to_list(call("string->list", MutableString("ab")))
        assert chars == [Char("a"), Char("b")]

    def test_char_conversions(self):
        assert call("char->integer", Char("A")) == 65
        assert call("integer->char", 97) is Char("a")

    def test_char_comparisons_and_case(self):
        assert call("char=?", Char("a"), Char("a")) is True
        assert call("char<?", Char("a"), Char("b")) is True
        assert call("char-upcase", Char("a")) is Char("A")
        assert call("char-downcase", Char("Z")) is Char("z")
        assert call("char-alphabetic?", Char("q")) is True
        assert call("char-numeric?", Char("4")) is True


class TestBoxes:
    def test_box_life_cycle(self):
        b = call("box", 1)
        assert call("unbox", b) == 1
        call("set-box!", b, 2)
        assert call("unbox", b) == 2

    def test_unbox_type_error(self):
        with pytest.raises(SchemeError):
            call("unbox", 5)


class TestOutputAndMisc:
    def test_display(self):
        port = OutputPort()
        call("display", MutableString("hi"), port=port)
        assert port.contents() == "hi"

    def test_write_quotes_strings(self):
        port = OutputPort()
        call("write", MutableString("hi"), port=port)
        assert port.contents() == '"hi"'

    def test_newline(self):
        port = OutputPort()
        call("newline", port=port)
        assert port.contents() == "\n"

    def test_void(self):
        assert call("void") is UNSPECIFIED

    def test_error_raises(self):
        with pytest.raises(SchemeError) as exc:
            call("error", MutableString("boom"), slist(1))
        assert "boom" in str(exc.value)


class TestSpecTable:
    def test_is_primitive(self):
        assert is_primitive("cons")
        assert not is_primitive("frobnicate")

    def test_arities_positive(self):
        for name, spec in PRIMITIVES.items():
            assert spec.arity >= 0, name
            assert spec.name == name

    def test_table_covers_core_set(self):
        for name in ("cons", "car", "cdr", "+", "-", "vector-ref", "eq?", "display"):
            assert is_primitive(name)

    def test_prim_spec_lookup(self):
        assert prim_spec("cons").arity == 2
