"""Assignment conversion: after it, no variable is ever mutated."""


from repro.astnodes import Lambda, Let, PrimCall, SetBang, walk
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.expand import expand_program
from repro.sexp.reader import read_all


def convert(text):
    return assignment_convert(expand_program(read_all(text)))


def all_nodes(expr):
    return walk(expr)


class TestConversion:
    def test_no_setbang_remains(self):
        e = convert("(let ((x 1)) (set! x 2) x)")
        assert not any(isinstance(n, SetBang) for n in all_nodes(e))

    def test_unassigned_untouched(self):
        e = convert("(let ((x 1)) x)")
        ops = [n.op for n in all_nodes(e) if isinstance(n, PrimCall)]
        assert "box" not in ops and "unbox" not in ops

    def test_assigned_let_boxed(self):
        e = convert("(let ((x 1)) (set! x 2) x)")
        ops = [n.op for n in all_nodes(e) if isinstance(n, PrimCall)]
        assert "box" in ops and "set-box!" in ops and "unbox" in ops

    def test_assigned_param_rebound(self):
        e = convert("((lambda (x) (set! x 2) x) 1)")
        lam = next(n for n in all_nodes(e) if isinstance(n, Lambda))
        # fresh parameter; original var boxed inside
        assert isinstance(lam.body, Let)
        assert lam.body.rhs.op == "box"

    def test_set_returns_unspecified_shape(self):
        e = convert("(let ((x 1)) (set! x 2))")
        ops = [n.op for n in all_nodes(e) if isinstance(n, PrimCall)]
        assert "set-box!" in ops

    def test_letrec_with_assignment_degrades_to_boxes(self):
        e = convert(
            "(define (f x) (f x)) (set! f (lambda (x) x)) (f 1)"
        )
        ops = [n.op for n in all_nodes(e) if isinstance(n, PrimCall)]
        assert "box" in ops

    def test_letrec_without_assignment_keeps_fix(self):
        from repro.astnodes import Fix

        e = convert("(define (f x) (f x)) 1")
        assert isinstance(e, Fix)

    def test_boxed_read_through_unbox(self):
        e = convert("(let ((x 1)) (set! x 2) (+ x x))")
        unboxes = [n for n in all_nodes(e) if isinstance(n, PrimCall) and n.op == "unbox"]
        assert len(unboxes) == 2

    def test_mixed_assigned_and_clean_params(self):
        e = convert("((lambda (a b) (set! a b) a) 1 2)")
        lam = next(n for n in all_nodes(e) if isinstance(n, Lambda))
        assert len(lam.params) == 2
