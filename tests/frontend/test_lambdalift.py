"""Lambda lifting (§6 future work) tests."""

import pytest

from repro.astnodes import Call, Fix, Lambda, Ref, walk
from repro.config import CompilerConfig
from repro.frontend.analyze import check_scopes, mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.lambdalift import lambda_lift
from repro.pipeline import expand_source
from tests.conftest import assert_compiles_like_interpreter


def lift(src, max_params=6):
    expr = assignment_convert(expand_source(src, prelude=False))
    mark_tail_calls(expr)
    expr, report = lambda_lift(expr, max_params=max_params)
    check_scopes(expr)
    return expr, report


def find_lambda(expr, name):
    for node in walk(expr):
        if isinstance(node, Fix):
            for var, lam in zip(node.vars, node.lambdas):
                if var.name == name:
                    return lam
    raise AssertionError(f"no fix-bound {name}")


class TestLiftDecisions:
    def test_known_procedure_lifted(self):
        src = "(define (outer k) (define (inner x) (+ x k)) (inner 1)) (outer 10)"
        expr, report = lift(src)
        assert "inner" in report.lifted
        inner = find_lambda(expr, "inner")
        assert len(inner.params) == 2  # x + lifted k

    def test_call_sites_extended(self):
        src = "(define (outer k) (define (inner x) (+ x k)) (+ (inner 1) (inner 2))) (outer 10)"
        expr, report = lift(src)
        calls = [
            n
            for n in walk(expr)
            if isinstance(n, Call)
            and isinstance(n.fn, Ref)
            and n.fn.var.name == "inner"
        ]
        assert calls and all(len(c.args) == 2 for c in calls)

    def test_escaping_not_lifted(self):
        src = "(define (adder n) (lambda (x) (+ x n))) (define (use f) (f 1)) (use (adder 3))"
        expr, report = lift(src)
        # the anonymous lambda escapes; adder itself is closed
        assert report.lifted == [] or "anonymous" not in report.lifted

    def test_value_use_rejected(self):
        src = (
            "(define (outer k)"
            "  (define (inner x) (+ x k))"
            "  (map inner '(1 2)))"
            "(outer 1)"
        )
        expr = assignment_convert(expand_source(src, prelude=True))
        mark_tail_calls(expr)
        expr, report = lambda_lift(expr)
        check_scopes(expr)
        assert "inner" in report.rejected_escaping

    def test_arity_cap(self):
        src = (
            "(define (outer a b c d e f)"
            "  (define (inner x) (+ x (+ a (+ b (+ c (+ d (+ e f)))))))"
            "  (inner 1))"
            "(outer 1 2 3 4 5 6)"
        )
        _, report = lift(src, max_params=6)
        assert "inner" in report.rejected_arity

    def test_closed_procedure_untouched(self):
        src = "(define (f x) (+ x 1)) (f 1)"
        expr, report = lift(src)
        assert report.lifted == []
        assert len(find_lambda(expr, "f").params) == 1

    def test_mutual_recursion_fixpoint(self):
        src = (
            "(define (outer k)"
            "  (define (e? n) (if (zero? n) (> k 0) (o? (- n 1))))"
            "  (define (o? n) (if (zero? n) (< k 1) (e? (- n 1))))"
            "  (e? 4))"
            "(outer 2)"
        )
        expr, report = lift(src)
        assert set(report.lifted) >= {"e?", "o?"}
        # both inherit k
        assert len(find_lambda(expr, "e?").params) == 2
        assert len(find_lambda(expr, "o?").params) == 2

    def test_known_procedure_free_var_not_parameterized(self):
        # helper is known; callers must keep reaching it through the
        # closure, not as a passed value (the browse regression).
        src = (
            "(define (helper) 42)"
            "(define (outer k)"
            "  (define (inner x) (+ x (+ k (helper))))"
            "  (inner 1))"
            "(outer 10)"
        )
        expr, report = lift(src)
        assert "inner" in report.lifted
        inner = find_lambda(expr, "inner")
        # only k was lifted; helper stays a closure access
        assert len(inner.params) == 2


class TestSemanticsPreserved:
    PROGRAMS = [
        "(define (outer k) (define (inner x) (+ x k)) (+ (inner 1) (inner 2))) (outer 10)",
        "(define (sum-to n) (define (go i acc) (if (> i n) acc (go (+ i 1) (+ acc i)))) (go 0 0)) (sum-to 50)",
        "(define (f a) (define (e? n) (if (zero? n) #t (o? (- n 1)))) (define (o? n) (if (zero? n) #f (e? (- n 1)))) (e? a)) (f 9)",
        "(define (tree d k) (define (build n) (if (zero? n) k (cons (build (- n 1)) (build (- n 1))))) (define (count t) (if (pair? t) (+ (count (car t)) (count (cdr t))) t)) (count (build d))) (tree 6 1)",
        "(define (twice f x) (f (f x))) (define (outer k) (define (bump n) (+ n k)) (twice (lambda (v) (bump v)) 1)) (outer 5)",
    ]

    @pytest.mark.parametrize("src", PROGRAMS)
    def test_matches_interpreter(self, src):
        assert_compiles_like_interpreter(
            src, CompilerConfig(lambda_lift=True), prelude=False
        )

    @pytest.mark.parametrize("src", PROGRAMS)
    def test_matches_interpreter_small_regs(self, src):
        cfg = CompilerConfig(lambda_lift=True, num_arg_regs=2, num_temp_regs=1)
        assert_compiles_like_interpreter(src, cfg, prelude=False)


class TestBenchmarksUnderLifting:
    @pytest.mark.parametrize("name", ["tak", "browse", "boyer", "meta", "fread"])
    def test_benchmark_validates(self, name):
        from repro.benchsuite.runner import run_benchmark

        run_benchmark(name, CompilerConfig(lambda_lift=True), debug=True)
