"""Tail marking and scope checking."""

import pytest

from repro.astnodes import Call, CallCC, walk
from repro.errors import CompilerError
from repro.frontend.analyze import check_scopes, mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.expand import expand_program
from repro.sexp.reader import read_all


def prepare(text):
    e = assignment_convert(expand_program(read_all(text)))
    mark_tail_calls(e)
    return e


def calls(expr):
    return [n for n in walk(expr) if isinstance(n, Call)]


class TestTailMarking:
    def test_direct_tail_call(self):
        e = prepare("(define (f x) (f x)) (f 1)")
        assert all(c.tail for c in calls(e))

    def test_argument_call_not_tail(self):
        e = prepare("(define (f x) x) (define (g x) (f (f x))) (g 1)")
        inner = [c for c in calls(e) if not c.tail]
        assert inner  # the nested (f x) is non-tail

    def test_if_branches_inherit_tail(self):
        e = prepare("(define (f x) (if x (f 1) (f 2))) (f 1)")
        body_calls = calls(e)
        assert all(c.tail for c in body_calls)

    def test_if_test_not_tail(self):
        e = prepare("(define (f x) (if (f x) 1 2)) (f 1)")
        non_tail = [c for c in calls(e) if not c.tail]
        assert len(non_tail) == 1

    def test_seq_last_is_tail(self):
        e = prepare("(define (f x) (begin (f 1) (f 2))) (f 0)")
        cs = calls(e)
        assert sum(1 for c in cs if c.tail) >= 1
        assert sum(1 for c in cs if not c.tail) >= 1

    def test_let_body_tail(self):
        e = prepare("(define (f x) (let ((y (f 1))) (f y))) (f 0)")
        cs = calls(e)
        tails = [c for c in cs if c.tail]
        non_tails = [c for c in cs if not c.tail]
        assert tails and non_tails

    def test_callcc_never_tail(self):
        e = prepare("(define (f k) 1) (call/cc f)")
        cc = [c for c in calls(e) if isinstance(c, CallCC)]
        assert cc and not cc[0].tail


class TestScopeCheck:
    def test_valid_program(self):
        check_scopes(prepare("(define (f x) x) (f 1)"))

    def test_valid_closure(self):
        check_scopes(prepare("(define (adder n) (lambda (x) (+ x n))) ((adder 1) 2)"))

    def test_forward_reference_across_groups_rejected(self):
        # f (group 1) calls h (group 3, after a data define) at run
        # time; the expander's grouping leaves h out of scope for f.
        with pytest.raises(CompilerError, match="out of scope"):
            check_scopes(
                prepare(
                    "(define (f x) (h x)) (define n 1) (define (h x) x) (f n)"
                )
            )
