"""Expander tests: surface syntax to the core language."""

import pytest

from repro.astnodes import (
    Call,
    CallCC,
    Fix,
    If,
    Lambda,
    Let,
    PrimCall,
    Quote,
    Ref,
    Seq,
    SetBang,
    pretty,
)
from repro.errors import CompilerError
from repro.frontend.expand import expand_expr, expand_program
from repro.sexp.datum import NIL, UNSPECIFIED
from repro.sexp.reader import read, read_all


def expand(text):
    return expand_expr(read(text))


def expand_top(text):
    return expand_program(read_all(text))


class TestBasics:
    def test_fixnum(self):
        e = expand("42")
        assert isinstance(e, Quote) and e.value == 42

    def test_boolean(self):
        assert expand("#t").value is True

    def test_quote(self):
        e = expand("'(1 2)")
        assert isinstance(e, Quote)

    def test_string_self_evaluating(self):
        assert expand('"hi"').value.text == "hi"

    def test_unbound_variable(self):
        with pytest.raises(CompilerError, match="unbound"):
            expand("nope")

    def test_empty_combination(self):
        with pytest.raises(CompilerError):
            expand("()")


class TestIf:
    def test_two_armed(self):
        e = expand("(if #t 1 2)")
        assert isinstance(e, If)
        assert e.then.value == 1 and e.otherwise.value == 2

    def test_one_armed(self):
        e = expand("(if #t 1)")
        assert isinstance(e.otherwise, Quote)
        assert e.otherwise.value is UNSPECIFIED

    def test_malformed(self):
        with pytest.raises(CompilerError):
            expand("(if 1 2 3 4)")


class TestLambdaAndLet:
    def test_lambda(self):
        e = expand("(lambda (x y) x)")
        assert isinstance(e, Lambda)
        assert len(e.params) == 2
        assert isinstance(e.body, Ref)
        assert e.body.var is e.params[0]

    def test_lambda_rejects_varargs(self):
        with pytest.raises(CompilerError):
            expand("(lambda args args)")
        with pytest.raises(CompilerError):
            expand("(lambda (x . rest) x)")

    def test_lambda_duplicate_params(self):
        with pytest.raises(CompilerError):
            expand("(lambda (x x) x)")

    def test_let_is_parallel(self):
        # inner x refers to the OUTER binding
        e = expand("((lambda (x) (let ((x 1) (y x)) y)) 9)")
        # semantic check happens in interpreter tests; here check shape
        assert isinstance(e, Call)

    def test_let_becomes_nested_lets(self):
        e = expand("(let ((a 1) (b 2)) b)")
        assert isinstance(e, Let)
        assert isinstance(e.body, Let)

    def test_let_star_sequential_scope(self):
        e = expand("(let* ((a 1) (b a)) b)")
        assert isinstance(e, Let)
        inner = e.body
        assert isinstance(inner.rhs, Ref)
        assert inner.rhs.var is e.var

    def test_named_let(self):
        e = expand("(let loop ((i 0)) (if (zero? i) 'done (loop (- i 1))))")
        assert isinstance(e, Fix)
        assert isinstance(e.body, Call)

    def test_letrec_lambdas_fix(self):
        e = expand("(letrec ((f (lambda (x) (g x))) (g (lambda (x) x))) (f 1))")
        assert isinstance(e, Fix)
        assert len(e.vars) == 2

    def test_alpha_renaming_unique(self):
        e = expand("(let ((x 1)) (let ((x 2)) x))")
        assert isinstance(e, Let) and isinstance(e.body, Let)
        assert e.var is not e.body.var
        assert e.body.body.var is e.body.var


class TestBooleansAndConditionals:
    def test_and_empty(self):
        assert expand("(and)").value is True

    def test_and_expansion(self):
        e = expand("(and 1 2)")
        assert isinstance(e, If)
        assert e.otherwise.value is False

    def test_or_empty(self):
        assert expand("(or)").value is False

    def test_or_binds_temp(self):
        e = expand("(or 1 2)")
        assert isinstance(e, Let)
        assert isinstance(e.body, If)

    def test_not_is_primitive(self):
        e = expand("(not 1)")
        assert isinstance(e, PrimCall) and e.op == "not"

    def test_cond_else(self):
        e = expand("(cond (#t 1) (else 2))")
        assert isinstance(e, If)

    def test_cond_no_else_unspecified(self):
        e = expand("(cond (#f 1))")
        assert isinstance(e, If)
        assert e.otherwise.value is UNSPECIFIED

    def test_cond_arrow(self):
        e = expand("(cond ((cons 1 2) => car) (else 0))")
        assert isinstance(e, Let)

    def test_cond_test_only_clause(self):
        e = expand("(cond (5) (else 0))")
        assert isinstance(e, Let)

    def test_cond_else_must_be_last(self):
        with pytest.raises(CompilerError):
            expand("(cond (else 1) (#t 2))")

    def test_case(self):
        e = expand("(case 3 ((1 2) 'small) ((3) 'three) (else 'big))")
        assert isinstance(e, Let)

    def test_when_unless(self):
        assert isinstance(expand("(when #t 1 2)"), If)
        assert isinstance(expand("(unless #t 1)"), If)


class TestPrimitives:
    def test_binary_plus(self):
        e = expand("(+ 1 2)")
        assert isinstance(e, PrimCall) and e.op == "+"

    def test_nary_plus_folds(self):
        e = expand("(+ 1 2 3)")
        assert isinstance(e, PrimCall)
        assert isinstance(e.args[0], PrimCall)

    def test_nullary_plus(self):
        assert expand("(+)").value == 0

    def test_unary_minus(self):
        e = expand("(- 5)")
        assert e.op == "-" and e.args[0].value == 0

    def test_list_constructor(self):
        e = expand("(list 1 2)")
        assert isinstance(e, PrimCall) and e.op == "cons"

    def test_empty_list_constructor(self):
        assert expand("(list)").value is NIL

    def test_vector_constructor(self):
        e = expand("(vector 1 2)")
        assert isinstance(e, Let)

    def test_chained_comparison_single_eval(self):
        e = expand("(< 1 2 3)")
        assert isinstance(e, Let)  # temps bound once

    def test_cxr_expansion(self):
        e = expand("(cadr '(1 2))")
        assert e.op == "car"
        assert e.args[0].op == "cdr"

    def test_deep_cxr(self):
        e = expand("(cadddr '(1 2 3 4))")
        assert e.op == "car"

    def test_arity_error(self):
        with pytest.raises(CompilerError, match="expected"):
            expand("(car 1 2)")

    def test_fx_aliases(self):
        assert expand("(fx+ 1 2)").op == "+"
        assert expand("(1+ 5)").op == "add1"

    def test_primitive_as_value_eta_expands(self):
        e = expand("(lambda (f) (f car))")
        assert isinstance(e, Lambda)

    def test_cxr_as_value(self):
        e = expand("((lambda (f) (f 1)) cadr)")
        assert isinstance(e, Call)
        assert isinstance(e.args[0], Lambda)

    def test_error_variadic(self):
        e = expand('(error "msg" 1 2)')
        assert e.op == "error"
        assert len(e.args) == 2

    def test_shadowing_primitive_name(self):
        e = expand("(let ((car (lambda (x) 99))) (car '(1)))")
        assert isinstance(e, Let)
        assert isinstance(e.body, Call)  # user binding wins


class TestSetAndBegin:
    def test_set(self):
        e = expand("(let ((x 1)) (set! x 2))")
        assert isinstance(e.body, SetBang)
        assert e.body.var is e.var
        assert e.var.assigned

    def test_set_unbound(self):
        with pytest.raises(CompilerError):
            expand("(set! nope 1)")

    def test_begin_single(self):
        assert isinstance(expand("(begin 1)"), Quote)

    def test_begin_multiple(self):
        e = expand("(begin 1 2)")
        assert isinstance(e, Seq)
        assert len(e.exprs) == 2


class TestQuasiquote:
    def test_constant(self):
        e = expand("`(1 2)")
        assert isinstance(e, PrimCall)

    def test_unquote(self):
        e = expand("`(1 ,(+ 1 1))")
        assert isinstance(e, PrimCall) and e.op == "cons"

    def test_splice(self):
        e = expand("`(1 ,@(list 2 3) 4)")
        assert isinstance(e, PrimCall)


class TestDo:
    def test_do_shape(self):
        e = expand("(do ((i 0 (+ i 1))) ((= i 3) 'done))")
        assert isinstance(e, Fix)

    def test_do_default_step(self):
        e = expand("(do ((i 0)) (#t i))")
        assert isinstance(e, Fix)


class TestCallCC:
    def test_callcc_node(self):
        e = expand("(call/cc (lambda (k) 1))")
        assert isinstance(e, CallCC)

    def test_long_name(self):
        e = expand("(call-with-current-continuation (lambda (k) 1))")
        assert isinstance(e, CallCC)


class TestTopLevel:
    def test_defines_and_body(self):
        e = expand_top("(define (f x) x) (f 1)")
        assert isinstance(e, Fix)

    def test_value_define(self):
        e = expand_top("(define n 10) n")
        assert isinstance(e, Let)

    def test_consecutive_lambda_defines_one_fix(self):
        e = expand_top(
            "(define (f x) (g x)) (define (g x) (f x)) 1"
        )
        assert isinstance(e, Fix)
        assert len(e.vars) == 2

    def test_data_define_splits_groups(self):
        e = expand_top("(define (f x) x) (define n 1) (define (g x) x) (g (f n))")
        assert isinstance(e, Fix)  # f
        assert isinstance(e.body, Let)  # n

    def test_duplicate_define(self):
        with pytest.raises(CompilerError):
            expand_top("(define x 1) (define x 2) x")

    def test_no_body_expression(self):
        with pytest.raises(CompilerError):
            expand_top("(define x 1)")

    def test_define_after_expression(self):
        with pytest.raises(CompilerError):
            expand_top("1 (define x 2) x")

    def test_define_in_expression_context(self):
        with pytest.raises(CompilerError):
            expand_top("(if #t (define x 1) 2)")

    def test_internal_defines(self):
        e = expand("(lambda (x) (define (h y) y) (h x))")
        assert isinstance(e.body, Fix)

    def test_pretty_smoke(self):
        text = pretty(expand_top("(define (f x) (+ x 1)) (f 2)"))
        assert "fix" in text and "#%+" in text
