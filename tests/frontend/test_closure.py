"""Closure conversion tests."""


from repro.astnodes import (
    ClosureRef,
    Fix,
    Lambda,
    MakeClosure,
    walk,
)
from repro.frontend.analyze import mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.closure import closure_convert, free_variables
from repro.frontend.expand import expand_expr, expand_program
from repro.sexp.reader import read, read_all


def convert(text):
    e = assignment_convert(expand_program(read_all(text)))
    mark_tail_calls(e)
    return closure_convert(e)


class TestFreeVariables:
    def test_closed_lambda(self):
        e = expand_expr(read("(lambda (x) x)"))
        assert free_variables(e) == set()

    def test_free_in_body(self):
        e = expand_expr(read("(lambda (x) (lambda (y) x))"))
        inner = e.body
        assert free_variables(inner) == {e.params[0]}

    def test_let_binds(self):
        e = expand_expr(read("(lambda (x) (let ((y x)) y))"))
        assert free_variables(e) == set()

    def test_fix_binds(self):
        e = expand_expr(read("(lambda (z) (letrec ((f (lambda (n) (f (+ n z))))) (f 0)))"))
        assert free_variables(e) == set()


class TestConversion:
    def test_program_structure(self):
        prog = convert("(define (f x) x) (f 1)")
        assert prog.entry in prog.codes
        assert prog.entry.params == []
        assert prog.entry.free == []

    def test_code_per_lambda(self):
        prog = convert("(define (f x) x) (define (g y) y) (f (g 1))")
        names = {c.name for c in prog.codes}
        assert {"f", "g", "main"} <= names

    def test_capture_becomes_closure_ref(self):
        prog = convert("(define (adder n) (lambda (x) (+ x n))) ((adder 1) 2)")
        inner = next(c for c in prog.codes if c.name == "anonymous")
        refs = [n for n in walk(inner.body) if isinstance(n, ClosureRef)]
        assert len(refs) == 1
        assert refs[0].index == 0
        assert inner.free[0].name == "n"

    def test_nested_capture_chains(self):
        prog = convert(
            "(define (f a) (lambda (b) (lambda (c) (+ a (+ b c))))) (((f 1) 2) 3)"
        )
        innermost = [c for c in prog.codes if len(c.free) == 2]
        assert innermost  # captures both a and b

    def test_fix_closures_can_be_cyclic(self):
        prog = convert(
            "(define (e? n) (if (zero? n) #t (o? (- n 1))))"
            "(define (o? n) (if (zero? n) #f (e? (- n 1))))"
            "(e? 10)"
        )
        fixes = [n for n in walk(prog.entry.body) if isinstance(n, Fix)]
        assert fixes
        assert all(isinstance(mc, MakeClosure) for mc in fixes[0].lambdas)

    def test_no_lambda_nodes_remain(self):
        prog = convert("(define (f x) (lambda (y) (+ x y))) ((f 1) 2)")
        for code in prog.codes:
            assert not any(isinstance(n, Lambda) for n in walk(code.body))

    def test_syntactic_leaf_flag(self):
        prog = convert(
            "(define (leaf x) (+ x 1))"
            "(define (internal x) (+ (internal x) 1))"
            "(leaf (internal 1))"
        )
        leaf = next(c for c in prog.codes if c.name == "leaf")
        internal = next(c for c in prog.codes if c.name == "internal")
        assert leaf.syntactic_leaf
        assert not internal.syntactic_leaf

    def test_tail_call_does_not_break_leafness(self):
        # footnote 1: tail calls are jumps, not calls
        prog = convert("(define (loop x) (loop x)) 1")
        loop = next(c for c in prog.codes if c.name == "loop")
        assert loop.syntactic_leaf

    def test_free_order_deterministic(self):
        prog1 = convert("(define (f a b) (lambda (x) (+ a (+ b x)))) ((f 1 2) 3)")
        inner = next(c for c in prog1.codes if len(c.free) == 2)
        assert [v.name for v in inner.free] == ["a", "b"]
