"""CLI tests (invoked in-process via repro.cli.main)."""

import pytest

from repro.cli import main


@pytest.fixture
def tak_file(tmp_path):
    path = tmp_path / "tak.scm"
    path.write_text(
        "(define (tak x y z)\n"
        "  (if (not (< y x)) z\n"
        "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))\n"
        "(tak 8 4 2)\n"
    )
    return str(path)


class TestRun:
    def test_run_prints_value(self, tak_file, capsys):
        assert main(["run", tak_file]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_counters(self, tak_file, capsys):
        main(["run", tak_file, "--counters"])
        err = capsys.readouterr().err
        assert "stack refs" in err
        assert "eff. leaves" in err

    def test_run_baseline(self, tak_file, capsys):
        assert main(["run", tak_file, "--baseline"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_strategies(self, tak_file, capsys):
        for strategy in ("early", "late", "lazy-simple"):
            assert main(["run", tak_file, "--save-strategy", strategy]) == 0
            assert capsys.readouterr().out.strip() == "3"

    def test_run_lift_and_callee(self, tak_file, capsys):
        assert main(["run", tak_file, "--lift", "--convention", "callee"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_output_port(self, tmp_path, capsys):
        path = tmp_path / "p.scm"
        path.write_text('(begin (display "hi") (newline) 7)')
        main(["run", str(path)])
        out = capsys.readouterr().out
        assert out == "hi\n7\n"

    def test_run_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("(+ 20 22)"))
        main(["run", "-"])
        assert capsys.readouterr().out.strip() == "42"


class TestDisasm:
    def test_disasm_whole_program(self, tak_file, capsys):
        assert main(["disasm", tak_file]) == 0
        out = capsys.readouterr().out
        assert "tak%" in out and "tailcall" in out

    def test_disasm_single_proc(self, tak_file, capsys):
        main(["disasm", tak_file, "--proc", "tak"])
        out = capsys.readouterr().out
        assert "tak%" in out and "main%" not in out

    def test_disasm_save_strategy_changes_code(self, tak_file, capsys):
        main(["disasm", tak_file, "--proc", "tak", "--save-strategy", "lazy"])
        lazy = capsys.readouterr().out
        main(["disasm", tak_file, "--proc", "tak", "--save-strategy", "early"])
        early = capsys.readouterr().out
        assert lazy != early


class TestExpand:
    def test_expand(self, tak_file, capsys):
        assert main(["expand", tak_file, "--no-prelude"]) == 0
        out = capsys.readouterr().out
        assert "(fix" in out and "tailcall" in out


class TestBenchAndTables:
    def test_bench_named(self, capsys):
        assert main(["bench", "tak"]) == 0
        out = capsys.readouterr().out
        assert "tak" in out and "75.0%" in out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "nope"]) == 1

    def test_table2_subset(self, capsys):
        assert main(["table", "2", "--names", "tak"]) == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out

    def test_table_shuffle(self, capsys):
        assert main(["table", "shuffle", "--names", "tak"]) == 0
        assert "cyclic" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tak" in out and "boyer" in out
