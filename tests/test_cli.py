"""CLI tests (invoked in-process via repro.cli.main)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def tak_file(tmp_path):
    path = tmp_path / "tak.scm"
    path.write_text(
        "(define (tak x y z)\n"
        "  (if (not (< y x)) z\n"
        "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))\n"
        "(tak 8 4 2)\n"
    )
    return str(path)


class TestRun:
    def test_run_prints_value(self, tak_file, capsys):
        assert main(["run", tak_file]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_counters(self, tak_file, capsys):
        main(["run", tak_file, "--counters"])
        err = capsys.readouterr().err
        assert "stack refs" in err
        assert "eff. leaves" in err

    def test_run_baseline(self, tak_file, capsys):
        assert main(["run", tak_file, "--baseline"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_strategies(self, tak_file, capsys):
        for strategy in ("early", "late", "lazy-simple"):
            assert main(["run", tak_file, "--save-strategy", strategy]) == 0
            assert capsys.readouterr().out.strip() == "3"

    def test_run_lift_and_callee(self, tak_file, capsys):
        assert main(["run", tak_file, "--lift", "--convention", "callee"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_output_port(self, tmp_path, capsys):
        path = tmp_path / "p.scm"
        path.write_text('(begin (display "hi") (newline) 7)')
        main(["run", str(path)])
        out = capsys.readouterr().out
        assert out == "hi\n7\n"

    def test_run_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("(+ 20 22)"))
        main(["run", "-"])
        assert capsys.readouterr().out.strip() == "42"

    def test_run_json(self, tak_file, capsys):
        assert main(["run", tak_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["value"] == "3"
        counters = doc["counters"]
        assert counters["instructions"] > 0
        assert counters["stack_refs"] == sum(
            counters["stack_reads"].values()
        ) + sum(counters["stack_writes"].values())
        # --json also carries the per-pass and per-procedure data.
        assert "allocate" in doc["passes"]
        assert doc["procedures"]

    def test_run_trace_file(self, tak_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["run", tak_file, "--trace", str(trace)]) == 0
        assert capsys.readouterr().out.strip().endswith("3")
        doc = json.loads(trace.read_text())
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "allocate" in names and "execute" in names


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["run", "/no/such/file.scm"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "Traceback" not in err

    def test_reader_error(self, tmp_path, capsys):
        path = tmp_path / "bad.scm"
        path.write_text("(foo")
        assert main(["run", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: read error:")
        assert "Traceback" not in err

    def test_compile_error(self, tmp_path, capsys):
        path = tmp_path / "unbound.scm"
        path.write_text("(this-is-unbound 1)")
        assert main(["run", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: compile error:")
        assert "unbound" in err

    def test_runtime_error(self, tmp_path, capsys):
        path = tmp_path / "rt.scm"
        path.write_text("(car 1)")
        assert main(["run", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: runtime error:")

    def test_disasm_error(self, tmp_path, capsys):
        path = tmp_path / "bad.scm"
        path.write_text("(")
        assert main(["disasm", str(path)]) == 1
        assert "repro: read error" in capsys.readouterr().err

    def test_report_error(self, tmp_path, capsys):
        path = tmp_path / "bad.scm"
        path.write_text("(set! nope 1)")
        assert main(["report", str(path)]) == 1
        assert "repro:" in capsys.readouterr().err


class TestDisasm:
    def test_disasm_whole_program(self, tak_file, capsys):
        assert main(["disasm", tak_file]) == 0
        out = capsys.readouterr().out
        assert "tak%" in out and "tailcall" in out

    def test_disasm_single_proc(self, tak_file, capsys):
        main(["disasm", tak_file, "--proc", "tak"])
        out = capsys.readouterr().out
        assert "tak%" in out and "main%" not in out

    def test_disasm_save_strategy_changes_code(self, tak_file, capsys):
        main(["disasm", tak_file, "--proc", "tak", "--save-strategy", "lazy"])
        lazy = capsys.readouterr().out
        main(["disasm", tak_file, "--proc", "tak", "--save-strategy", "early"])
        early = capsys.readouterr().out
        assert lazy != early


class TestExpand:
    def test_expand(self, tak_file, capsys):
        assert main(["expand", tak_file, "--no-prelude"]) == 0
        out = capsys.readouterr().out
        assert "(fix" in out and "tailcall" in out


class TestBenchAndTables:
    def test_bench_named(self, capsys):
        assert main(["bench", "tak"]) == 0
        out = capsys.readouterr().out
        assert "tak" in out and "75.0%" in out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "nope"]) == 1

    def test_bench_json(self, capsys):
        assert main(["bench", "tak", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["benchmark"] == "tak"
        assert rows[0]["counters"]["cycles"] > 0

    def test_bench_trace(self, tmp_path, capsys):
        trace = tmp_path / "bench-trace.json"
        assert main(["bench", "tak", "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "bench" in names and "allocate" in names

    def test_bench_allocator_sweep(self, capsys):
        assert main(["bench", "tak", "--allocator", "all"]) == 0
        out = capsys.readouterr().out
        for allocator in ("lazy", "linearscan", "graphcolor"):
            assert allocator in out

    def test_bench_allocator_sweep_json(self, capsys):
        assert main(["bench", "tak", "--allocator", "all", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["allocator"] for r in rows] == [
            "lazy",
            "linearscan",
            "graphcolor",
        ]
        assert len({r["value"] for r in rows}) == 1

    def test_table2_subset(self, capsys):
        assert main(["table", "2", "--names", "tak"]) == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out

    def test_table_shuffle(self, capsys):
        assert main(["table", "shuffle", "--names", "tak"]) == 0
        assert "cyclic" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tak" in out and "boyer" in out


class TestAlloc:
    def test_static_summary(self, tak_file, capsys):
        assert main(["alloc", tak_file, "--allocator", "linearscan"]) == 0
        out = capsys.readouterr().out
        assert "allocator    linearscan" in out
        assert "candidates" in out
        assert "pass shuffle" in out

    def test_compare_table(self, tak_file, capsys):
        assert main(["alloc", tak_file, "--compare"]) == 0
        out = capsys.readouterr().out
        for allocator in ("lazy", "linearscan", "graphcolor"):
            assert allocator in out
        assert "value: 3" in out

    def test_compare_json(self, tak_file, capsys):
        assert (
            main(
                [
                    "alloc",
                    tak_file,
                    "--compare",
                    "--json",
                    "--arg-regs",
                    "2",
                    "--temp-regs",
                    "1",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3
        assert len({r["value"] for r in rows}) == 1
        for row in rows:
            assert row["cycles"] > 0
