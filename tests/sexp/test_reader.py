"""Reader tests: datum syntax accepted by the front end."""

import pytest

from repro.sexp.datum import Char, NIL, Pair, Symbol, pairs_to_list
from repro.sexp.reader import ReaderError, read, read_all


class TestAtoms:
    def test_fixnum(self):
        assert read("42") == 42

    def test_negative_fixnum(self):
        assert read("-17") == -17

    def test_positive_sign(self):
        assert read("+9") == 9

    def test_flonum(self):
        assert read("3.25") == 3.25

    def test_flonum_negative(self):
        assert read("-0.5") == -0.5

    def test_flonum_exponent(self):
        assert read("1e3") == 1000.0

    def test_symbol(self):
        assert read("foo") is Symbol("foo")

    def test_symbol_with_punctuation(self):
        assert read("list->vector!?") is Symbol("list->vector!?")

    def test_plus_is_symbol(self):
        assert read("+") is Symbol("+")

    def test_minus_is_symbol(self):
        assert read("-") is Symbol("-")

    def test_ellipsis_is_symbol(self):
        assert read("...") is Symbol("...")

    def test_arrow_symbol(self):
        assert read("->x") is Symbol("->x")

    def test_true(self):
        assert read("#t") is True

    def test_false(self):
        assert read("#f") is False

    def test_malformed_number_raises(self):
        with pytest.raises(ReaderError):
            read("1.2.3")


class TestCharacters:
    def test_simple_char(self):
        assert read("#\\a") is Char("a")

    def test_space_char(self):
        assert read("#\\space") is Char(" ")

    def test_newline_char(self):
        assert read("#\\newline") is Char("\n")

    def test_tab_char(self):
        assert read("#\\tab") is Char("\t")

    def test_paren_char(self):
        assert read("#\\(") is Char("(")

    def test_digit_char(self):
        assert read("#\\0") is Char("0")

    def test_unknown_char_name(self):
        with pytest.raises(ReaderError):
            read("#\\bogus")


class TestStrings:
    def test_empty_string(self):
        assert read('""').text == ""

    def test_simple_string(self):
        assert read('"hello"').text == "hello"

    def test_escapes(self):
        assert read(r'"a\nb\t\"q\""').text == 'a\nb\t"q"'

    def test_unterminated(self):
        with pytest.raises(ReaderError):
            read('"oops')

    def test_bad_escape(self):
        with pytest.raises(ReaderError):
            read(r'"\q"')


class TestLists:
    def test_empty_list(self):
        assert read("()") is NIL

    def test_flat_list(self):
        assert pairs_to_list(read("(1 2 3)")) == [1, 2, 3]

    def test_nested_list(self):
        datum = read("(a (b c) d)")
        items = pairs_to_list(datum)
        assert items[0] is Symbol("a")
        assert pairs_to_list(items[1]) == [Symbol("b"), Symbol("c")]

    def test_dotted_pair(self):
        datum = read("(1 . 2)")
        assert isinstance(datum, Pair)
        assert datum.car == 1 and datum.cdr == 2

    def test_dotted_list(self):
        datum = read("(1 2 . 3)")
        assert datum.car == 1
        assert datum.cdr.car == 2
        assert datum.cdr.cdr == 3

    def test_dot_requires_prefix(self):
        with pytest.raises(ReaderError):
            read("(. 2)")

    def test_dot_requires_single_tail(self):
        with pytest.raises(ReaderError):
            read("(1 . 2 3)")

    def test_unterminated_list(self):
        with pytest.raises(ReaderError):
            read("(1 2")

    def test_stray_close(self):
        with pytest.raises(ReaderError):
            read(")")

    def test_symbol_starting_with_dot(self):
        # ".x" is a symbol, not a dot
        assert pairs_to_list(read("(.x)")) == [Symbol(".x")]


class TestVectors:
    def test_empty_vector(self):
        assert read("#()") == []

    def test_vector(self):
        assert read("#(1 2 3)") == [1, 2, 3]

    def test_nested_vector(self):
        assert read("#(1 #(2) 3)") == [1, [2], 3]


class TestQuotation:
    def test_quote(self):
        datum = read("'x")
        assert pairs_to_list(datum) == [Symbol("quote"), Symbol("x")]

    def test_quasiquote(self):
        assert read("`x").car is Symbol("quasiquote")

    def test_unquote(self):
        assert read(",x").car is Symbol("unquote")

    def test_unquote_splicing(self):
        assert read(",@x").car is Symbol("unquote-splicing")

    def test_quoted_list(self):
        datum = read("'(1 2)")
        assert pairs_to_list(pairs_to_list(datum)[1]) == [1, 2]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert read("; comment\n42") == 42

    def test_comment_inside_list(self):
        assert pairs_to_list(read("(1 ; two\n 3)")) == [1, 3]

    def test_block_comment(self):
        assert read("#| ignore |# 7") == 7

    def test_nested_block_comment(self):
        assert read("#| a #| b |# c |# 8") == 8

    def test_datum_comment(self):
        assert pairs_to_list(read("(1 #;(2 3) 4)")) == [1, 4]

    def test_unterminated_block_comment(self):
        with pytest.raises(ReaderError):
            read("#| forever")


class TestReadAll:
    def test_multiple_datums(self):
        assert read_all("1 2 3") == [1, 2, 3]

    def test_empty_input(self):
        assert read_all("   ; nothing\n") == []

    def test_read_requires_datum(self):
        with pytest.raises(ReaderError):
            read("   ")

    def test_error_position(self):
        try:
            read('(1\n"unterminated')
        except ReaderError as e:
            assert e.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected ReaderError")
