"""Datum type tests."""

import pytest

from repro.sexp.datum import (
    Char,
    MutableString,
    NIL,
    Pair,
    Symbol,
    is_list,
    list_to_pairs,
    pairs_to_list,
    scheme_equal,
    scheme_eqv,
)


class TestSymbol:
    def test_interning(self):
        assert Symbol("abc") is Symbol("abc")

    def test_distinct(self):
        assert Symbol("a") is not Symbol("b")

    def test_name(self):
        assert Symbol("hello").name == "hello"


class TestChar:
    def test_interning(self):
        assert Char("x") is Char("x")

    def test_rejects_multichar(self):
        with pytest.raises(ValueError):
            Char("ab")

    def test_ordering(self):
        assert Char("a") < Char("b")


class TestPairHelpers:
    def test_list_round_trip(self):
        assert pairs_to_list(list_to_pairs([1, 2, 3])) == [1, 2, 3]

    def test_empty(self):
        assert list_to_pairs([]) is NIL

    def test_tail(self):
        p = list_to_pairs([1], tail=2)
        assert p.car == 1 and p.cdr == 2

    def test_pairs_to_list_improper_raises(self):
        with pytest.raises(ValueError):
            pairs_to_list(Pair(1, 2))

    def test_pair_iteration(self):
        assert list(list_to_pairs([1, 2, 3])) == [1, 2, 3]

    def test_is_list_proper(self):
        assert is_list(list_to_pairs([1, 2]))
        assert is_list(NIL)

    def test_is_list_improper(self):
        assert not is_list(Pair(1, 2))

    def test_is_list_cyclic(self):
        p = Pair(1, NIL)
        p.cdr = p
        assert not is_list(p)


class TestEquality:
    def test_eqv_numbers(self):
        assert scheme_eqv(3, 3)
        assert not scheme_eqv(3, 4)
        assert scheme_eqv(2.5, 2.5)

    def test_eqv_bool_not_number(self):
        assert not scheme_eqv(True, 1)
        assert not scheme_eqv(0, False)

    def test_eqv_identity(self):
        p = Pair(1, NIL)
        assert scheme_eqv(p, p)
        assert not scheme_eqv(p, Pair(1, NIL))

    def test_equal_structural(self):
        a = list_to_pairs([1, list_to_pairs([2, 3])])
        b = list_to_pairs([1, list_to_pairs([2, 3])])
        assert scheme_equal(a, b)

    def test_equal_strings(self):
        assert scheme_equal(MutableString("ab"), MutableString("ab"))
        assert not scheme_equal(MutableString("ab"), MutableString("ac"))

    def test_equal_vectors(self):
        assert scheme_equal([1, [2]], [1, [2]])
        assert not scheme_equal([1], [1, 2])

    def test_equal_long_list_iterative(self):
        # equal? must not recurse down the cdr spine
        a = list_to_pairs(list(range(50_000)))
        b = list_to_pairs(list(range(50_000)))
        assert scheme_equal(a, b)


class TestMutableString:
    def test_text(self):
        assert MutableString("abc").text == "abc"

    def test_mutation(self):
        s = MutableString("abc")
        s.chars[1] = "X"
        assert s.text == "aXc"

    def test_len(self):
        assert len(MutableString("abcd")) == 4
