"""Writer tests, including reader/writer round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.sexp.datum import (
    Char,
    MutableString,
    NIL,
    Pair,
    Symbol,
    UNSPECIFIED,
    list_to_pairs,
)
from repro.sexp.reader import read
from repro.sexp.writer import display_datum, write_datum


class TestWrite:
    def test_fixnum(self):
        assert write_datum(42) == "42"

    def test_flonum(self):
        assert write_datum(2.5) == "2.5"

    def test_flonum_integral(self):
        assert write_datum(2.0) == "2.0"

    def test_booleans(self):
        assert write_datum(True) == "#t"
        assert write_datum(False) == "#f"

    def test_nil(self):
        assert write_datum(NIL) == "()"

    def test_symbol(self):
        assert write_datum(Symbol("abc")) == "abc"

    def test_string_quoted(self):
        assert write_datum(MutableString('a"b')) == '"a\\"b"'

    def test_string_newline_escape(self):
        assert write_datum(MutableString("a\nb")) == '"a\\nb"'

    def test_char(self):
        assert write_datum(Char("x")) == "#\\x"

    def test_char_space(self):
        assert write_datum(Char(" ")) == "#\\space"

    def test_proper_list(self):
        assert write_datum(list_to_pairs([1, 2, 3])) == "(1 2 3)"

    def test_dotted_pair(self):
        assert write_datum(Pair(1, 2)) == "(1 . 2)"

    def test_improper_list(self):
        assert write_datum(list_to_pairs([1, 2], tail=3)) == "(1 2 . 3)"

    def test_vector(self):
        assert write_datum([1, 2]) == "#(1 2)"

    def test_quote_abbreviation(self):
        assert write_datum(read("'x")) == "'x"

    def test_unspecified(self):
        assert write_datum(UNSPECIFIED) == "#<void>"


class TestDisplay:
    def test_string_unquoted(self):
        assert display_datum(MutableString("hi")) == "hi"

    def test_char_bare(self):
        assert display_datum(Char("x")) == "x"

    def test_list_recursive_display(self):
        datum = list_to_pairs([MutableString("a"), Char("b")])
        assert display_datum(datum) == "(a b)"


class TestRoundTrip:
    CASES = [
        "42",
        "-3.5",
        "#t",
        "#f",
        "()",
        "(1 2 3)",
        "(1 . 2)",
        "(1 2 . 3)",
        "#(1 #(2 3) ())",
        '"str\\ning"',
        "#\\a",
        "#\\space",
        "(a (b (c (d))))",
        "'(quoted thing)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        datum = read(text)
        assert write_datum(read(write_datum(datum))) == write_datum(datum)


# Hypothesis: structural round-trip over generated datums.

_atoms = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.booleans(),
    st.sampled_from([Symbol(s) for s in ("a", "foo", "x->y", "+", "p?")]),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters='"\\'),
        max_size=8,
    ).map(MutableString),
    st.just(NIL),
)


def _to_scheme_list(items):
    return list_to_pairs(items)


_datums = st.recursive(
    _atoms,
    lambda children: st.lists(children, max_size=4).map(_to_scheme_list),
    max_leaves=20,
)


@given(_datums)
def test_write_read_round_trip(datum):
    from repro.sexp.datum import scheme_equal

    assert scheme_equal(read(write_datum(datum)), datum)
