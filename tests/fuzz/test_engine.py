"""Fuzzing-loop tests: deterministic reports, corpus persistence, and
replay round-trips."""

from repro.fuzz.corpus import CorpusEntry, load_entry, save_entry
from repro.fuzz.engine import replay_entry, run_fuzz
from repro.fuzz.genprog import GenConfig


def _stable(report_dict: dict) -> dict:
    out = dict(report_dict)
    out.pop("elapsed_seconds")
    return out


SMALL = GenConfig(max_helpers=2, min_helpers=2, max_depth=3)


class TestRunFuzz:
    def test_clean_run(self):
        report = run_fuzz(seed=11, iterations=2, gen_config=SMALL)
        assert report.ok
        assert report.iterations == 2
        assert report.configs_checked > 0

    def test_deterministic_report(self):
        a = run_fuzz(seed=11, iterations=2, gen_config=SMALL)
        b = run_fuzz(seed=11, iterations=2, gen_config=SMALL)
        assert _stable(a.as_dict()) == _stable(b.as_dict())

    def test_progress_callback(self):
        seen = []
        run_fuzz(
            seed=11,
            iterations=2,
            gen_config=SMALL,
            on_progress=lambda done, report: seen.append(done),
        )
        assert seen == [1, 2]

    def test_allocator_restricts_the_config_matrix(self):
        from repro.config import ALLOCATOR_STRATEGIES, allocator_matrix

        for allocator in ALLOCATOR_STRATEGIES:
            report = run_fuzz(
                seed=11, iterations=1, gen_config=SMALL, allocator=allocator
            )
            assert report.ok
            assert report.configs_checked == len(allocator_matrix(allocator))

    def test_full_matrix_covers_every_allocator(self):
        from repro.config import ALLOCATOR_STRATEGIES, full_matrix

        seen = {cfg.allocator for cfg in full_matrix()}
        assert seen == set(ALLOCATOR_STRATEGIES)

    def test_keep_interesting_persists_corpus(self, tmp_path):
        # Permuted self-calls make broken shuffle cycles common; a short
        # run finds at least one and keeps it.
        report = run_fuzz(
            seed=42,
            iterations=4,
            corpus_dir=str(tmp_path),
            keep_interesting=2,
        )
        assert report.ok
        assert report.shuffle_cycles > 0
        assert report.interesting_saved
        entry = load_entry(report.interesting_saved[0])
        assert entry.kind == "interesting"
        assert entry.seed == 42


class TestReplay:
    def test_replay_round_trip(self, tmp_path):
        entry = CorpusEntry(source="(+ 20 22)", kind="manual")
        path = save_entry(entry, str(tmp_path))
        report = replay_entry(load_entry(path))
        assert report.ok
        assert report.configs_checked > 0

    def test_replay_prefers_recorded_config(self, tmp_path):
        from repro.config import CompilerConfig, full_matrix

        entry = CorpusEntry(
            source="(+ 1 2)",
            config=CompilerConfig(num_arg_regs=2, num_temp_regs=1),
        )
        report = replay_entry(entry)
        # The recorded configuration is checked in addition to the
        # matrix (deduplicated when it is already a matrix point).
        assert report.configs_checked >= len(full_matrix())


class TestFlightDumps:
    def test_divergence_writes_flight_recording(self, tmp_path, monkeypatch):
        import json

        from repro.config import CompilerConfig
        from repro.fuzz import engine
        from repro.fuzz.oracle import Divergence, OracleResult

        calls = []

        def fake_check(source, configs=None):
            calls.append(source)
            result = OracleResult(configs_checked=1)
            if len(calls) == 2:  # the second program "diverges"
                result.divergences.append(
                    Divergence(
                        kind="value",
                        config=CompilerConfig(),
                        expected="1",
                        got="2",
                    )
                )
            return result

        monkeypatch.setattr(engine, "check_program", fake_check)
        flights = tmp_path / "flights"
        report = engine.run_fuzz(
            seed=7, iterations=3, gen_config=SMALL, flight_dir=str(flights)
        )
        assert not report.ok
        (failure,) = report.failures
        assert failure.flight_path
        assert failure.as_dict()["flight_path"] == failure.flight_path
        doc = json.loads(open(failure.flight_path).read())
        assert doc["reason"] == "fuzz-value"
        # The dump carries the failing program and the divergences...
        assert doc["context"]["source"] == failure.source
        assert doc["context"]["seed"] == 7
        assert doc["context"]["divergences"][0]["kind"] == "value"
        # ...and the per-iteration timeline leading up to the failure.
        kinds = [e["kind"] for e in doc["events"]]
        assert "fuzz.iteration" in kinds

    def test_no_flight_dump_without_flight_dir(self, tmp_path):
        report = run_fuzz(seed=11, iterations=2, gen_config=SMALL)
        assert report.ok
        assert all(f.flight_path is None for f in report.failures)
