"""Generator determinism and bias tests."""

from repro.fuzz.genprog import GenConfig, ProgramGenerator, generate_program
from repro.fuzz.oracle import InvalidProgram, interp_reference
from repro.sexp.reader import read_all


class TestDeterminism:
    def test_same_seed_same_program(self):
        # Two independent generator instances, same (seed, index):
        # byte-identical program text.
        for index in range(5):
            a = ProgramGenerator(42).generate(index)
            b = ProgramGenerator(42).generate(index)
            assert a.source == b.source
            assert a.helper_arities == b.helper_arities

    def test_convenience_matches_generator(self):
        assert (
            generate_program(7, 3).source == ProgramGenerator(7).generate(3).source
        )

    def test_generation_order_does_not_matter(self):
        # generate(i) depends only on (seed, i), not on what was
        # generated before — required for multiprocessing workers.
        gen = ProgramGenerator(42)
        forward = [gen.generate(i).source for i in range(4)]
        gen2 = ProgramGenerator(42)
        backward = [gen2.generate(i).source for i in reversed(range(4))]
        assert forward == list(reversed(backward))

    def test_different_index_differs(self):
        sources = {generate_program(42, i).source for i in range(6)}
        assert len(sources) == 6

    def test_different_seed_differs(self):
        assert generate_program(1, 0).source != generate_program(2, 0).source


class TestShape:
    def test_programs_parse(self):
        for index in range(10):
            forms = read_all(generate_program(42, index).source)
            assert len(forms) >= 4  # >= 2 helpers + mainf + top call

    def test_programs_interpretable(self):
        # Termination-by-construction: the reference interpreter runs
        # every generated program within the step budget.
        for index in range(10):
            program = generate_program(42, index)
            try:
                value, _ = interp_reference(program.source)
            except InvalidProgram as exc:  # pragma: no cover - diagnostic
                raise AssertionError(
                    f"program (42, {index}) invalid: {exc}\n{program.source}"
                )
            assert value

    def test_arity_bias_beyond_arg_regs(self):
        # Helper h1 is biased past the 6 argument registers, so some
        # operands always travel through outgoing stack slots.
        program = generate_program(42, 0)
        assert len(program.helper_arities) >= 2
        assert program.helper_arities[1] >= 7

    def test_custom_gen_config(self):
        config = GenConfig(max_helpers=2, min_helpers=2, max_arity=7)
        program = ProgramGenerator(5, config).generate(0)
        assert len(program.helper_arities) == 2
        assert max(program.helper_arities) <= 7

    def test_pressure_shape_appears_and_interprets(self):
        # The high-register-pressure bias: across a modest sample some
        # program binds a cluster of q-temps that all stay live across
        # a call, and those programs still terminate under the
        # reference interpreter.
        hits = [
            i
            for i in range(40)
            if "(let ((q" in generate_program(11, i).source
        ]
        assert hits, "pressure shape never sampled in 40 programs"
        for index in hits[:3]:
            value, _ = interp_reference(generate_program(11, index).source)
            assert value
