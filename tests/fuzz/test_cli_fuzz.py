"""CLI surface of ``repro fuzz`` (in-process via repro.cli.main)."""

import json

from repro.cli import main
from repro.fuzz.corpus import CorpusEntry, save_entry


class TestFuzzRun:
    def test_small_run_exits_zero(self, tmp_path, capsys):
        code = main(
            ["fuzz", "--seed", "11", "--iterations", "2", "--corpus", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 program(s)" in out
        assert "0 failure(s)" in out

    def test_json_report(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--seed",
                "11",
                "--iterations",
                "2",
                "--corpus",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["seed"] == 11
        assert doc["iterations"] == 2
        assert doc["failures"] == []


class TestFuzzReplay:
    def test_replay_ok(self, tmp_path, capsys):
        path = save_entry(CorpusEntry(source="(+ 20 22)"), str(tmp_path))
        assert main(["fuzz", "--replay", path]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_replay_unparseable_is_one_line_diagnostic(self, tmp_path, capsys):
        # A corpus file the loader rejects must exit 1 with the standard
        # one-line diagnostic — never a traceback.
        path = tmp_path / "broken.sexp"
        path.write_text("this is not a corpus file\n")
        code = main(["fuzz", "--replay", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        err = captured.err.strip()
        assert err.startswith("repro: fuzz error:")
        assert "\n" not in err
        assert "Traceback" not in captured.err

    def test_replay_missing_file(self, tmp_path, capsys):
        code = main(["fuzz", "--replay", str(tmp_path / "absent.sexp")])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("repro: fuzz error:")

    def test_replay_unreadable_body(self, tmp_path, capsys):
        path = tmp_path / "body.sexp"
        path.write_text(";; repro-fuzz v1\n(+ 1 2\n")
        code = main(["fuzz", "--replay", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "unreadable program body" in captured.err
