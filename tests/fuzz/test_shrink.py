"""Shrinker invariants: the result still fails, stays well-formed, and
the process is deterministic and strictly size-decreasing."""

from repro.fuzz.genprog import generate_program
from repro.fuzz.shrink import program_size, shrink_program
from repro.sexp.reader import read_all


def contains_symbol(source: str, name: str) -> bool:
    return any(name in part for part in source.split())


class TestShrink:
    def test_result_still_fails(self):
        source = (
            "(define (noise a b) (+ a b))\n"
            "(define (target x) (* x magicvar))\n"
            "(noise 1 2)\n"
            "(target 3)\n"
        )
        still_fails = lambda s: "magicvar" in s  # noqa: E731
        shrunk = shrink_program(source, still_fails)
        assert still_fails(shrunk)
        assert program_size(shrunk) < program_size(source)
        # The unrelated forms are gone entirely.
        assert "noise" not in shrunk

    def test_result_is_well_formed(self):
        source = generate_program(42, 0).source
        still_fails = lambda s: "h1" in s  # noqa: E731
        shrunk = shrink_program(source, still_fails)
        forms = read_all(shrunk)  # must not raise
        assert forms

    def test_deterministic(self):
        source = generate_program(42, 1).source
        still_fails = lambda s: "mainf" in s  # noqa: E731
        assert shrink_program(source, still_fails) == shrink_program(
            source, still_fails
        )

    def test_local_minimum_is_fixpoint(self):
        source = generate_program(42, 2).source
        still_fails = lambda s: "h0" in s  # noqa: E731
        shrunk = shrink_program(source, still_fails)
        assert shrink_program(shrunk, still_fails) == shrunk

    def test_never_returns_failing_empty(self):
        # A predicate nothing satisfies leaves the program untouched.
        source = "(define (f x) x)\n(f 1)"
        assert shrink_program(source, lambda s: False) == source

    def test_define_heads_survive(self):
        # Head/keyword positions are protected: a shrunk define is still
        # a define with a signature.
        source = "(define (keepme a b c) (+ a (+ b (+ c wanted))))\n(keepme 1 2 3)"
        shrunk = shrink_program(source, lambda s: "wanted" in s)
        assert "(define (keepme" in shrunk
        assert "wanted" in shrunk

    def test_candidates_never_grow(self):
        # Every candidate the shrinker proposes is no larger than the
        # current program (atom-for-atom swaps keep the size but strictly
        # decrease rank — the termination argument is lexicographic).
        source = generate_program(42, 3).source
        current = [program_size(source)]

        def still_fails(candidate: str) -> bool:
            assert program_size(candidate) <= current[0]
            ok = "mainf" in candidate
            if ok:
                current[0] = program_size(candidate)
            return ok

        shrunk = shrink_program(source, still_fails)
        assert program_size(shrunk) == current[0]
