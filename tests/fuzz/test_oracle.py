"""Oracle tests: clean programs pass the whole matrix, broken compilers
are caught, and an injected shuffle bug is found and shrunk small."""

import pytest

import repro.core.shuffle as shuffle
from repro.config import CompilerConfig, full_matrix
from repro.fuzz.genprog import generate_program
from repro.fuzz.oracle import InvalidProgram, check_program, interp_reference
from repro.fuzz.shrink import program_size, shrink_program

TAK = (
    "(define (tak x y z)\n"
    "  (if (not (< y x)) z\n"
    "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))\n"
    "(tak 6 3 1)\n"
)


class TestCleanPrograms:
    def test_tak_whole_matrix(self):
        result = check_program(TAK)
        assert result.ok, [d.describe() for d in result.divergences]
        assert result.configs_checked == len(full_matrix())
        assert result.expected_value == "3"

    def test_generated_program_whole_matrix(self):
        result = check_program(generate_program(42, 0).source)
        assert result.ok, [d.describe() for d in result.divergences]

    def test_procedure_values_are_not_divergences(self):
        # Interpreter and VM print closures differently; that is a
        # representation detail, not a semantic divergence.
        result = check_program("(define (mainf a) (lambda (k) 0))\n(mainf 0)")
        assert result.ok, [d.describe() for d in result.divergences]


class TestRegressions:
    def test_late_lazy_callee_duplicate_save(self):
        # Found by this fuzzer: with save=late + restore=lazy + callee
        # convention, redundant-save elimination was skipped, so a
        # duplicate lazy-placed save of cp stored a clobbered register
        # (restoreplace.place_restores).  Minimized reproducer.
        source = (
            "(define (f x) 0)\n"
            "(define (mainf a) (- (if (f 0) (f 0) #f) (f 0)))\n"
            "(mainf 0)\n"
        )
        result = check_program(source)
        assert result.ok, [d.describe() for d in result.divergences]

    def test_callee_scratch_clobber(self):
        # Found by this fuzzer: the code generator's scratch pool
        # included the t registers, which are callee-save under the
        # callee convention — a scratch write inside a callee clobbered
        # the caller's variable without any callee region protecting it
        # (codegen._CodeGenerator.__init__).  t63 lives in t0 across
        # the inner call; the callee used t0 for the (- -18 0) temp.
        source = (
            "(define (mainf a b c)"
            " (let ((t63 5))"
            " (+ ((lambda (k) (if (and (not (< (- -18 0) 0))) 0 0)) 0) t63)))\n"
            "(mainf 0 0 0)\n"
        )
        result = check_program(source)
        assert result.ok, [d.describe() for d in result.divergences]

    def test_callee_shuffle_evict_clobber(self):
        # Found by this fuzzer: the shuffle planner's free-register list
        # offered callee-save t registers as eviction temporaries, so a
        # naive-shuffle eviction parked a closure in a register the
        # caller expected preserved (shuffle._free_registers).  The
        # 8-argument call forces stack arguments and evictions.
        source = (
            "(define (h1 fuel p1a p1b p1c p1d p1e p1f p1g) 0)\n"
            "(define (h2 fuel p2a p2b p2c p2d)"
            " ((lambda (k) (h1 0 0 0 0 0 p2d 0 0)) 0))\n"
            "(define (mainf a b c) (let ((t3 0)) (if (< (h2 0 0 0 0 0) 0) 0 t3)))\n"
            "(mainf 0 0 0)\n"
        )
        result = check_program(source)
        assert result.ok, [d.describe() for d in result.divergences]

    def test_greedy_direct_complex_vs_stack_arg(self):
        # Found by this fuzzer: the greedy planner's direct-complex
        # candidate check only consulted simple *register* operands,
        # but simple stack arguments evaluate after the direct
        # placement too — a stale variable they reference reloads
        # into (and so reads) the chosen register
        # (shuffle.plan_shuffle).  h1 takes 9 arguments so seed-b
        # becomes a stack argument evaluated after the direct (h2 ...)
        # placement.
        source = (
            "(define (h1 fuel p1a p1b p1c p1d p1e p1f p1g p1h) p1a)\n"
            "(define (h2 fuel p2a p2b) 0)\n"
            "(define (mainf seed-a seed-b seed-c)"
            " (h1 0 (h2 0 0 0) 0 0 0 (let ((s25 seed-b)) 0) 0 0 0))\n"
            "(mainf 0 1 0)\n"
        )
        result = check_program(source)
        assert result.ok, [d.describe() for d in result.divergences]

    def test_conduit_clobbers_nested_operand_read(self):
        # Found by this fuzzer: gen_primcall's dst-conduit check only
        # looked at top-level Ref siblings, so with scratch registers
        # tight it staged (+ p0b 0) through the destination register —
        # the home of p0c, which the *nested* (- 0 p0c) still had to
        # read (codegen.gen_primcall dst_conduit_ok).
        source = (
            "(define (h0 fuel p0a p0b p0c)"
            " (if (<= fuel 0) 0"
            " (+ 0 (- p0c (h0 (- fuel 1) 0 p0c (+ (+ p0b 0) (- 0 p0c)))))))\n"
            "(define (mainf seed-a seed-b seed-c) (h0 2 0 0 1))\n"
            "(mainf 0 0 0)\n"
        )
        result = check_program(source)
        assert result.ok, [d.describe() for d in result.divergences]
        assert result.expected_value == "2"

    def test_scratch_exhaustion_reaches_frame_temp_fallback(self):
        # Found by this fuzzer: with the whole scratch pool consumed
        # (two enclosing primcalls + naive-shuffle eviction
        # temporaries) and the dst conduit unsafe, operand staging
        # raised "scratch register pool exhausted" instead of routing
        # through rv into a frame temp (codegen.gen_primcall).
        source = (
            "(define (h0 fuel p0a p0b p0c)"
            " (+ 0 (- 0 (h0 0 0 p0a (+ (+ p0b 0) (- 0 p0c))))))\n"
            "(define (mainf seed-a seed-b seed-c) 0)\n"
            "(mainf 0 0 0)\n"
        )
        result = check_program(source)
        assert result.ok, [d.describe() for d in result.divergences]


class TestInvalidPrograms:
    def test_unbound_variable(self):
        with pytest.raises(InvalidProgram):
            check_program("(undefined-variable-xyz)")

    def test_unreadable(self):
        with pytest.raises(InvalidProgram):
            check_program("(+ 1 2")

    def test_interp_step_budget(self):
        with pytest.raises(InvalidProgram, match="reference interpreter failed"):
            check_program(
                "(define (loop n) (loop (+ n 1)))\n(loop 0)",
                interp_steps=10_000,
            )

    def test_interp_reference_value(self):
        value, output = interp_reference('(begin (display "hi") (+ 1 2))')
        assert value == "3"
        assert output == "hi"


def _buggy_greedy(plan, simple, spill_all):
    """_schedule_greedy with the cycle-break flipped: instead of evicting
    the victim into a temporary, place it directly — clobbering a
    register another operand still reads."""
    edges = shuffle.dependency_edges(simple)
    plan.had_cycle = shuffle._graph_cyclic(set(range(len(simple))), edges)
    remaining = list(range(len(simple)))
    while remaining:
        placed = None
        for j in remaining:
            if not any(i != j and (i, j) in edges for i in remaining):
                placed = j
                break
        if placed is None:
            placed = max(remaining)  # the injected bug
        plan.steps.append(("direct", simple[placed]))
        remaining.remove(placed)


class TestInjectedBug:
    def test_shuffle_bug_caught_and_shrunk(self, monkeypatch):
        monkeypatch.setattr(shuffle, "_schedule_greedy", _buggy_greedy)
        configs = [
            CompilerConfig(num_arg_regs=2, num_temp_regs=1),
            CompilerConfig(),
        ]

        def still_fails(candidate: str) -> bool:
            try:
                return not check_program(candidate, configs=configs).ok
            except InvalidProgram:
                return False

        failing = None
        for index in range(30):
            source = generate_program(42, index).source
            if still_fails(source):
                failing = source
                break
        assert failing is not None, "injected shuffle bug went undetected"

        shrunk = shrink_program(failing, still_fails)
        assert still_fails(shrunk)
        # The bound tracks the generator stream: a cyclic self-call
        # needs its full parameter list to keep the cycle alive, so the
        # local minimum is ~30 nodes for a 5-parameter helper.
        assert program_size(shrunk) <= 30

    def test_matrix_clean_again_without_injection(self):
        # The same seeds pass once the injection is gone (monkeypatch
        # reverted): the failure above really was the injected bug.
        configs = [CompilerConfig(num_arg_regs=2, num_temp_regs=1)]
        result = check_program(generate_program(42, 0).source, configs=configs)
        assert result.ok, [d.describe() for d in result.divergences]
