"""Corpus round-trip and malformed-file diagnostics."""

import pytest

from repro.config import CompilerConfig
from repro.errors import FuzzError
from repro.fuzz.corpus import MAGIC, CorpusEntry, load_entry, save_entry


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path):
        config = CompilerConfig(
            save_strategy="late",
            restore_strategy="lazy",
            save_convention="callee",
            num_arg_regs=2,
            num_temp_regs=1,
        )
        entry = CorpusEntry(
            source="(define (f x) x)\n(f 3)",
            kind="value",
            seed=42,
            iteration=17,
            config=config,
            detail="expected '3', got '0'",
            extra={"note": "hand-written"},
        )
        path = save_entry(entry, str(tmp_path))
        loaded = load_entry(path)
        assert loaded.source == entry.source
        assert loaded.kind == "value"
        assert loaded.seed == 42
        assert loaded.iteration == 17
        assert loaded.config is not None
        assert loaded.config.summary() == config.summary()
        assert loaded.detail == entry.detail
        assert loaded.extra == {"note": "hand-written"}

    def test_minimal_round_trip(self, tmp_path):
        entry = CorpusEntry(source="(+ 1 2)")
        loaded = load_entry(save_entry(entry, str(tmp_path)))
        assert loaded.source == "(+ 1 2)"
        assert loaded.seed is None
        assert loaded.config is None

    def test_file_name_is_stable_and_distinct(self):
        a = CorpusEntry(source="(+ 1 2)", kind="value", seed=1, iteration=2)
        b = CorpusEntry(source="(+ 1 3)", kind="value", seed=1, iteration=2)
        assert a.file_name() == a.file_name()
        assert a.file_name() != b.file_name()
        assert a.file_name().endswith(".sexp")


class TestMalformed:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FuzzError, match="cannot read corpus file"):
            load_entry(str(tmp_path / "nope.sexp"))

    def test_missing_magic(self, tmp_path):
        path = tmp_path / "x.sexp"
        path.write_text("(+ 1 2)\n")
        with pytest.raises(FuzzError, match="not a repro-fuzz corpus file"):
            load_entry(str(path))

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "x.sexp"
        path.write_text(f"{MAGIC}\n;; no-colon-here\n(+ 1 2)\n")
        with pytest.raises(FuzzError, match="malformed header"):
            load_entry(str(path))

    def test_bad_seed(self, tmp_path):
        path = tmp_path / "x.sexp"
        path.write_text(f"{MAGIC}\n;; seed: banana\n(+ 1 2)\n")
        with pytest.raises(FuzzError, match="not an integer"):
            load_entry(str(path))

    def test_bad_config_json(self, tmp_path):
        path = tmp_path / "x.sexp"
        path.write_text(f"{MAGIC}\n;; config: {{not json\n(+ 1 2)\n")
        with pytest.raises(FuzzError, match="bad config header"):
            load_entry(str(path))

    def test_empty_body(self, tmp_path):
        path = tmp_path / "x.sexp"
        path.write_text(f"{MAGIC}\n;; kind: manual\n")
        with pytest.raises(FuzzError, match="no program body"):
            load_entry(str(path))

    def test_unreadable_body(self, tmp_path):
        path = tmp_path / "x.sexp"
        path.write_text(f"{MAGIC}\n(+ 1 2\n")
        with pytest.raises(FuzzError, match="unreadable program body"):
            load_entry(str(path))
