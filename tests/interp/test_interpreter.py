"""Reference interpreter semantics."""

import pytest

from repro.interp.interpreter import Interpreter
from repro.runtime.values import SchemeError
from repro.sexp.datum import Symbol
from repro.sexp.writer import write_datum


def run(src, prelude=False):
    return Interpreter().run_source(src, prelude=prelude)


class TestBasics:
    def test_constant(self):
        assert run("42") == 42

    def test_arith(self):
        assert run("(+ 1 (* 2 3))") == 7

    def test_if(self):
        assert run("(if (< 1 2) 'yes 'no)") is Symbol("yes")

    def test_only_false_is_false(self):
        assert run("(if 0 'a 'b)") is Symbol("a")
        assert run("(if '() 'a 'b)") is Symbol("a")
        assert run("(if #f 'a 'b)") is Symbol("b")

    def test_let(self):
        assert run("(let ((x 2) (y 3)) (* x y))") == 6

    def test_let_is_parallel(self):
        assert run("(let ((x 1)) (let ((x 2) (y x)) y))") == 1

    def test_let_star(self):
        assert run("(let* ((x 1) (y (+ x 1))) y)") == 2

    def test_begin(self):
        assert run("(let ((x 1)) (begin 9 x))") == 1

    def test_multiple_top_level_forms(self):
        assert run("1 2 3") == 3


class TestProcedures:
    def test_lambda_application(self):
        assert run("((lambda (x y) (- x y)) 10 4)") == 6

    def test_closure_capture(self):
        assert run("(((lambda (a) (lambda (b) (+ a b))) 1) 2)") == 3

    def test_arity_error(self):
        with pytest.raises(SchemeError):
            run("((lambda (x) x) 1 2)")

    def test_apply_non_procedure(self):
        with pytest.raises(SchemeError):
            run("(5 6)")

    def test_recursion(self):
        assert run("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 6)") == 720

    def test_mutual_recursion(self):
        src = """
        (define (e? n) (if (zero? n) #t (o? (- n 1))))
        (define (o? n) (if (zero? n) #f (e? (- n 1))))
        (o? 9)
        """
        assert run(src) is True

    def test_deep_tail_loop_is_iterative(self):
        assert run("(let loop ((i 0)) (if (= i 200000) i (loop (+ i 1))))") == 200000

    def test_named_let(self):
        assert run("(let sum ((i 0) (acc 0)) (if (= i 5) acc (sum (+ i 1) (+ acc i))))") == 10

    def test_do_loop(self):
        assert run("(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 5) s))") == 10


class TestStateAndData:
    def test_set(self):
        assert run("(let ((x 1)) (set! x 99) x)") == 99

    def test_closure_shares_state(self):
        src = """
        (define (make-counter)
          (let ((n 0))
            (lambda (ignored) (set! n (+ n 1)) n)))
        (define c (make-counter))
        (c 0) (c 0) (c 0)
        """
        assert run(src) == 3

    def test_quote(self):
        assert write_datum(run("'(1 (2) 3)")) == "(1 (2) 3)"

    def test_quasiquote(self):
        assert write_datum(run("`(1 ,(+ 1 1) ,@(list 3 4))", prelude=False)) == "(1 2 3 4)"

    def test_vector_ops(self):
        assert run("(let ((v (make-vector 3 0))) (vector-set! v 1 7) (vector-ref v 1))") == 7

    def test_prelude_map(self):
        assert write_datum(run("(map (lambda (x) (* x 2)) '(1 2 3))", prelude=True)) == "(2 4 6)"

    def test_prelude_fold(self):
        assert run("(fold-left + 0 (iota 5))", prelude=True) == 10


class TestCallCC:
    def test_escape(self):
        assert run("(call/cc (lambda (k) (+ 1 (k 42))))") == 42

    def test_no_escape(self):
        assert run("(call/cc (lambda (k) 7))") == 7

    def test_escape_through_frames(self):
        src = """
        (define (find-first pred ls fail)
          (cond ((null? ls) (fail 'none))
                ((pred (car ls)) (car ls))
                (else (find-first pred (cdr ls) fail))))
        (call/cc (lambda (k) (find-first (lambda (x) (> x 10)) '(1 2 3) k)))
        """
        assert run(src) is Symbol("none")

    def test_nested_callcc(self):
        assert run("(+ 1 (call/cc (lambda (k1) (+ 10 (call/cc (lambda (k2) (k1 100)))))))") == 101


class TestErrors:
    def test_error_primitive(self):
        with pytest.raises(SchemeError, match="boom"):
            run('(error "boom" 1)')

    def test_car_of_number(self):
        with pytest.raises(SchemeError):
            run("(car 5)")

    def test_output_collected(self):
        interp = Interpreter()
        interp.run_source('(begin (display "a") (display 1) (newline) 0)', prelude=False)
        assert interp.port.contents() == "a1\n"
