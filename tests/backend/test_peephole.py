"""Peephole optimizer tests."""

import pytest

from repro.astnodes import CodeObject, Quote
from repro.backend.peephole import peephole_code
from repro.config import CompilerConfig
from repro.pipeline import compile_source, run_source
from repro.sexp.writer import write_datum


def make_code(instrs):
    code = CodeObject("t", [], [], Quote(False))
    code.instructions = [list(i) for i in instrs]
    return code


class TestRewrites:
    def test_jump_to_next_removed(self):
        code = make_code([
            ("li", 2, 1),
            ("jmp", 2),
            ("li", 2, 2),
            ("return",),
        ])
        removed = peephole_code(code)
        assert removed == 1
        assert [i[0] for i in code.instructions] == ["li", "li", "return"]

    def test_jump_chain_threaded(self):
        code = make_code([
            ("brf", 2, 2, None),
            ("return",),
            ("jmp", 4),
            ("return",),
            ("li", 2, 9),
            ("return",),
        ])
        peephole_code(code)
        brf = code.instructions[0]
        assert brf[0] == "brf"
        # threaded through the jmp at 2 to its target
        target = brf[2]
        assert code.instructions[target][0] == "li"

    def test_jump_to_return_becomes_return(self):
        code = make_code([
            ("jmp", 2),
            ("li", 2, 0),
            ("return",),
        ])
        peephole_code(code)
        assert code.instructions[0] == ["return"]

    def test_targets_renumbered_after_deletion(self):
        code = make_code([
            ("brf", 2, 3, None),   # over the dead jmp
            ("jmp", 2),            # dead: jumps to next
            ("li", 2, 1),
            ("li", 2, 2),
            ("return",),
        ])
        peephole_code(code)
        ops = [i[0] for i in code.instructions]
        assert "jmp" not in ops
        brf = code.instructions[0]
        assert code.instructions[brf[2]][2] == 2  # still lands on (li 2 2)

    def test_idempotent(self):
        code = make_code([
            ("li", 2, 1),
            ("return",),
        ])
        assert peephole_code(code) == 0
        assert peephole_code(code) == 0


class TestEndToEnd:
    # Non-tail nested conditionals produce join-point jump chains
    # (tail-position conditionals are already jump-free).
    SRC = """
    (define (classify n)
      (+ 100 (if (< n 0)
                 (if (< n -10) 1 2)
                 (if (> n 10) (if (> n 100) 3 4) 5))))
    (list (classify -20) (classify -1) (classify 5) (classify 50) (classify 500))
    """

    def test_semantics_preserved(self):
        on = run_source(self.SRC, CompilerConfig(peephole=True), prelude=False, debug=True)
        off = run_source(self.SRC, CompilerConfig(peephole=False), prelude=False, debug=True)
        assert write_datum(on.value) == write_datum(off.value)

    def test_no_jump_chains_remain(self):
        on = compile_source(self.SRC, CompilerConfig(peephole=True), prelude=False)
        for code in on.codes:
            for instr in code.instructions:
                if instr[0] == "jmp":
                    assert code.instructions[instr[1]][0] != "jmp"
                    assert code.instructions[instr[1]][0] != "return"
                if instr[0] == "brf":
                    assert code.instructions[instr[2]][0] != "jmp"

    def test_fewer_executed_instructions(self):
        on = run_source(self.SRC, CompilerConfig(peephole=True), prelude=False)
        off = run_source(self.SRC, CompilerConfig(peephole=False), prelude=False)
        assert on.counters.instructions < off.counters.instructions
        assert on.counters.cycles < off.counters.cycles

    @pytest.mark.parametrize("name", ["tak", "deriv", "fread"])
    def test_benchmarks_agree(self, name):
        from repro.benchsuite.runner import run_benchmark

        run_benchmark(name, CompilerConfig(peephole=False), debug=True)
