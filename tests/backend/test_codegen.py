"""Code generation tests: instruction-level properties."""


from repro.backend.isa import OPCODES, format_code
from repro.config import CompilerConfig
from repro.pipeline import compile_source, run_source


def compiled(text, **cfg):
    return compile_source(text, CompilerConfig(**cfg), prelude=False)


def code_named(prog, name):
    return next(c for c in prog.codes if c.name == name)


def ops(code):
    return [i[0] for i in code.instructions]


class TestStructure:
    def test_every_instruction_is_known(self):
        prog = compiled("(define (f x) (+ x 1)) (f 1)")
        for code in prog.codes:
            for instr in code.instructions:
                assert instr[0] in OPCODES or instr[0] == "ld_out"

    def test_leaf_procedure_minimal(self):
        prog = compiled("(define (f x y) (+ x y)) (f 1 2)")
        f = code_named(prog, "f")
        assert ops(f) == ["prim", "return"]
        assert f.frame_size == 0

    def test_tail_recursion_is_a_jump(self):
        prog = compiled("(define (loop n) (if (zero? n) 0 (loop (- n 1)))) (loop 3)")
        loop = code_named(prog, "loop")
        assert "tailcall" in ops(loop)
        assert "call" not in ops(loop)

    def test_every_path_exits(self):
        prog = compiled("(define (f p) (if p 1 2)) (f #t)")
        f = code_named(prog, "f")
        assert ops(f).count("return") == 2

    def test_frame_size_covers_homes(self):
        prog = compiled(
            "(define (g n) n) (define (f x) (+ (g x) x)) (f 1)"
        )
        f = code_named(prog, "f")
        slots = [i[1] for i in f.instructions if i[0] == "st"]
        assert f.frame_size > max(slots)

    def test_disassembly_renders(self):
        prog = compiled("(define (f x) (+ x 1)) (f 1)")
        text = format_code(code_named(prog, "f"), [r.name for r in prog.regfile.all])
        assert "prim" in text and "return" in text


class TestSaveRestoreEmission:
    SRC = "(define (g n) n) (define (f x) (+ (g x) x)) (f 1)"

    def test_saves_before_call(self):
        prog = compiled(self.SRC)
        f = code_named(prog, "f")
        body_ops = ops(f)
        first_save = body_ops.index("st")
        call_at = body_ops.index("call")
        assert first_save < call_at

    def test_save_kinds_tagged(self):
        prog = compiled(self.SRC)
        f = code_named(prog, "f")
        kinds = {i[3] for i in f.instructions if i[0] == "st"}
        assert "save" in kinds

    def test_restores_after_call(self):
        prog = compiled(self.SRC)
        f = code_named(prog, "f")
        call_at = ops(f).index("call")
        after = f.instructions[call_at + 1 :]
        restore_ops = [i for i in after if i[0] == "ld" and i[3] == "restore"]
        assert restore_ops  # x and ret reloaded eagerly

    def test_lazy_mode_defers_restores(self):
        eager = compiled(self.SRC)
        lazy = compiled(self.SRC, restore_strategy="lazy")
        f_eager = code_named(eager, "f")
        f_lazy = code_named(lazy, "f")
        call_e = ops(f_eager).index("call")
        call_l = ops(f_lazy).index("call")
        # eager restores immediately follow the call; lazy's first
        # post-call instruction is not necessarily a restore
        assert f_eager.instructions[call_e + 1][0] == "ld"


class TestBaselineCode:
    def test_params_read_from_stack(self):
        prog = compiled("(define (f x y) (+ x y)) (f 1 2)", num_arg_regs=0, num_temp_regs=0)
        f = code_named(prog, "f")
        loads = [i for i in f.instructions if i[0] == "ld" and i[3] == "arg"]
        assert len(loads) == 2

    def test_outgoing_args_stored(self):
        prog = compiled("(define (f x) x) (+ 0 (f 1))", num_arg_regs=0, num_temp_regs=0)
        main = code_named(prog, "main")
        outs = [i for i in main.instructions if i[0] == "st_out"]
        assert outs


class TestCalleeSaveCode:
    SRC = """
    (define (tak x y z)
      (if (not (< y x)) z
          (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
    (tak 4 2 1)
    """

    def test_early_prologue_saves(self):
        prog = compiled(self.SRC, save_convention="callee", save_strategy="early")
        tak = code_named(prog, "tak")
        # first instructions save callee registers
        assert tak.instructions[0][0] == "st"
        assert tak.instructions[0][3] == "save"

    def test_lazy_leaf_path_save_free(self):
        prog = compiled(self.SRC, save_convention="callee", save_strategy="lazy")
        tak = code_named(prog, "tak")
        body_ops = ops(tak)
        # the entry block up to the first branch contains no saves
        first_branch = body_ops.index("brf")
        assert "st" not in body_ops[:first_branch]

    def test_exit_restores_before_tailcall(self):
        prog = compiled(self.SRC, save_convention="callee", save_strategy="lazy")
        tak = code_named(prog, "tak")
        instrs = tak.instructions
        tail_at = ops(tak).index("tailcall")
        before = [i for i in instrs[:tail_at] if i[0] == "ld" and i[3] == "restore"]
        assert before  # ret (and any used t-regs) reloaded before the jump


class TestCallCCCode:
    def test_callcc_instruction(self):
        prog = compiled("(call/cc (lambda (k) (k 1)))")
        main = code_named(prog, "main")
        assert "callcc" in ops(main)

    def test_callcc_runs(self):
        r = run_source("(+ 1 (call/cc (lambda (k) (k 41))))", prelude=False, debug=True)
        assert r.value == 42
