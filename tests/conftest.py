"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.config import CompilerConfig
from repro.interp.interpreter import Interpreter
from repro.pipeline import run_source
from repro.sexp.writer import write_datum


def interp_value(source: str, prelude: bool = True):
    """Reference-interpreter value of *source*."""
    return Interpreter().run_source(source, prelude=prelude)


def compiled_value(source: str, config=None, prelude: bool = True):
    """Compiled-and-executed value of *source* (debug VM checks on)."""
    return run_source(source, config or CompilerConfig(), prelude=prelude, debug=True).value


def assert_compiles_like_interpreter(source: str, config=None, prelude: bool = True):
    """The central differential assertion: compiler == interpreter."""
    expected = write_datum(interp_value(source, prelude=prelude))
    got = write_datum(compiled_value(source, config, prelude=prelude))
    assert got == expected, f"compiled {got} != interpreted {expected} for {source!r}"


# A representative matrix of allocator configurations.
CONFIG_MATRIX = [
    pytest.param(CompilerConfig(), id="paper-default"),
    pytest.param(CompilerConfig.baseline(), id="baseline"),
    pytest.param(CompilerConfig(save_strategy="early"), id="early-save"),
    pytest.param(CompilerConfig(save_strategy="late"), id="late-save"),
    pytest.param(CompilerConfig(save_strategy="lazy-simple"), id="lazy-simple"),
    pytest.param(CompilerConfig(restore_strategy="lazy"), id="lazy-restore"),
    pytest.param(CompilerConfig(num_arg_regs=2, num_temp_regs=1), id="small-regs"),
    pytest.param(CompilerConfig(num_arg_regs=1, num_temp_regs=0), id="tiny-regs"),
    pytest.param(CompilerConfig(shuffle_strategy="naive"), id="naive-shuffle"),
    pytest.param(CompilerConfig(shuffle_strategy="spill-all"), id="spill-all"),
    pytest.param(CompilerConfig(shuffle_strategy="optimal"), id="optimal-shuffle"),
    pytest.param(
        CompilerConfig(save_convention="callee", save_strategy="early"),
        id="callee-early",
    ),
    pytest.param(
        CompilerConfig(save_convention="callee", save_strategy="lazy"),
        id="callee-lazy",
    ),
    pytest.param(
        CompilerConfig(
            save_convention="callee", save_strategy="lazy", restore_strategy="lazy"
        ),
        id="callee-lazy-lazyrestore",
    ),
]
