"""The permopt shuffle strategy: Buchwald–Mohr–Rutter-style
decomposition of the register-transfer graph into copies plus
permutations.

Plan-level invariants: pure register cycles become ``permute`` steps
(no temporary, no eviction); everything else — acyclic transfers and
cycles the permutation instructions cannot express — falls back to
exactly the greedy schedule, so permopt is never worse than greedy.
"""

from repro.astnodes import Call, walk
from repro.config import CompilerConfig
from repro.fuzz.genprog import generate_program
from repro.pipeline import compile_source, run_compiled, run_source
from repro.sexp.writer import write_datum

SWAP_SRC = (
    "(define (f a b) (- a b))"
    "(define (g x y) (f y x))"
    "(g 10 4)"
)

ROTATE_SRC = (
    "(define (f a b c) (cons a (cons b (cons c '()))))"
    "(define (g x y z) (f z x y))"
    "(g 1 2 3)"
)

FIVE_CYCLE_SRC = (
    "(define (f a b c d e)"
    "  (+ a (+ (* 2 b) (+ (* 3 c) (+ (* 5 d) (* 7 e))))))"
    "(define (g a b c d e) (f b c d e a))"
    "(g 1 2 3 4 5)"
)

ACYCLIC_SRC = (
    "(define (f a b c) (+ a (+ b c)))"
    "(define (g x y z) (f (+ x y) (+ y 1) (+ y z)))"
    "(g 1 2 3)"
)


def plans_for(text, name, **cfg):
    prog = compile_source(text, CompilerConfig(**cfg), prelude=False)
    code = next(c for c in prog.codes if c.name == name)
    return [
        n.shuffle_plan for n in walk(code.body) if isinstance(n, Call)
    ]


def instrs_for(text, name, **cfg):
    prog = compile_source(text, CompilerConfig(**cfg), prelude=False)
    code = next(c for c in prog.codes if c.name == name)
    return code.instructions


class TestPureCycles:
    def test_swap_cycle_has_no_eviction(self):
        plan = plans_for(SWAP_SRC, "g", shuffle_strategy="permopt")[0]
        assert plan.had_cycle
        assert plan.evictions == 0
        assert plan.permutations == 1
        assert any(kind == "permute" for kind, _ in plan.steps)

    def test_swap_cycle_emits_swap_instruction(self):
        ops = [i[0] for i in instrs_for(SWAP_SRC, "g", shuffle_strategy="permopt")]
        assert "swap" in ops
        greedy_ops = [i[0] for i in instrs_for(SWAP_SRC, "g")]
        assert "swap" not in greedy_ops

    def test_swap_value_correct(self):
        r = run_source(
            SWAP_SRC,
            CompilerConfig(shuffle_strategy="permopt"),
            prelude=False,
            debug=True,
        )
        assert r.value == -6

    def test_rotation_emits_permi(self):
        plan = plans_for(ROTATE_SRC, "g", shuffle_strategy="permopt")[0]
        assert plan.evictions == 0
        assert plan.permutations == 1
        ops = [
            i[0] for i in instrs_for(ROTATE_SRC, "g", shuffle_strategy="permopt")
        ]
        assert "permi" in ops

    def test_rotation_value_correct(self):
        r = run_source(
            ROTATE_SRC,
            CompilerConfig(shuffle_strategy="permopt"),
            prelude=False,
            debug=True,
        )
        assert write_datum(r.value) == "(3 1 2)"

    def test_long_cycle_is_chunked(self):
        """A 5-cycle exceeds PERMI_MAX, so codegen emits overlapping
        rotations (permi + swap) that compose to the full permutation."""
        plan = plans_for(FIVE_CYCLE_SRC, "g", shuffle_strategy="permopt")[0]
        assert plan.had_cycle
        assert plan.evictions == 0
        instrs = instrs_for(FIVE_CYCLE_SRC, "g", shuffle_strategy="permopt")
        ops = [i[0] for i in instrs]
        assert "permi" in ops and "swap" in ops
        for strategy in ("greedy", "permopt"):
            r = run_source(
                FIVE_CYCLE_SRC,
                CompilerConfig(shuffle_strategy=strategy),
                prelude=False,
                debug=True,
            )
            # f(b c d e a) with (a..e) = (1..5):
            # 2 + 2*3 + 3*4 + 5*5 + 7*1 = 52
            assert r.value == 52


class TestGreedyFallback:
    def test_acyclic_plan_matches_greedy(self):
        greedy = plans_for(ACYCLIC_SRC, "g")[0]
        permopt = plans_for(ACYCLIC_SRC, "g", shuffle_strategy="permopt")[0]
        assert permopt.evictions == greedy.evictions == 0
        assert permopt.permutations == 0
        assert [k for k, _ in permopt.steps] == [k for k, _ in greedy.steps]

    def test_never_more_evictions_than_greedy(self):
        for src, proc in (
            (SWAP_SRC, "g"),
            (ROTATE_SRC, "g"),
            (FIVE_CYCLE_SRC, "g"),
            (ACYCLIC_SRC, "g"),
        ):
            for regs in (2, 3, 6):
                kw = {"num_arg_regs": regs, "num_temp_regs": regs}
                greedy = plans_for(src, proc, **kw)
                permopt = plans_for(src, proc, shuffle_strategy="permopt", **kw)
                assert len(greedy) == len(permopt)
                for g, p in zip(greedy, permopt):
                    assert p.evictions <= g.evictions


class TestDifferentialEquivalence:
    CONFIGS = (
        {},
        {"num_arg_regs": 1, "num_temp_regs": 2},
        {"num_arg_regs": 2, "num_temp_regs": 1},
        {"save_strategy": "late"},
        {"restore_strategy": "lazy"},
        {"save_convention": "callee"},
        {"allocator": "linearscan"},
        {"allocator": "graphcolor"},
    )

    def _signature(self, compiled, vm_fast):
        result = run_compiled(compiled, vm_fast=vm_fast)
        return write_datum(result.value), result.output

    def test_fuzz_programs_agree_across_strategies_and_loops(self):
        """permopt must be observably identical to greedy/optimal on
        value and output for every config point, and bit-identical to
        itself across the two VM loops."""
        for index in range(12):
            program = generate_program(9001, index)
            for kw in self.CONFIGS:
                runs = {}
                for strategy in ("greedy", "optimal", "permopt"):
                    cfg = CompilerConfig(shuffle_strategy=strategy, **kw)
                    compiled = compile_source(program.source, cfg)
                    slow = run_compiled(compiled, vm_fast=False)
                    fast = run_compiled(compiled, vm_fast=True)
                    assert (
                        slow.counters.as_dict() == fast.counters.as_dict()
                    ), (index, kw, strategy)
                    runs[strategy] = (
                        write_datum(slow.value),
                        slow.output,
                    )
                assert runs["greedy"] == runs["optimal"] == runs["permopt"], (
                    index,
                    kw,
                )

    def test_permopt_cycles_never_exceed_greedy_on_rotation(self):
        compiled_g = compile_source(
            FIVE_CYCLE_SRC, CompilerConfig(), prelude=False
        )
        compiled_p = compile_source(
            FIVE_CYCLE_SRC,
            CompilerConfig(shuffle_strategy="permopt"),
            prelude=False,
        )
        greedy = run_compiled(compiled_g)
        permopt = run_compiled(compiled_p)
        assert permopt.value == greedy.value
        assert permopt.counters.cycles <= greedy.counters.cycles
