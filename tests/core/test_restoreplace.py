"""Pass 2: redundant-save elimination and restore placement (§3.2)."""


from repro.astnodes import Call, Save, walk
from repro.config import CompilerConfig
from repro.pipeline import compile_source, run_source


def compiled(text, **cfg):
    return compile_source(text, CompilerConfig(**cfg), prelude=False)


def code_named(prog, name):
    return next(c for c in prog.codes if c.name == name)


def non_tail_calls(code):
    return [n for n in walk(code.body) if isinstance(n, Call) and not n.tail]


class TestRedundantSaveElimination:
    def test_paper_3_2_example_shape(self):
        """§3.2: (seq (if (if x call false) y call) x) keeps only the
        first save of x; the inner saves shrink."""
        src = (
            "(define (g n) n)"
            "(define (f x y)"
            "  (+ 1 (if (if x (if (g x) #t #f) #f) y (+ 0 (g x)))))"
            "(f 1 2)"
        )
        prog = compiled(src)
        f = code_named(prog, "f")
        saves = [n for n in walk(f.body) if isinstance(n, Save)]
        all_saved = [v for s in saves for v in s.vars]
        # x must be saved exactly once across the whole body
        assert sum(1 for v in all_saved if v.name == "x") == 1

    def test_sequential_calls_save_once(self):
        src = (
            "(define (g n) n)"
            "(define (f x) (+ (g x) (+ (g x) x)))"
            "(f 1)"
        )
        prog = compiled(src)
        f = code_named(prog, "f")
        saves = [n for n in walk(f.body) if isinstance(n, Save)]
        all_saved = [v.name for s in saves for v in s.vars]
        assert all_saved.count("x") == 1
        assert all_saved.count("%ret") == 1

    def test_late_strategy_keeps_duplicates(self):
        src = (
            "(define (g n) n)"
            "(define (f x) (+ (g x) (+ (g x) x)))"
            "(f 1)"
        )
        prog = compiled(src, save_strategy="late")
        f = code_named(prog, "f")
        saves = [n for n in walk(f.body) if isinstance(n, Save)]
        all_saved = [v.name for s in saves for v in s.vars]
        assert all_saved.count("x") == 2  # the whole point of "late"

    def test_branch_saves_not_merged_across_paths(self):
        # saves on one branch must not suppress the other branch's
        src = (
            "(define (g n) n)"
            "(define (f x p) (+ x (if p (g 1) 0)))"
            "(f 1 #t)"
        )
        prog = compiled(src)
        result = run_source(src, CompilerConfig(), prelude=False, debug=True)
        assert result.value == 2


class TestEagerRestores:
    def test_restore_annotation_present(self):
        src = (
            "(define (g n) n)"
            "(define (f x) (+ (g x) x))"
            "(f 1)"
        )
        prog = compiled(src)
        f = code_named(prog, "f")
        call = non_tail_calls(f)[0]
        names = {v.name for v in call.restores}
        assert "x" in names
        assert "%ret" in names  # f returns right after

    def test_no_restore_for_dead_variable(self):
        src = (
            "(define (g n) n)"
            "(define (f x) (+ (g x) 1))"
            "(f 1)"
        )
        prog = compiled(src)
        f = code_named(prog, "f")
        call = non_tail_calls(f)[0]
        names = {v.name for v in call.restores}
        assert "x" not in names

    def test_restore_only_until_next_call(self):
        # y is referenced only after the second call: the first call
        # must not restore it (possibly-referenced analysis).
        src = (
            "(define (g n) n)"
            "(define (f x y) (+ (g x) (+ (g x) y)))"
            "(f 1 2)"
        )
        prog = compiled(src)
        f = code_named(prog, "f")
        calls = non_tail_calls(f)
        restore_sets = [{v.name for v in c.restores} for c in calls]
        # exactly one of the calls restores y (the later one)
        assert sum(1 for s in restore_sets if "y" in s) == 1

    def test_tail_call_has_no_restores(self):
        src = "(define (f x) (f x)) 1"
        prog = compiled(src)
        f = code_named(prog, "f")
        tail = [n for n in walk(f.body) if isinstance(n, Call) and n.tail]
        assert tail and tail[0].restores == []


class TestFigure2Behaviour:
    """The three §2.2 control-flow shapes: eager restores more often,
    lazy restores only at uses (and region exits)."""

    SRC = (
        "(define (g n) n)"
        "(define (f x p)"
        "  (begin (if p (+ (g 1) 1) 2) (+ x 1)))"  # Figure 2c shape
        "(f 10 #t)"
    )

    def test_both_strategies_agree_on_value(self):
        for strategy in ("eager", "lazy"):
            r = run_source(
                self.SRC,
                CompilerConfig(restore_strategy=strategy),
                prelude=False,
                debug=True,
            )
            assert r.value == 11

    def test_lazy_executes_no_more_restores_than_eager(self):
        eager = run_source(
            self.SRC, CompilerConfig(restore_strategy="eager"), prelude=False
        )
        lazy = run_source(
            self.SRC, CompilerConfig(restore_strategy="lazy"), prelude=False
        )
        assert lazy.counters.restores <= eager.counters.restores

    def test_eager_join_with_unbalanced_branches(self):
        # reference after a join where only one branch called
        src = (
            "(define (g n) n)"
            "(define (f x p) (+ (if p (g x) 0) x))"
            "(f 7 #t)"
        )
        for strategy in ("eager", "lazy"):
            for p in ("#t", "#f"):
                r = run_source(
                    src.replace("(f 7 #t)", f"(f 7 {p})"),
                    CompilerConfig(restore_strategy=strategy),
                    prelude=False,
                    debug=True,
                )
                assert r.value == (14 if p == "#t" else 7)


class TestLazyRestoreSemantics:
    def test_value_correct_under_lazy(self):
        src = (
            "(define (g n) (+ n 1))"
            "(define (f x y) (+ (g x) (+ y (g y))))"
            "(f 1 10)"
        )
        r = run_source(src, CompilerConfig(restore_strategy="lazy"), prelude=False, debug=True)
        assert r.value == 23

    def test_lazy_fewer_restores_on_branchy_code(self):
        src = (
            "(define (g n) n)"
            "(define (f x p) (begin (g x) (if p x 0)))"
            "(let loop ((i 0) (acc 0))"
            "  (if (= i 50) acc (loop (+ i 1) (+ acc (f i #f)))))"
        )
        eager = run_source(src, CompilerConfig(), prelude=False)
        lazy = run_source(src, CompilerConfig(restore_strategy="lazy"), prelude=False)
        assert lazy.counters.restores <= eager.counters.restores
        assert lazy.value == eager.value
