"""Greedy shuffling (§2.3, §3.1)."""


from repro.astnodes import Call, walk
from repro.config import CompilerConfig
from repro.core.shuffle import (
    minimum_evictions,
    _graph_cyclic,
)
from repro.pipeline import compile_source, run_source


def plans_for(text, name, **cfg):
    prog = compile_source(text, CompilerConfig(**cfg), prelude=False)
    code = next(c for c in prog.codes if c.name == name)
    return [
        n.shuffle_plan
        for n in walk(code.body)
        if isinstance(n, Call)
    ]


def step_kinds(plan):
    return [kind for kind, _ in plan.steps]


class TestSwap:
    """The paper's f(y, x) example: a two-register swap cycle."""

    SRC = (
        "(define (f a b) (- a b))"
        "(define (g x y) (f y x))"
        "(g 10 4)"
    )

    def test_cycle_detected(self):
        plans = plans_for(self.SRC, "g")
        tail_plan = plans[0]
        assert tail_plan.had_cycle

    def test_one_eviction_breaks_swap(self):
        plans = plans_for(self.SRC, "g")
        assert plans[0].evictions == 1

    def test_swap_executes_correctly(self):
        r = run_source(self.SRC, CompilerConfig(), prelude=False, debug=True)
        assert r.value == -6

    def test_swap_correct_under_every_strategy(self):
        for strategy in ("greedy", "naive", "spill-all", "optimal"):
            r = run_source(
                self.SRC,
                CompilerConfig(shuffle_strategy=strategy),
                prelude=False,
                debug=True,
            )
            assert r.value == -6

    def test_optimal_matches_greedy_on_swap(self):
        greedy = plans_for(self.SRC, "g")[0]
        optimal = plans_for(self.SRC, "g", shuffle_strategy="optimal")[0]
        assert greedy.evictions == optimal.evictions == 1

    def test_spill_all_spills_everything_in_cycle(self):
        plan = plans_for(self.SRC, "g", shuffle_strategy="spill-all")[0]
        assert plan.evictions >= 2


class TestPaperOrderingExample:
    """f(x+y, y+1, y+z): evaluating y+1 last avoids all temporaries."""

    SRC = (
        "(define (f a b c) (+ a (+ b c)))"
        "(define (g x y z) (f (+ x y) (+ y 1) (+ y z)))"
        "(g 1 2 3)"
    )

    def test_no_temporaries_needed(self):
        plan = plans_for(self.SRC, "g")[0]
        assert plan.evictions == 0
        assert not plan.had_cycle

    def test_correct_result(self):
        r = run_source(self.SRC, CompilerConfig(), prelude=False, debug=True)
        assert r.value == 11

    def test_naive_left_to_right_needs_a_temporary(self):
        plan = plans_for(self.SRC, "g", shuffle_strategy="naive")[0]
        assert plan.evictions >= 1


class TestRotation:
    """A three-cycle (rotate registers) needs exactly one temporary."""

    SRC = (
        "(define (f a b c) (cons a (cons b (cons c '()))))"
        "(define (g x y z) (f z x y))"
        "(g 1 2 3)"
    )

    def test_three_cycle_one_temp(self):
        plan = plans_for(self.SRC, "g")[0]
        assert plan.had_cycle
        assert plan.evictions == 1

    def test_rotation_correct(self):
        from repro.sexp.writer import write_datum

        r = run_source(self.SRC, CompilerConfig(), prelude=False, debug=True)
        assert write_datum(r.value) == "(3 1 2)"

    def test_optimal_agrees(self):
        plan = plans_for(self.SRC, "g", shuffle_strategy="optimal")[0]
        assert plan.evictions == 1


class TestComplexOperands:
    def test_complex_args_to_stack_temps(self):
        src = (
            "(define (h n) n)"
            "(define (f a b) (+ a b))"
            "(define (g x) (+ 0 (f (h x) (h (+ x 1)))))"
            "(g 1)"
        )
        plans = plans_for(src, "g")
        f_call = next(p for p in plans if len(p.items) == 3)
        kinds = step_kinds(f_call)
        # one complex operand goes straight to its register, the other
        # via a stack temporary
        assert kinds.count("temp-complex") == 1
        assert kinds.count("direct-complex") == 1
        assert kinds.count("flush-complex-temp") == 1

    def test_direct_complex_prefers_untouched_target(self):
        # "We pick as the last complex argument one on which none of
        # the simple arguments depend"
        src = (
            "(define (h n) n)"
            "(define (f a b) (+ a b))"
            "(define (g x) (+ 0 (f x (h x))))"
            "(g 1)"
        )
        plans = plans_for(src, "g")
        f_call = next(p for p in plans if len(p.items) == 3)
        direct = next(item for kind, item in f_call.steps if kind == "direct-complex")
        # the simple argument x (targeting a0) must not read a1
        assert direct.target.name == "a1"

    def test_correctness_with_many_complex_args(self):
        src = (
            "(define (h n) (+ n 1))"
            "(define (f a b c) (cons a (cons b (cons c '()))))"
            "(define (g x) (f (h x) (h (+ x 10)) (h (+ x 20))))"
            "(g 1)"
        )
        from repro.sexp.writer import write_datum

        r = run_source(src, CompilerConfig(), prelude=False, debug=True)
        assert write_datum(r.value) == "(2 12 22)"


class TestStackArguments:
    SRC = (
        "(define (f a b c d e u v w) (+ a (+ b (+ c (+ d (+ e (+ u (+ v w))))))))"
        "(define (g x) (f x 2 3 4 5 6 7 8))"
        "(g 1)"
    )

    def test_stack_args_in_plan(self):
        plans = plans_for(self.SRC, "g")
        plan = next(p for p in plans if len(p.items) == 9)
        kinds = step_kinds(plan)
        assert kinds.count("stack-arg") == 2  # args 7 and 8

    def test_correct_value(self):
        r = run_source(self.SRC, CompilerConfig(), prelude=False, debug=True)
        assert r.value == 36

    def test_correct_value_baseline(self):
        r = run_source(self.SRC, CompilerConfig.baseline(), prelude=False, debug=True)
        assert r.value == 36


class TestGraphAlgorithms:
    def test_acyclic_graph(self):
        assert not _graph_cyclic({0, 1, 2}, {(0, 1), (1, 2)})

    def test_cycle(self):
        assert _graph_cyclic({0, 1}, {(0, 1), (1, 0)})

    def test_minimum_evictions_acyclic(self):
        assert minimum_evictions(3, {(0, 1), (1, 2)}) == 0

    def test_minimum_evictions_simple_cycle(self):
        assert minimum_evictions(2, {(0, 1), (1, 0)}) == 1

    def test_minimum_evictions_two_disjoint_cycles(self):
        edges = {(0, 1), (1, 0), (2, 3), (3, 2)}
        assert minimum_evictions(4, edges) == 2

    def test_minimum_evictions_shared_vertex(self):
        # two cycles sharing node 0: evicting 0 breaks both
        edges = {(0, 1), (1, 0), (0, 2), (2, 0)}
        assert minimum_evictions(3, edges) == 1


class TestGreedyQuality:
    def test_greedy_never_worse_than_spill_all(self):
        src = (
            "(define (f a b c) (+ a (+ b c)))"
            "(define (g x y z) (f y z x))"
            "(g 1 2 3)"
        )
        greedy = plans_for(src, "g")[0]
        spill = plans_for(src, "g", shuffle_strategy="spill-all")[0]
        assert greedy.evictions <= spill.evictions

    def test_greedy_breaks_shared_cycles_with_one_temp(self):
        # shared-vertex double swap: a<->b and a<->c both involve a
        src = (
            "(define (f p q r) (+ p (+ q r)))"
            "(define (g a b c) (f b a a))"
            "(g 1 2 3)"
        )
        r = run_source(src, CompilerConfig(), prelude=False, debug=True)
        assert r.value == 4  # f(b, a, a) = 2 + 1 + 1

    def test_shared_cycle_value(self):
        src = (
            "(define (f p q r) (cons p (cons q r)))"
            "(define (g a b c) (f b c a))"
            "(g 1 2 3)"
        )
        from repro.sexp.writer import write_datum

        r = run_source(src, CompilerConfig(), prelude=False, debug=True)
        assert write_datum(r.value) == "(2 3 . 1)"
