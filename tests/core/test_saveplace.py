"""Save placement (pass 1) across all strategies."""


from repro.astnodes import Call, If, Save, walk
from repro.config import CompilerConfig
from repro.pipeline import compile_source


def compiled(text, **cfg):
    return compile_source(text, CompilerConfig(**cfg), prelude=False)


def code_named(compiled_prog, name):
    return next(c for c in compiled_prog.codes if c.name == name)


def saves_in(code):
    return [n for n in walk(code.body) if isinstance(n, Save)]


TAK = """
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(tak 6 4 2)
"""


class TestLazyPlacement:
    def test_tak_leaf_path_has_no_saves(self):
        prog = compiled(TAK)
        tak = code_named(prog, "tak")
        # the save is inside the else branch, not at the body top
        body = tak.body
        assert not isinstance(body, Save)
        ifs = [n for n in walk(body) if isinstance(n, If)]
        assert isinstance(ifs[0].otherwise, Save)

    def test_unconditional_call_saved_at_entry(self):
        prog = compiled("(define (g n) n) (define (f x) (+ (g x) x)) (f 1)")
        f = code_named(prog, "f")
        assert isinstance(f.body, Save)

    def test_save_contains_live_variable(self):
        prog = compiled("(define (g n) n) (define (f x) (+ (g x) x)) (f 1)")
        f = code_named(prog, "f")
        names = {v.name for v in f.body.vars}
        assert "x" in names and "%ret" in names

    def test_equal_branches_hoisted(self):
        # both branches call: save migrates to the body, branches bare
        prog = compiled(
            "(define (g n) n)"
            "(define (f x p) (+ x (if p (g 1) (g 2))))"
            "(f 1 #t)"
        )
        f = code_named(prog, "f")
        assert isinstance(f.body, Save)
        ifs = [n for n in walk(f.body) if isinstance(n, If)]
        assert not isinstance(ifs[0].then, Save)
        assert not isinstance(ifs[0].otherwise, Save)

    def test_short_circuit_and_saved_once(self):
        # (if (and x (g 1)) y (+ 1 (g y))): every path makes a
        # non-tail call, so the always-needed registers are saved at
        # the body; y (live only across the inner call) is saved at
        # the and-branch — exactly the paper's §2.1.2 example.
        prog = compiled(
            "(define (g n) n)"
            "(define (f x y) (if (and x (g 1)) y (+ 1 (g y))))"
            "(f 1 2)"
        )
        f = code_named(prog, "f")
        assert isinstance(f.body, Save)
        assert "%ret" in {v.name for v in f.body.vars}
        inner_saves = saves_in(f)[1:]
        assert any("y" in {v.name for v in s.vars} for s in inner_saves)

    def test_let_bound_variable_saved_after_binding(self):
        prog = compiled(
            "(define (g n) n)"
            "(define (f x) (let ((y (+ x 1))) (+ (g x) (+ y (g y)))))"
            "(f 1)"
        )
        f = code_named(prog, "f")
        for save in saves_in(f):
            # no save may mention a variable bound beneath it
            inner_lets = {
                n.var for n in walk(save.body) if hasattr(n, "var") and hasattr(n, "rhs")
            }
            assert not (set(save.vars) & inner_lets)

    def test_leaf_procedure_saves_nothing(self):
        prog = compiled("(define (leaf x y) (+ x y)) (leaf 1 2)")
        leaf = code_named(prog, "leaf")
        assert not saves_in(leaf)


class TestEarlyPlacement:
    def test_saves_at_entry_even_with_leaf_path(self):
        prog = compiled(TAK, save_strategy="early")
        tak = code_named(prog, "tak")
        assert isinstance(tak.body, Save)

    def test_union_of_all_calls(self):
        prog = compiled(
            "(define (g n) n)"
            "(define (f x p) (if p (+ (g x) x) x))"
            "(f 1 #t)",
            save_strategy="early",
        )
        f = code_named(prog, "f")
        assert isinstance(f.body, Save)
        # x is live across the conditional call, so early placement
        # saves it at entry even though the p-false path never calls.
        assert "x" in {v.name for v in f.body.vars}


class TestLatePlacement:
    def test_saves_wrap_calls(self):
        prog = compiled(TAK, save_strategy="late")
        tak = code_named(prog, "tak")
        for save in saves_in(tak):
            assert isinstance(save.body, Call)

    def test_body_not_wrapped(self):
        prog = compiled(TAK, save_strategy="late")
        tak = code_named(prog, "tak")
        assert not isinstance(tak.body, Save)


class TestCalleePlacement:
    def test_early_callee_region_at_entry(self):
        prog = compiled(TAK, save_convention="callee", save_strategy="early")
        tak = code_named(prog, "tak")
        assert isinstance(tak.body, Save)
        assert tak.body.callee_regs  # includes ret

    def test_lazy_callee_region_in_branch(self):
        prog = compiled(TAK, save_convention="callee", save_strategy="lazy")
        tak = code_named(prog, "tak")
        assert not (isinstance(tak.body, Save) and tak.body.callee_regs)
        ifs = [n for n in walk(tak.body) if isinstance(n, If)]
        else_branch = ifs[0].otherwise
        assert isinstance(else_branch, Save) and else_branch.callee_regs

    def test_leaf_has_no_callee_region(self):
        prog = compiled(
            "(define (leaf x) (+ x 1)) (leaf 2)",
            save_convention="callee",
            save_strategy="lazy",
        )
        leaf = code_named(prog, "leaf")
        assert not saves_in(leaf)


class TestAlwaysCallsFlag:
    def test_tak_has_leaf_path(self):
        prog = compiled(TAK)
        assert not code_named(prog, "tak").always_calls

    def test_unconditional_caller(self):
        prog = compiled("(define (g n) n) (define (f x) (+ (g x) 1)) (f 1)")
        assert code_named(prog, "f").always_calls

    def test_tail_caller_is_not_always_calls(self):
        prog = compiled("(define (f x) (f x)) 1")
        assert not code_named(prog, "f").always_calls
