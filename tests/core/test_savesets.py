"""The save-set analyses (§2.1), tested in the paper's own terms."""


from repro.core.savesets import EMPTY, TOP, rinter, runion, save_set


class TestSetAlgebra:
    def test_top_absorbs_union(self):
        assert runion(TOP, frozenset()) is TOP
        assert runion(frozenset(), TOP) is TOP

    def test_top_identity_for_intersection(self):
        s = frozenset([1, 2])
        assert rinter(TOP, s) == s
        assert rinter(s, TOP) == s

    def test_plain_sets(self):
        a = frozenset([1, 2])
        b = frozenset([2, 3])
        assert runion(a, b) == {1, 2, 3}
        assert rinter(a, b) == {2}

    def test_save_set_of_impossible_is_empty(self):
        assert save_set(TOP, TOP) == EMPTY


class TestBaseCases:
    def test_variable(self, world):
        a = world.analyze(world.x())
        assert a.st_of(world.code.body) == EMPTY
        assert a.sf_of(world.code.body) == EMPTY

    def test_true_cannot_be_false(self, world):
        e = world.true()
        a = world.analyze(e)
        assert a.st_of(e) == EMPTY
        assert a.sf_of(e) is TOP

    def test_false_cannot_be_true(self, world):
        e = world.false()
        a = world.analyze(e)
        assert a.st_of(e) is TOP
        assert a.sf_of(e) == EMPTY

    def test_call_saves_live_registers(self, world):
        c = world.call(live=("a", "b"))
        a = world.analyze(c)
        assert world.names(a.save_set_of(c)) == {"a", "b"}
        assert a.st_of(c) == a.sf_of(c)

    def test_tail_call_forces_no_saves(self, world):
        c = world.call(live=("a",), tail=True)
        a = world.analyze(c)
        assert a.save_set_of(c) == EMPTY


class TestSeqRule:
    def test_inevitable_call_propagates(self, world):
        # (seq call x): the call is inevitable -> its saves appear.
        e = world.seq(world.call(live=("a",)), world.x())
        a = world.analyze(e)
        assert world.names(a.save_set_of(e)) == {"a"}

    def test_seq_unions_successive_calls(self, world):
        e = world.seq(world.call(live=("a",)), world.call(live=("b",)))
        a = world.analyze(e)
        assert world.names(a.save_set_of(e)) == {"a", "b"}

    def test_seq_of_variables_saves_nothing(self, world):
        e = world.seq(world.x("a"), world.x("b"))
        assert world.analyze(e).save_set_of(e) == EMPTY


class TestIfRule:
    def test_call_in_one_branch_not_inevitable(self, world):
        e = world.if_(world.x(), world.call(live=("a",)), world.x("y"))
        a = world.analyze(e)
        assert a.save_set_of(e) == EMPTY

    def test_call_in_both_branches_inevitable(self, world):
        e = world.if_(
            world.x(), world.call(live=("a", "b")), world.call(live=("a",))
        )
        a = world.analyze(e)
        # both paths save a; only one saves b
        assert world.names(a.save_set_of(e)) == {"a"}

    def test_call_in_test_is_inevitable(self, world):
        e = world.if_(world.call(live=("a",)), world.x(), world.x("y"))
        a = world.analyze(e)
        assert world.names(a.save_set_of(e)) == {"a"}


class TestPaperExample:
    """§2.1.2-2.1.3: A = (if (if x call false) y call)."""

    def build(self, world):
        # inner call: y and the outer-live register L are live after it
        inner_call = world.call(live=("y", "L"))
        outer_call = world.call(live=("L",))
        B = world.if_(world.x(), inner_call, world.false())
        A = world.if_(B, world.x("y"), outer_call)
        return A, B

    def test_revised_inner_sets(self, world):
        A, B = self.build(world)
        a = world.analyze(A)
        # St[B] = {y} ∪ L ; Sf[B] = ∅ (paper's derivation)
        assert world.names(a.st_of(B)) == {"y", "L"}
        assert a.sf_of(B) == EMPTY
        assert a.save_set_of(B) == EMPTY

    def test_revised_outer_saves_everything_live(self, world):
        A, B = self.build(world)
        a = world.analyze(A)
        # St[A] = Sf[A] = L: every path through A calls.
        assert world.names(a.st_of(A)) == {"L"}
        assert world.names(a.sf_of(A)) == {"L"}
        assert world.names(a.save_set_of(A)) == {"L"}

    def test_simple_algorithm_is_too_lazy(self, world):
        A, B = self.build(world)
        a = world.analyze(A)
        # §2.1.2: the simple algorithm saves nothing around A.
        assert a.simple_save_set_of(A) == EMPTY

    def test_simple_subset_of_revised(self, world):
        A, B = self.build(world)
        a = world.analyze(A)
        for node in (A, B):
            assert a.simple_save_set_of(node) <= a.save_set_of(node)


class TestNeverTooEager:
    """If there is a path through E without calls, St[E] ∩ Sf[E] = ∅."""

    def test_branchy(self, world):
        e = world.if_(
            world.x(),
            world.seq(world.call(live=("a",)), world.call(live=("b",))),
            world.x("y"),
        )
        assert world.analyze(e).save_set_of(e) == EMPTY

    def test_nested(self, world):
        e = world.seq(
            world.if_(world.x(), world.call(live=("a",)), world.x()),
            world.if_(world.x(), world.x(), world.call(live=("b",))),
        )
        assert world.analyze(e).save_set_of(e) == EMPTY


class TestAlwaysCalls:
    def test_inevitable(self, world):
        ret = world.alloc.ret_var
        c = world.call()
        c.live_after = frozenset([ret])
        a = world.analyze(c)
        assert a.always_calls(c)

    def test_avoidable(self, world):
        ret = world.alloc.ret_var
        c = world.call()
        c.live_after = frozenset([ret])
        e = world.if_(world.x(), c, world.x("y"))
        a = world.analyze(e)
        assert not a.always_calls(e)


class TestNeverFalsePrims:
    def test_cons_result_truthy(self, world):
        from repro.astnodes import PrimCall

        e = PrimCall("cons", [world.x("a"), world.x("b")])
        a = world.analyze(e)
        assert a.sf_of(e) is TOP

    def test_if_on_cons_drops_false_branch_requirements(self, world):
        from repro.astnodes import PrimCall

        test = PrimCall("cons", [world.x("a"), world.x("b")])
        e = world.if_(test, world.call(live=("c",)), world.x("d"))
        a = world.analyze(e)
        # else branch unreachable: call is inevitable
        assert world.names(a.save_set_of(e)) == {"c"}
