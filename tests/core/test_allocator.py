"""Allocator orchestration tests."""


from repro.astnodes import Call, If, walk
from repro.config import CompilerConfig
from repro.core.allocator import allocate_program
from repro.frontend.analyze import check_scopes, mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.closure import closure_convert
from repro.frontend.expand import expand_program
from repro.sexp.reader import read_all

TAK = """
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 8 4 2)
"""


def allocated(text, **cfg):
    expr = assignment_convert(expand_program(read_all(text)))
    mark_tail_calls(expr)
    check_scopes(expr)
    program = closure_convert(expr)
    allocation = allocate_program(program, CompilerConfig(**cfg))
    return program, allocation


class TestOrchestration:
    def test_every_code_allocated(self):
        program, allocation = allocated(TAK)
        for code in program.codes:
            assert allocation.alloc_for(code) is not None
            assert allocation.analysis_for(code) is not None

    def test_every_call_planned(self):
        program, allocation = allocated(TAK)
        for code in program.codes:
            for node in walk(code.body):
                if isinstance(node, Call):
                    assert node.shuffle_plan is not None

    def test_pass_times_recorded(self):
        program, allocation = allocated(TAK)
        for phase in ("liveness", "save-placement", "restore-placement", "shuffle"):
            assert allocation.pass_times[phase] >= 0.0
        assert sum(allocation.pass_times.values()) > 0.0

    def test_regfile_matches_config(self):
        _, allocation = allocated(TAK, num_arg_regs=2, num_temp_regs=3)
        assert allocation.regfile.num_arg_regs == 2
        assert allocation.regfile.num_temp_regs == 3

    def test_callee_mode_marks_temps(self):
        _, allocation = allocated(TAK, save_convention="callee")
        assert all(r.callee_save for r in allocation.regfile.temp_regs)


class TestBranchPredictionAnnotation:
    def test_annotated_when_enabled(self):
        program, _ = allocated(TAK, branch_prediction="static-calls")
        tak = next(c for c in program.codes if c.name == "tak")
        ifs = [n for n in walk(tak.body) if isinstance(n, If)]
        # tak's branch: then = leaf (no calls), else = calls -> predict then
        assert ifs[0].prediction == "then"

    def test_not_annotated_by_default(self):
        program, _ = allocated(TAK)
        tak = next(c for c in program.codes if c.name == "tak")
        ifs = [n for n in walk(tak.body) if isinstance(n, If)]
        assert all(i.prediction is None for i in ifs)

    def test_fallthrough_mode_not_annotated(self):
        program, _ = allocated(TAK, branch_prediction="fallthrough")
        tak = next(c for c in program.codes if c.name == "tak")
        ifs = [n for n in walk(tak.body) if isinstance(n, If)]
        assert all(i.prediction is None for i in ifs)

    def test_both_branches_call_no_prediction(self):
        src = (
            "(define (g n) n)"
            "(define (f p x) (+ 1 (if p (g x) (g (+ x 1)))))"
            "(f #t 1)"
        )
        program, _ = allocated(src, branch_prediction="static-calls")
        f = next(c for c in program.codes if c.name == "f")
        ifs = [n for n in walk(f.body) if isinstance(n, If)]
        assert ifs[0].prediction is None
