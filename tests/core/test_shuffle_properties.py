"""Property tests of the shuffle scheduling algorithms over random
dependency graphs (pure graph level, no compilation)."""

from hypothesis import given, settings, strategies as st

from repro.astnodes import Quote
from repro.core.registers import RegisterFile
from repro.core.shuffle import (
    ShuffleItem,
    ShufflePlan,
    _graph_cyclic,
    _schedule_greedy,
    _schedule_naive,
    _schedule_optimal,
    dependency_edges,
    minimum_evictions,
)

_REGFILE = RegisterFile(6, 6)


def make_items(read_sets):
    """Build simple shuffle items: item i targets a_i and reads the
    registers named by indices in read_sets[i]."""
    items = []
    for i, reads in enumerate(read_sets):
        items.append(
            ShuffleItem(
                index=i + 1,
                expr=Quote(i),
                target=_REGFILE.arg_regs[i],
                is_complex=False,
                reads=frozenset(_REGFILE.arg_regs[j] for j in reads),
            )
        )
    return items


read_sets_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=5), max_size=3),
    min_size=1,
    max_size=6,
)


def run_schedule(schedule, items, **kw):
    plan = ShufflePlan()
    plan.items = items
    schedule(plan, items, **kw)
    return plan


def placement_is_valid(plan, items):
    """Execution-order oracle: when an item is placed directly into its
    target, no unfinished item may still read that register; evicted
    items are safe by construction."""
    pending = {id(it) for it in items}
    written = set()
    for kind, item in plan.steps:
        if kind in ("direct",):
            pending.discard(id(item))
            for other in items:
                if id(other) in pending and item.target in other.reads:
                    return False
            written.add(item.target)
        elif kind == "evict":
            # reads happen now, from registers not yet overwritten
            for reg in item.reads:
                if reg in written:
                    return False
            pending.discard(id(item))
        elif kind == "flush-evict":
            written.add(item.target)
    return not pending


@given(read_sets_strategy)
@settings(max_examples=300, deadline=None)
def test_greedy_schedule_valid(read_sets):
    items = make_items(read_sets)
    plan = run_schedule(_schedule_greedy, items, spill_all=False)
    assert placement_is_valid(plan, items)


@given(read_sets_strategy)
@settings(max_examples=300, deadline=None)
def test_naive_schedule_valid(read_sets):
    items = make_items(read_sets)
    plan = run_schedule(_schedule_naive, items)
    assert placement_is_valid(plan, items)


@given(read_sets_strategy)
@settings(max_examples=200, deadline=None)
def test_optimal_schedule_valid(read_sets):
    items = make_items(read_sets)
    plan = run_schedule(_schedule_optimal, items)
    assert placement_is_valid(plan, items)


@given(read_sets_strategy)
@settings(max_examples=300, deadline=None)
def test_eviction_count_ordering(read_sets):
    """optimal <= greedy <= spill-all, and optimal matches the exact
    minimum feedback vertex set."""
    items = make_items(read_sets)
    greedy = run_schedule(_schedule_greedy, items, spill_all=False)
    spill = run_schedule(_schedule_greedy, items, spill_all=True)
    optimal = run_schedule(_schedule_optimal, items)
    edges = dependency_edges(items)
    exact = minimum_evictions(len(items), edges)
    assert optimal.evictions == exact
    assert exact <= greedy.evictions <= spill.evictions


@given(read_sets_strategy)
@settings(max_examples=300, deadline=None)
def test_acyclic_graphs_need_no_temporaries(read_sets):
    items = make_items(read_sets)
    edges = dependency_edges(items)
    if not _graph_cyclic(set(range(len(items))), edges):
        greedy = run_schedule(_schedule_greedy, items, spill_all=False)
        assert greedy.evictions == 0
        assert not greedy.had_cycle


@given(read_sets_strategy)
@settings(max_examples=300, deadline=None)
def test_cycle_flag_matches_graph(read_sets):
    items = make_items(read_sets)
    edges = dependency_edges(items)
    greedy = run_schedule(_schedule_greedy, items, spill_all=False)
    assert greedy.had_cycle == _graph_cyclic(set(range(len(items))), edges)
