"""Liveness and location assignment (pass 0)."""


from repro.astnodes import Call, Let, walk
from repro.core.liveness import analyze_code
from repro.core.locations import FrameSlot
from repro.core.registers import Register, RegisterFile
from repro.frontend.analyze import mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.closure import closure_convert
from repro.frontend.expand import expand_program
from repro.sexp.reader import read_all


def analyzed(text, num_regs=6):
    expr = assignment_convert(expand_program(read_all(text)))
    mark_tail_calls(expr)
    program = closure_convert(expr)
    regfile = RegisterFile(num_regs, num_regs)
    allocs = {c.name: analyze_code(c, regfile) for c in program.codes}
    return program, allocs


def code_named(program, name):
    return next(c for c in program.codes if c.name == name)


class TestParameterLocations:
    def test_params_in_arg_registers(self):
        program, allocs = analyzed("(define (f a b c) a) (f 1 2 3)")
        f = code_named(program, "f")
        for i, p in enumerate(f.params):
            assert isinstance(p.location, Register)
            assert p.location.name == f"a{i}"

    def test_excess_params_on_stack(self):
        program, allocs = analyzed(
            "(define (f a b c d) a) (f 1 2 3 4)", num_regs=2
        )
        f = code_named(program, "f")
        assert isinstance(f.params[0].location, Register)
        assert isinstance(f.params[1].location, Register)
        assert f.params[2].location == FrameSlot(0)
        assert f.params[3].location == FrameSlot(1)

    def test_baseline_all_params_on_stack(self):
        program, allocs = analyzed("(define (f a b) a) (f 1 2)", num_regs=0)
        f = code_named(program, "f")
        assert all(isinstance(p.location, FrameSlot) for p in f.params)


class TestLetLocations:
    def test_let_gets_register(self):
        program, allocs = analyzed("(define (f x) (let ((y (+ x 1))) (+ y y))) (f 1)")
        f = code_named(program, "f")
        lets = [n for n in walk(f.body) if isinstance(n, Let)]
        assert all(isinstance(l.var.location, Register) for l in lets)

    def test_disjoint_scopes_share_register(self):
        program, allocs = analyzed(
            "(define (f x) (+ (let ((a (+ x 1))) a) (let ((b (+ x 2))) b))) (f 1)"
        )
        f = code_named(program, "f")
        lets = [n for n in walk(f.body) if isinstance(n, Let)]
        assert lets[0].var.location is lets[1].var.location

    def test_nested_live_vars_get_distinct_registers(self):
        program, allocs = analyzed(
            "(define (f x) (let ((a (+ x 1))) (let ((b (+ x 2))) (+ a b)))) (f 1)"
        )
        f = code_named(program, "f")
        lets = [n for n in walk(f.body) if isinstance(n, Let)]
        locs = {l.var.location for l in lets}
        assert len(locs) == 2

    def test_dead_param_register_reused(self):
        # x is dead after the binding of y, so y may take x's register
        program, allocs = analyzed(
            "(define (f x) (let ((y (+ x 1))) (+ y y))) (f 1)", num_regs=1
        )
        f = code_named(program, "f")
        let = next(n for n in walk(f.body) if isinstance(n, Let))
        assert isinstance(let.var.location, Register)

    def test_spill_when_registers_exhausted(self):
        src = (
            "(define (f x) "
            "  (let ((a (+ x 1))) (let ((b (+ x 2))) (let ((c (+ x 3)))"
            "  (+ a (+ b (+ c x)))))))"
            "(f 1)"
        )
        program, allocs = analyzed(src, num_regs=1)
        f = code_named(program, "f")
        lets = [n for n in walk(f.body) if isinstance(n, Let)]
        spilled = [l for l in lets if isinstance(l.var.location, FrameSlot)]
        assert spilled  # not enough registers for all three


class TestCallLiveness:
    def test_live_after_call(self):
        program, allocs = analyzed(
            "(define (g n) n) (define (f x y) (+ (g x) y)) (f 1 2)"
        )
        f = code_named(program, "f")
        call = next(
            n for n in walk(f.body) if isinstance(n, Call) and not n.tail
        )
        names = {v.name for v in call.live_after}
        assert "y" in names  # y used after the call
        assert "%ret" in names  # must return afterwards

    def test_dead_after_call(self):
        program, allocs = analyzed(
            "(define (g n) n) (define (f x y) (+ (g y) 1)) (f 1 2)"
        )
        f = code_named(program, "f")
        call = next(
            n for n in walk(f.body) if isinstance(n, Call) and not n.tail
        )
        names = {v.name for v in call.live_after}
        assert "x" not in names and "y" not in names

    def test_sibling_operands_kept_live(self):
        # Whatever order the shuffler picks, y must survive (g x).
        program, allocs = analyzed(
            "(define (g n) n) (define (h a b) a)"
            "(define (f x y) (h (g x) y)) (f 1 2)"
        )
        f = code_named(program, "f")
        inner = [
            n for n in walk(f.body) if isinstance(n, Call) and not n.tail
        ]
        g_call = next(c for c in inner if not c.args or len(c.args) == 1)
        assert "y" in {v.name for v in g_call.live_after}

    def test_cp_live_when_free_vars_used_after_call(self):
        program, allocs = analyzed(
            "(define (g n) n)"
            "(define (make k) (lambda (x) (+ (g x) k)))"
            "((make 5) 2)"
        )
        anon = code_named(program, "anonymous")
        call = next(
            n for n in walk(anon.body) if isinstance(n, Call) and not n.tail
        )
        assert "%cp" in {v.name for v in call.live_after}


class TestFrameLayout:
    def test_tail_call_out_area_reserved(self):
        # 7 args with 6 arg regs: one stack slot; locals must sit above.
        program, allocs = analyzed(
            "(define (g a b c d e f h) a)"
            "(define (f x) (g x x x x x x x))"
            "(f 1)"
        )
        alloc = allocs["f"]
        assert alloc.layout.size >= 1
        slot = alloc.layout.alloc("probe")
        assert slot.index >= 1  # slot 0 reserved for the tail-call arg
