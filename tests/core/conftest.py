"""Helpers for constructing the paper's simplified language directly.

The paper's §2 examples use the language ``x | true | false | call |
(seq E1 E2) | (if E1 E2 E3)``; these helpers build the corresponding
core AST nodes with hand-assigned registers and live sets, so the save
analyses can be tested in exactly the paper's terms.
"""

from __future__ import annotations

from typing import Iterable

import pytest

from repro.astnodes import Call, CodeObject, Expr, If, Quote, Ref, Seq, Var
from repro.core.liveness import CodeAllocation
from repro.core.registers import RegisterFile
from repro.core.savesets import SaveAnalysis
from repro.sexp.datum import Symbol


class PaperWorld:
    """A tiny fixture world: a register file, some register-resident
    variables, and constructors for the paper's expression forms."""

    def __init__(self, num_regs: int = 6) -> None:
        self.regfile = RegisterFile(num_regs, num_regs)
        self.code = CodeObject("test", [], [], Quote(False))
        self.alloc = CodeAllocation(self.code, self.regfile)
        self._vars = {}

    def var(self, name: str) -> Var:
        if name not in self._vars:
            v = Var(name)
            v.location = self.regfile.temp_regs[len(self._vars)]
            self._vars[name] = v
        return self._vars[name]

    def x(self, name: str = "x") -> Ref:
        return Ref(self.var(name))

    def true(self) -> Quote:
        return Quote(True)

    def false(self) -> Quote:
        return Quote(False)

    def call(self, live: Iterable[str] = (), tail: bool = False) -> Call:
        """The paper's ``call`` with the given names live after it."""
        node = Call(Quote(Symbol("f")), [], tail=tail)
        node.live_after = frozenset(self.var(n) for n in live)
        return node

    def seq(self, *exprs: Expr) -> Seq:
        return Seq(list(exprs))

    def if_(self, t: Expr, c: Expr, a: Expr) -> If:
        return If(t, c, a)

    def analyze(self, body: Expr) -> SaveAnalysis:
        self.code.body = body
        analysis = SaveAnalysis(self.alloc)
        analysis.analyze()
        return analysis

    def names(self, vars_) -> set:
        return {v.name for v in vars_}


@pytest.fixture
def world() -> PaperWorld:
    return PaperWorld()
