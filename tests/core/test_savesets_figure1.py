"""Figure 1 and §2.1 invariants, property-tested over random
expressions in the paper's simplified language."""

from hypothesis import given, settings, strategies as st

from repro.astnodes import Call, Expr, If, PrimCall, Quote, Ref, Seq, walk
from repro.core.savesets import EMPTY, rinter, runion
from tests.core.conftest import PaperWorld

_VAR_NAMES = ("a", "b", "c", "d")


def _exprs(world: PaperWorld):
    """Random expressions: x | true | false | call | seq | if."""
    leaves = st.one_of(
        st.sampled_from(_VAR_NAMES).map(world.x),
        st.just(None).map(lambda _: world.true()),
        st.just(None).map(lambda _: world.false()),
        st.lists(st.sampled_from(_VAR_NAMES), max_size=3).map(
            lambda live: world.call(live=live)
        ),
    )

    def compound(children):
        return st.one_of(
            st.tuples(children, children).map(lambda t: world.seq(*t)),
            st.tuples(children, children, children).map(
                lambda t: world.if_(*t)
            ),
        )

    return st.recursive(leaves, compound, max_leaves=12)


def _fresh_world_and_expr(draw_expr):
    world = PaperWorld()
    return world, draw_expr(world)


@st.composite
def world_expr(draw):
    world = PaperWorld()
    expr = draw(_exprs(world))
    return world, expr


def _call_free_outcomes(expr: Expr) -> frozenset:
    """Ground truth by path enumeration: the truthiness outcomes
    ("t"/"f") reachable through *expr* without executing a call."""
    if isinstance(expr, Quote):
        return frozenset("f" if expr.value is False else "t")
    if isinstance(expr, Ref):
        return frozenset("tf")
    if isinstance(expr, Call):
        # Tail calls are jumps (footnote 1); their value is unknown.
        return frozenset("tf") if expr.tail else frozenset()
    if isinstance(expr, Seq):
        for sub in expr.exprs[:-1]:
            if not _call_free_outcomes(sub):
                return frozenset()
        return _call_free_outcomes(expr.exprs[-1])
    if isinstance(expr, If):
        test = _call_free_outcomes(expr.test)
        out = frozenset()
        if "t" in test:
            out |= _call_free_outcomes(expr.then)
        if "f" in test:
            out |= _call_free_outcomes(expr.otherwise)
        return out
    raise TypeError(type(expr))


def _has_call_free_path(expr: Expr) -> bool:
    return bool(_call_free_outcomes(expr))


@given(world_expr())
@settings(max_examples=200, deadline=None)
def test_simple_is_subset_of_revised(we):
    """§2.1.3: S[E] ⊆ St[E] ∩ Sf[E] for all expressions."""
    world, expr = we
    analysis = world.analyze(expr)
    for node in walk(expr):
        assert analysis.simple_save_set_of(node) <= analysis.save_set_of(node)


@given(world_expr())
@settings(max_examples=200, deadline=None)
def test_never_too_eager(we):
    """§2.1.3: a call-free path through E implies St[E] ∩ Sf[E] = ∅."""
    world, expr = we
    analysis = world.analyze(expr)
    if _has_call_free_path(expr):
        assert analysis.save_set_of(expr) == EMPTY


@given(world_expr())
@settings(max_examples=200, deadline=None)
def test_no_call_free_path_saves_ret(we):
    """§2.4: ret ∈ St ∩ Sf iff a call is inevitable."""
    world, expr = we
    ret = world.alloc.ret_var
    for node in walk(expr):
        if isinstance(node, Call) and not node.tail:
            node.live_after = frozenset(node.live_after) | {ret}
    analysis = world.analyze(expr)
    assert analysis.always_calls(expr) == (not _has_call_free_path(expr))


@given(world_expr())
@settings(max_examples=150, deadline=None)
def test_figure1_not(we):
    """St[(not E)] = Sf[E] and Sf[(not E)] = St[E]."""
    world, expr = we
    neg = PrimCall("not", [expr])
    analysis = world.analyze(neg)
    assert analysis.st_of(neg) == analysis.sf_of(expr)
    assert analysis.sf_of(neg) == analysis.st_of(expr)


@given(world_expr(), world_expr())
@settings(max_examples=150, deadline=None)
def test_figure1_and(we1, we2):
    """St[(and E1 E2)] = St[E1] ∪ St[E2];
    Sf[(and E1 E2)] = (St[E1] ∪ Sf[E2]) ∩ Sf[E1]."""
    world, e1 = we1
    _, e2 = we2
    conj = world.if_(e1, e2, world.false())
    analysis = world.analyze(conj)
    st1, sf1 = analysis.st_of(e1), analysis.sf_of(e1)
    st2, sf2 = analysis.st_of(e2), analysis.sf_of(e2)
    assert analysis.st_of(conj) == runion(st1, st2)
    assert analysis.sf_of(conj) == rinter(runion(st1, sf2), sf1)


@given(world_expr(), world_expr())
@settings(max_examples=150, deadline=None)
def test_figure1_or(we1, we2):
    """St[(or E1 E2)] = St[E1] ∩ (Sf[E1] ∪ St[E2]);
    Sf[(or E1 E2)] = Sf[E1] ∪ Sf[E2]."""
    world, e1 = we1
    _, e2 = we2
    disj = world.if_(e1, world.true(), e2)
    analysis = world.analyze(disj)
    st1, sf1 = analysis.st_of(e1), analysis.sf_of(e1)
    st2, sf2 = analysis.st_of(e2), analysis.sf_of(e2)
    assert analysis.st_of(disj) == rinter(st1, runion(sf1, st2))
    assert analysis.sf_of(disj) == runion(sf1, sf2)


@given(world_expr())
@settings(max_examples=150, deadline=None)
def test_save_sets_subset_of_live(we):
    """A save set never mentions a register that is not live after one
    of the expression's calls (saves are never invented)."""
    world, expr = we
    analysis = world.analyze(expr)
    all_live = set()
    for node in walk(expr):
        if isinstance(node, Call):
            all_live |= set(node.live_after)
    assert analysis.save_set_of(expr) <= all_live
