"""Register file and bit-vector model."""

import pytest

from repro.core.registers import Register, RegisterFile


class TestRegisterFile:
    def test_default_layout(self):
        rf = RegisterFile(6, 6)
        assert rf.ret.index == 0
        assert rf.cp.index == 1
        assert rf.rv.index == 2
        assert len(rf.scratch_regs) == 3
        assert len(rf.arg_regs) == 6
        assert len(rf.temp_regs) == 6
        assert len(rf) == 3 + 3 + 6 + 6

    def test_baseline_still_has_scratch(self):
        rf = RegisterFile(0, 0)
        assert len(rf.arg_regs) == 0
        assert len(rf.scratch_regs) == 3

    def test_unique_indices(self):
        rf = RegisterFile(6, 6)
        assert len({r.index for r in rf.all}) == len(rf.all)

    def test_by_name_and_index(self):
        rf = RegisterFile(3, 2)
        assert rf.by_name("a1") is rf.arg_regs[1]
        assert rf.by_index(rf.ret.index) is rf.ret

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(-1, 0)


class TestBitVectors:
    def test_singleton_masks_disjoint(self):
        rf = RegisterFile(6, 6)
        seen = 0
        for reg in rf.all:
            assert seen & reg.mask == 0
            seen |= reg.mask

    def test_all_mask(self):
        rf = RegisterFile(2, 2)
        assert rf.all_mask == (1 << len(rf)) - 1

    def test_union_is_or_intersection_is_and(self):
        # "the union operation is logical or, the intersection
        # operation is logical and" (§3.1)
        rf = RegisterFile(4, 0)
        a = rf.arg_regs[0].mask | rf.arg_regs[1].mask
        b = rf.arg_regs[1].mask | rf.arg_regs[2].mask
        assert rf.mask_to_registers(a & b) == [rf.arg_regs[1]]
        assert len(rf.mask_to_registers(a | b)) == 3

    def test_mask_round_trip(self):
        rf = RegisterFile(6, 6)
        regs = [rf.ret, rf.arg_regs[3], rf.temp_regs[5]]
        mask = 0
        for r in regs:
            mask |= r.mask
        assert rf.mask_to_registers(mask) == sorted(regs, key=lambda r: r.index)


class TestCalleeSave:
    def test_caller_save_by_default(self):
        rf = RegisterFile(6, 6)
        assert rf.caller_save_mask() == rf.all_mask

    def test_callee_save_temps(self):
        rf = RegisterFile(6, 6, callee_save_temps=True)
        for reg in rf.temp_regs:
            assert reg.callee_save
        for reg in (*rf.arg_regs, rf.ret, rf.cp, rf.rv):
            assert not reg.callee_save
        assert rf.caller_save_mask() != rf.all_mask
