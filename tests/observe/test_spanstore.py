"""The span store: segment rotation, size bounds, corruption-tolerant
reads, tree reconstruction, critical-path attribution, Chrome export."""

import json
import os
import threading

import pytest

from repro.observe.spanstore import (
    SpanStore,
    build_tree,
    chrome_trace_from_records,
    critical_path,
    critical_path_summary,
    iter_records,
    load_trace,
    render_tree,
    self_times,
    slowest_traces,
    trace_summaries,
)


def span(trace, sid, parent, name, start, dur, pid=1, **attrs):
    return {
        "trace": trace,
        "span": sid,
        "parent": parent,
        "name": name,
        "start_ns": start,
        "dur_ns": dur,
        "pid": pid,
        "service": "test",
        "attrs": attrs,
    }


def sample_trace(trace="t1", base=1_000_000_000):
    return [
        span(trace, "root", None, "request", base, 100_000_000,
             status="ok", op="compile"),
        span(trace, "adm", "root", "admission", base + 1_000, 50_000),
        span(trace, "wait", "root", "wait", base + 100_000, 99_000_000),
        span(trace, "q", "wait", "queue", base + 200_000, 30_000_000),
        span(trace, "run", "wait", "run", base + 30_200_000, 60_000_000),
        span(trace, "comp", "run", "compile", base + 31_000_000,
             55_000_000, pid=2),
        span(trace, "resp", "root", "respond", base + 99_100_000, 500_000),
    ]


# ---------------------------------------------------------------------------
# Writing: bounds + rotation
# ---------------------------------------------------------------------------


def test_append_then_read_roundtrip(tmp_path):
    store = SpanStore(str(tmp_path))
    assert store.append_trace(sample_trace()) == 7
    assert store.append_trace([]) == 0
    records = list(iter_records(str(tmp_path)))
    assert len(records) == 7
    assert records[0]["trace"] == "t1"


def test_segments_rotate_at_the_byte_cap(tmp_path):
    store = SpanStore(str(tmp_path), max_segment_bytes=2000, max_segments=100)
    for i in range(20):
        store.append_trace(sample_trace(trace=f"t{i:02d}"))
    names = sorted(os.listdir(tmp_path))
    assert len(names) > 1
    assert all(n.startswith("spans-") and n.endswith(".jsonl") for n in names)
    assert store.rotations == len(names) - 1
    # Nothing was lost across the rotation boundary.
    assert len({r["trace"] for r in iter_records(str(tmp_path))}) == 20


def test_oldest_segments_are_pruned_past_max_segments(tmp_path):
    store = SpanStore(str(tmp_path), max_segment_bytes=2000, max_segments=3)
    for i in range(30):
        store.append_trace(sample_trace(trace=f"t{i:02d}"))
    names = sorted(os.listdir(tmp_path))
    assert len(names) <= 3
    # The newest traces survive; the oldest are gone.
    traces = {r["trace"] for r in iter_records(str(tmp_path))}
    assert "t29" in traces
    assert "t00" not in traces


def test_store_resumes_into_existing_segments(tmp_path):
    SpanStore(str(tmp_path)).append_trace(sample_trace(trace="before"))
    store = SpanStore(str(tmp_path))
    store.append_trace(sample_trace(trace="after"))
    assert len(os.listdir(tmp_path)) == 1  # appended, not restarted
    traces = {r["trace"] for r in iter_records(str(tmp_path))}
    assert traces == {"before", "after"}


def test_bad_bounds_rejected(tmp_path):
    with pytest.raises(ValueError):
        SpanStore(str(tmp_path), max_segment_bytes=0)
    with pytest.raises(ValueError):
        SpanStore(str(tmp_path), max_segments=0)


def test_concurrent_appends_never_tear_lines(tmp_path):
    store = SpanStore(str(tmp_path), max_segment_bytes=4000)

    def write(tag):
        for i in range(25):
            store.append_trace(sample_trace(trace=f"{tag}{i:02d}"))

    threads = [
        threading.Thread(target=write, args=(t,)) for t in ("a", "b", "c")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Every line in every surviving segment parses.
    for name in os.listdir(tmp_path):
        for line in open(tmp_path / name):
            if line.strip():
                json.loads(line)
    assert store.spans_written == 3 * 25 * 7


# ---------------------------------------------------------------------------
# Reading: corruption tolerance + lookup
# ---------------------------------------------------------------------------


def test_corrupt_lines_are_skipped_not_fatal(tmp_path):
    store = SpanStore(str(tmp_path))
    store.append_trace(sample_trace())
    path = tmp_path / sorted(os.listdir(tmp_path))[0]
    with open(path, "a") as handle:
        handle.write("{torn json\n")
        handle.write('"a bare string"\n')
        handle.write('{"no_trace_key": 1}\n')
        handle.write("\n")
    more = SpanStore(str(tmp_path))
    more.append_trace(sample_trace(trace="t2"))
    traces = {r["trace"] for r in iter_records(str(tmp_path))}
    assert traces == {"t1", "t2"}


def test_load_trace_by_unique_prefix(tmp_path):
    store = SpanStore(str(tmp_path))
    store.append_trace(sample_trace(trace="abcd1234deadbeef"))
    store.append_trace(sample_trace(trace="ffff1234deadbeef"))
    assert len(load_trace(str(tmp_path), "abcd")) == 7
    assert load_trace(str(tmp_path), "abcd1234deadbeef")[0]["trace"].startswith(
        "abcd"
    )
    assert load_trace(str(tmp_path), "0000") == []
    store.append_trace(sample_trace(trace="abcdffffdeadbeef"))
    with pytest.raises(ValueError, match="ambiguous"):
        load_trace(str(tmp_path), "abcd")


def test_trace_summaries_and_slowest(tmp_path):
    store = SpanStore(str(tmp_path))
    fast = sample_trace(trace="fast", base=2_000_000_000)
    fast[0]["dur_ns"] = 5_000_000
    store.append_trace(fast)
    store.append_trace(sample_trace(trace="slow", base=1_000_000_000))
    rows = trace_summaries(str(tmp_path))
    assert [row["trace"] for row in rows] == ["fast", "slow"]  # newest first
    row = rows[1]
    assert row["name"] == "request"
    assert row["status"] == "ok"
    assert row["op"] == "compile"
    assert row["spans"] == 7
    assert row["pids"] == [1, 2]
    slowest = slowest_traces(str(tmp_path), k=1)
    assert [row["trace"] for row in slowest] == ["slow"]


# ---------------------------------------------------------------------------
# Trees
# ---------------------------------------------------------------------------


def test_build_tree_nests_by_parentage(tmp_path):
    (root,) = build_tree(sample_trace())
    record, kids = root
    assert record["span"] == "root"
    assert [k[0]["name"] for k in kids] == ["admission", "wait", "respond"]
    wait = kids[1]
    assert [k[0]["name"] for k in wait[1]] == ["queue", "run"]
    run = wait[1][1]
    assert run[1][0][0]["name"] == "compile"


def test_orphans_become_roots_not_dropped():
    records = sample_trace()
    orphan = span("t1", "x", "missing-parent", "cache.lookup", 1, 10)
    roots = build_tree(records + [orphan])
    assert len(roots) == 2
    assert {r[0]["span"] for r in roots} == {"root", "x"}


def test_render_tree_shows_nesting_and_attrs():
    text = render_tree(sample_trace())
    lines = text.splitlines()
    assert lines[0].startswith("trace t1 — 7 span(s)")
    assert any("request" in line and "status=ok" in line for line in lines)
    request_line = next(
        line for line in lines if line.lstrip().startswith("request")
    )
    compile_line = next(
        line for line in lines if line.lstrip().startswith("compile")
    )
    assert compile_line.index("compile") > request_line.index("request")
    assert "[pid 2]" in compile_line
    assert render_tree([]) == "(no spans)\n"


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------


def test_self_times_subtract_children():
    selfs = self_times(sample_trace())
    assert selfs["comp"] == 55_000_000
    assert selfs["run"] == 5_000_000  # 60ms minus the 55ms compile
    assert selfs["wait"] == 9_000_000  # 99 - 30 - 60
    assert min(selfs.values()) >= 0


def test_critical_path_categories():
    path = critical_path(sample_trace())
    assert path["compile"] == pytest.approx(0.060)  # run self + compile self
    assert path["queue"] == pytest.approx(0.039)  # queue + wait self
    assert path["admission"] == pytest.approx(50_000 / 1e9)
    assert path["write"] == pytest.approx(500_000 / 1e9)
    summary = critical_path_summary([sample_trace(), sample_trace()])
    assert summary["compile"] == pytest.approx(0.120)


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------


def test_chrome_trace_shape():
    doc = chrome_trace_from_records(sample_trace())
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["trace_id"] == "t1"
    events = doc["traceEvents"]
    metadata = [e for e in events if e.get("ph") == "M"]
    assert {e["pid"] for e in metadata} == {1, 2}
    slices = [e for e in events if e.get("ph") == "X"]
    assert len(slices) == 7
    root = next(e for e in slices if e["name"] == "request")
    assert root["ts"] == 0  # relative to trace start
    assert root["dur"] == pytest.approx(100_000)  # microseconds
    assert chrome_trace_from_records([])["traceEvents"] == []


# ---------------------------------------------------------------------------
# The repro spans CLI
# ---------------------------------------------------------------------------


def _populated_store(tmp_path):
    store = SpanStore(str(tmp_path))
    store.append_trace(sample_trace(trace="abcd1234deadbeef"))
    slow = sample_trace(trace="ffff1234deadbeef", base=2_000_000_000)
    slow[0]["dur_ns"] = 300_000_000
    store.append_trace(slow)
    return str(tmp_path)


def test_cli_spans_list_show_slowest_export(tmp_path, capsys):
    from repro.cli import main

    directory = _populated_store(tmp_path / "spans")

    assert main(["spans", "list", "--trace-dir", directory]) == 0
    out = capsys.readouterr().out
    assert "abcd1234deadbeef" in out and "ffff1234deadbeef" in out
    assert "op=compile status=ok" in out
    assert "pids 1,2" in out

    assert main(["spans", "show", "abcd", "--trace-dir", directory]) == 0
    out = capsys.readouterr().out
    assert out.startswith("trace abcd1234deadbeef")
    assert "request" in out and "compile" in out

    assert main(
        ["spans", "slowest", "--trace-dir", directory, "--limit", "1",
         "--critical-path"]
    ) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].startswith("ffff1234deadbeef")
    assert "critical path" in out
    assert "compile" in out and "%" in out

    out_path = tmp_path / "chrome.json"
    assert main(
        ["spans", "export", "ffff", "--chrome", "--trace-dir", directory,
         "-o", str(out_path)]
    ) == 0
    capsys.readouterr()
    doc = json.loads(out_path.read_text())
    assert doc["otherData"]["trace_id"] == "ffff1234deadbeef"
    assert len([e for e in doc["traceEvents"] if e.get("ph") == "X"]) == 7


def test_cli_spans_json_modes(tmp_path, capsys):
    from repro.cli import main

    directory = _populated_store(tmp_path / "spans")
    assert main(["spans", "list", "--trace-dir", directory, "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {row["trace"] for row in rows} == {
        "abcd1234deadbeef", "ffff1234deadbeef"
    }
    assert main(
        ["spans", "slowest", "--trace-dir", directory, "--json",
         "--critical-path"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["slowest"][0]["trace"] == "ffff1234deadbeef"
    assert doc["critical_path_s"]["compile"] > 0


def test_cli_spans_errors(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    assert main(["spans", "list"]) == 2
    assert "--trace-dir" in capsys.readouterr().err

    missing = str(tmp_path / "nowhere")
    assert main(["spans", "list", "--trace-dir", missing]) == 1
    assert "no span store" in capsys.readouterr().err

    directory = _populated_store(tmp_path / "spans")
    assert main(["spans", "show", "0000", "--trace-dir", directory]) == 1
    assert "no trace" in capsys.readouterr().err
    # An ambiguous prefix is an error message, not a traceback.
    store = SpanStore(directory)
    store.append_trace(sample_trace(trace="abcdffffdeadbeef"))
    assert main(["spans", "show", "abcd", "--trace-dir", directory]) == 1
    assert "ambiguous" in capsys.readouterr().err

    monkeypatch.setenv("REPRO_TRACE_DIR", directory)
    assert main(["spans", "list"]) == 0
    assert "ffff1234deadbeef" in capsys.readouterr().out
