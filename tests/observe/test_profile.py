"""Per-procedure VM profiles: conservation, ranking, and the
no-profiling differential (counters bit-identical with profiling off).
"""

import pytest

from repro.config import CompilerConfig
from repro.pipeline import compile_source, run_compiled, run_source

TAK = (
    "(define (tak x y z)\n"
    "  (if (not (< y x)) z\n"
    "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))\n"
    "(tak 8 4 2)\n"
)

CTAK = """
(define (ctak x y z) (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x)) (k z)
      (ctak-aux k
        (call/cc (lambda (k) (ctak-aux k (- x 1) y z)))
        (call/cc (lambda (k) (ctak-aux k (- y 1) z x)))
        (call/cc (lambda (k) (ctak-aux k (- z 1) x y))))))
(ctak 6 4 2)
"""


def assert_conserved(result):
    """Profile totals must equal the run's counters *exactly*."""
    c = result.counters
    totals = result.profile.totals()
    assert totals["cycles"] == c.cycles
    assert totals["instructions"] == c.instructions
    assert totals["stack_reads"] == c.stack_reads
    assert totals["stack_writes"] == c.stack_writes
    assert totals["calls"] == c.calls
    assert totals["tail_calls"] == c.tail_calls
    assert totals["prim_calls"] == c.prim_calls
    assert totals["moves"] == c.moves
    assert totals["branches"] == c.branches
    assert totals["mispredicts"] == c.mispredicts
    assert totals["closure_allocs"] == c.closure_allocs


@pytest.mark.parametrize(
    "config",
    [
        CompilerConfig(),
        CompilerConfig.baseline(),
        CompilerConfig(save_convention="callee"),
        CompilerConfig(restore_strategy="lazy"),
        CompilerConfig(branch_prediction="static-calls"),
    ],
    ids=["paper", "baseline", "callee", "lazy-restore", "predicted"],
)
def test_conservation_tak(config):
    result = run_source(TAK, config, profile=True)
    assert result.value == 3
    assert_conserved(result)


def test_conservation_with_continuations():
    result = run_source(CTAK, CompilerConfig(), profile=True)
    assert result.value == 3
    assert_conserved(result)


def test_profile_attributes_to_procedures():
    result = run_source(TAK, CompilerConfig(), profile=True)
    by_name = {p.name: p for p in result.profile.profiles.values()}
    assert "tak" in by_name
    tak = by_name["tak"]
    # tak does essentially all the work in this program.
    assert tak.cycles > 0.9 * result.counters.cycles
    assert tak.saves == result.counters.saves
    assert tak.restores == result.counters.restores
    # Every call and tail call in this program targets tak.
    assert tak.activations == result.counters.calls + result.counters.tail_calls


def test_hot_ranking_sorted_and_bounded():
    result = run_source(TAK, CompilerConfig(), profile=True)
    ranked = result.profile.hot()
    cycles = [p.cycles for p in ranked]
    assert cycles == sorted(cycles, reverse=True)
    assert result.profile.hot(1) == ranked[:1]


def test_counters_bit_identical_without_profiling():
    plain = run_source(TAK, CompilerConfig())
    profiled = run_source(TAK, CompilerConfig(), profile=True)
    assert plain.profile is None
    assert profiled.profile is not None
    assert plain.counters.as_dict() == profiled.counters.as_dict()
    assert plain.value == profiled.value


def test_counters_as_dict_stable_keys():
    result = run_source(TAK, CompilerConfig())
    d = result.counters.as_dict()
    assert list(d["stack_reads"]) == sorted(d["stack_reads"])
    assert list(d["stack_writes"]) == sorted(d["stack_writes"])
    assert d["stack_refs"] == sum(d["stack_reads"].values()) + sum(
        d["stack_writes"].values()
    )
    assert d["saves"] == d["stack_writes"].get("save", 0)
    assert d["restores"] == d["stack_reads"].get("restore", 0)
    for key in ("instructions", "cycles", "moves", "calls", "tail_calls"):
        assert isinstance(d[key], int)


def test_profiler_with_run_compiled():
    compiled = compile_source(TAK, CompilerConfig())
    result = run_compiled(compiled, profile=True)
    assert_conserved(result)
    rows = result.profile.as_rows()
    assert rows and rows[0]["cycles"] >= rows[-1]["cycles"]
    for row in rows:
        assert row["stack_refs"] == sum(row["stack_reads"].values()) + sum(
            row["stack_writes"].values()
        )
