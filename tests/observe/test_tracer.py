"""Tracer semantics: span nesting, event payloads, null-tracer cost."""

import gc
import sys

import pytest

from repro.observe import NULL_TRACER, TraceError, Tracer
from repro.observe.tracer import _NULL_SPAN


class FakeClock:
    """A deterministic nanosecond clock advancing 10µs per reading."""

    def __init__(self) -> None:
        self.t = 0

    def __call__(self) -> int:
        self.t += 10_000
        return self.t


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("expand"):
            pass
        (span,) = tracer.spans
        assert span.name == "expand"
        assert span.dur is not None and span.dur > 0
        assert span.dur_s == span.dur / 1e9

    def test_span_nesting_well_formed(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("compile"):
            with tracer.span("expand"):
                pass
            with tracer.span("allocate"):
                with tracer.span("liveness"):
                    pass
        names = [s.name for s in tracer.spans]
        # Completion order: children before parents.
        assert names == ["expand", "liveness", "allocate", "compile"]
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["compile"].depth == 0 and by_name["compile"].parent is None
        assert by_name["expand"].parent == "compile" and by_name["expand"].depth == 1
        assert by_name["liveness"].parent == "allocate"
        assert by_name["liveness"].depth == 2
        assert tracer.open_spans == []
        # Children are contained within their parent's interval.
        parent, child = by_name["compile"], by_name["expand"]
        assert parent.start <= child.start
        assert child.start + child.dur <= parent.start + parent.dur

    def test_out_of_order_exit_raises(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(TraceError):
            outer.__exit__(None, None, None)

    def test_events_carry_typed_payloads(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("save", reg="t0", proc="tak", pc=12)
        (event,) = tracer.events
        assert event.name == "save"
        assert event.args == {"reg": "t0", "proc": "tak", "pc": 12}
        assert event.ts > 0

    def test_span_set_attaches_stats(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("allocate") as sp:
            sp.set(registers_assigned=50)
        assert tracer.spans[0].args == {"registers_assigned": 50}

    def test_pass_timings_aggregates_repeats(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("expand"):
                pass
        timings = tracer.pass_timings()
        assert set(timings) == {"expand"}
        assert timings["expand"] > 0


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.events == ()

    def test_span_is_shared_singleton(self):
        # No per-call allocation: every span() call returns the one
        # module-level null span.
        a = NULL_TRACER.span("x", attr=1)
        b = NULL_TRACER.span("y")
        assert a is b is _NULL_SPAN
        with a as sp:
            assert sp.set(anything=2) is sp
        assert sp.dur_s == 0.0

    def test_event_short_circuits(self):
        assert NULL_TRACER.event("save") is None
        assert NULL_TRACER.events == ()

    def test_event_zero_net_allocation(self):
        # The VM dispatch path relies on the null tracer being free:
        # hammering event() must not grow the heap.
        for _ in range(100):  # warm up any caches
            NULL_TRACER.event("save")
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            NULL_TRACER.event("save")
        after = sys.getallocatedblocks()
        assert after - before <= 4
