"""``repro top``'s dashboard rendering and refresh loop, and the
``repro metrics`` / ``repro top`` CLI surface."""

import json

from repro.cli import main
from repro.observe.catalog import declare
from repro.observe.metrics import MetricsRegistry
from repro.observe.top import render_dashboard, top_loop


def _service_registry():
    registry = MetricsRegistry()
    declare(registry, "repro_requests").labels(op="compile", status="ok").inc(8)
    declare(registry, "repro_requests").labels(op="compile", status="compile").inc(2)
    lat = declare(registry, "repro_request_seconds").labels(op="compile")
    for _ in range(10):
        lat.observe(0.015)
    declare(registry, "repro_cache_hits").labels(tier="memory").inc(6)
    declare(registry, "repro_cache_misses").inc(4)
    declare(registry, "repro_cache_corruptions").inc(1)
    declare(registry, "repro_pool_submitted").inc(10)
    declare(registry, "repro_pool_tasks").labels(outcome="ok").inc(9)
    declare(registry, "repro_pool_tasks").labels(outcome="error").inc(1)
    declare(registry, "repro_pool_worker_events").labels(event="spawn").inc(2)
    declare(registry, "repro_vm_runs").inc(3)
    declare(registry, "repro_vm_instructions").observe(120000)
    declare(registry, "repro_shuffle_size").observe(3)
    declare(registry, "repro_flight_dumps").labels(reason="worker-crash").inc(1)
    return registry


def _farm_registry():
    registry = _service_registry()
    declare(registry, "repro_serve_clients").set(3)
    declare(registry, "repro_serve_rejects").labels(reason="queue-full").inc(2)
    declare(registry, "repro_serve_rejects").labels(reason="draining").inc(1)
    declare(registry, "repro_serve_inflight_dedup").inc(5)
    declare(registry, "repro_serve_tenant_queue_depth").labels(
        tenant="default"
    ).set(2)
    declare(registry, "repro_serve_tenant_queue_depth").labels(
        tenant="ci"
    ).set(1)
    serve_lat = declare(registry, "repro_serve_request_seconds").labels(
        op="compile"
    )
    for _ in range(4):
        serve_lat.observe(0.02)
    return registry


def test_render_dashboard_sections():
    text = render_dashboard(_service_registry().snapshot())
    assert "requests" in text
    assert 'op="compile",status="ok"' in text
    assert "hit rate" in text
    assert "60.0%" in text
    assert "corruptions" in text
    assert "submitted" in text
    assert "instructions/run" in text
    assert "shuffle moves/plan" in text
    assert 'flight dumps: reason="worker-crash"=1' in text


def test_render_dashboard_farm_panel():
    """Regression: the net-farm metrics (PR 7) must show up in repro
    top — clients, dedup, per-reason rejects, per-tenant inflight, and
    the front-door latency histogram."""
    text = render_dashboard(_farm_registry().snapshot())
    assert "farm" in text.splitlines()
    assert "clients connected" in text
    assert "dedup hits" in text
    assert 'reject reason="queue-full"' in text
    assert 'reject reason="draining"' in text
    assert "inflight" in text
    assert 'tenant="ci"=1' in text
    assert 'front-door op="compile"' in text


def test_render_dashboard_without_farm_metrics_has_no_farm_panel():
    text = render_dashboard(_service_registry().snapshot())
    assert "farm" not in text.splitlines()


def test_render_dashboard_tracing_panel_and_exemplar():
    registry = _farm_registry()
    declare(registry, "repro_trace_traces").labels(decision="sampled").inc(7)
    declare(registry, "repro_trace_traces").labels(decision="error").inc(1)
    declare(registry, "repro_trace_spans").inc(42)
    registry.record_exemplar(
        "repro_serve_request_seconds", ("op",), ("compile",), 0.25,
        "feedface01020304",
    )
    text = render_dashboard(registry.snapshot())
    assert "tracing" in text.splitlines()
    assert 'decision="sampled"=7' in text
    assert "spans stored" in text
    assert "slowest exemplar" in text
    assert "trace feedface01020304" in text


def test_render_dashboard_empty_snapshot():
    text = render_dashboard(MetricsRegistry().snapshot())
    assert "(no service metrics recorded yet)" in text


def test_top_loop_renders_and_waits(tmp_path):
    path = tmp_path / "metrics.json"
    frames = []
    # Missing file: a waiting frame, not an error.
    assert top_loop(str(path), interval=0, iterations=1, write=frames.append) == 0
    assert "waiting for metrics" in frames[0]
    _service_registry().dump(str(path))
    frames.clear()
    assert top_loop(
        str(path), interval=0, iterations=2, write=frames.append, clear=True
    ) == 0
    rendered = "".join(frames)
    assert rendered.count("repro top — pid") == 2
    assert "\x1b[2J" in rendered  # screen clear between frames
    # Corrupt file: back to waiting.
    path.write_text("{broken")
    frames.clear()
    top_loop(str(path), interval=0, iterations=1, write=frames.append)
    assert "waiting for metrics" in frames[0]


def test_cli_metrics_human_json_openmetrics_lint(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    _service_registry().dump(str(path))

    assert main(["metrics", "--path", str(path)]) == 0
    assert "hit rate" in capsys.readouterr().out

    assert main(["metrics", "--path", str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counters"]['repro_cache_hits{tier="memory"}'] == 6

    assert main(["metrics", "--path", str(path), "--openmetrics"]) == 0
    out = capsys.readouterr().out
    assert out.endswith("# EOF\n")
    assert "repro_cache_hits_total" in out

    assert main(["metrics", "--path", str(path), "--lint"]) == 0
    assert "lint passed" in capsys.readouterr().err


def test_cli_metrics_missing_and_corrupt(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["metrics", "--path", str(missing)]) == 1
    assert "cannot read" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text('{"not": "a snapshot"}')
    assert main(["metrics", "--path", str(bad)]) == 1
    assert "corrupt snapshot" in capsys.readouterr().err


def test_cli_top_once(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    _service_registry().dump(str(path))
    assert main(["top", "--path", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert out.count("repro top — pid") == 1
    assert "\x1b[2J" not in out  # --once never clears the screen
