"""Exporters: Chrome trace_event JSON round-trip, metrics JSON shape,
and the text profile (golden-ish checks on a tiny program)."""

import json

from repro.config import CompilerConfig
from repro.observe import Tracer, chrome_trace, metrics_dict, text_profile
from repro.pipeline import compile_source, run_compiled

TINY = "(define (double x) (+ x x)) (double 21)"

# Every pass the pipeline must wrap in a span, in order.
PIPELINE_PASSES = ["read", "expand", "convert", "closure", "allocate", "codegen"]


def traced_run(source=TINY, config=None, profile=True):
    tracer = Tracer()
    compiled = compile_source(source, config or CompilerConfig(), tracer=tracer)
    result = run_compiled(compiled, tracer=tracer, profile=profile)
    return tracer, result


class TestChromeTrace:
    def test_round_trips_through_json(self):
        tracer, result = traced_run()
        doc = chrome_trace(tracer, counters=result.counters, profile=result.profile)
        back = json.loads(json.dumps(doc))
        assert back["traceEvents"]

    def test_complete_events_have_valid_fields(self):
        tracer, result = traced_run()
        doc = json.loads(
            json.dumps(
                chrome_trace(tracer, counters=result.counters, profile=result.profile)
            )
        )
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans
        for event in spans:
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert event["pid"] == 1 and isinstance(event["tid"], int)

    def test_one_span_per_compiler_pass(self):
        tracer, result = traced_run()
        doc = chrome_trace(tracer)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        for name in PIPELINE_PASSES:
            assert names.count(name) == 1, name
        assert "execute" in names

    def test_profile_rows_ride_as_instants(self):
        tracer, result = traced_run()
        doc = chrome_trace(tracer, profile=result.profile)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["cat"] == "vm-profile" for e in instants)
        for event in instants:
            assert event["s"] == "t"

    def test_counters_in_other_data(self):
        tracer, result = traced_run()
        doc = chrome_trace(tracer, counters=result.counters)
        assert doc["otherData"]["counters"] == result.counters.as_dict()


class TestMetricsDict:
    def test_shape(self):
        tracer, result = traced_run()
        doc = metrics_dict(
            counters=result.counters,
            tracer=tracer,
            profile=result.profile,
            value="42",
        )
        doc = json.loads(json.dumps(doc))
        assert doc["value"] == "42"
        assert doc["counters"]["instructions"] == result.counters.instructions
        for name in PIPELINE_PASSES:
            assert doc["passes"][name]["seconds"] >= 0
        assert doc["passes"]["allocate"]["registers_assigned"] > 0
        assert doc["procedures"]
        assert "cycles" in doc["procedures"][0]

    def test_uses_counters_as_dict(self):
        tracer, result = traced_run()
        doc = metrics_dict(counters=result.counters)
        assert doc["counters"] == result.counters.as_dict()

    def test_null_tracer_omits_passes(self):
        from repro.observe import NULL_TRACER

        _, result = traced_run(profile=False)
        doc = metrics_dict(counters=result.counters, tracer=NULL_TRACER)
        assert "passes" not in doc


class TestTextProfile:
    def test_sections_present(self):
        tracer, result = traced_run()
        text = text_profile(
            counters=result.counters, tracer=tracer, profile=result.profile
        )
        assert "compiler passes" in text
        assert "counters" in text
        assert "hot procedures" in text
        for name in PIPELINE_PASSES:
            assert name in text
        assert "double" in text
