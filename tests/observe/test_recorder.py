"""The flight recorder: ring-buffer bounds, dump artifacts, field
sanitization."""

import json

from repro import __version__
from repro.observe.recorder import FlightRecorder, get_flight_recorder


def test_ring_keeps_only_most_recent_events():
    recorder = FlightRecorder(capacity=4)
    for i in range(10):
        recorder.record("tick", i=i)
    assert len(recorder) == 4
    assert recorder.recorded == 10
    events = recorder.events()
    assert [e["args"]["i"] for e in events] == [6, 7, 8, 9]
    # Sequence numbers are global, not ring-relative.
    assert [e["seq"] for e in events] == [7, 8, 9, 10]


def test_events_are_ordered_and_timestamped():
    recorder = FlightRecorder(capacity=8)
    recorder.record("a")
    recorder.record("b", detail="x")
    first, second = recorder.events()
    assert first["kind"] == "a" and second["kind"] == "b"
    assert second["mono_s"] >= first["mono_s"]
    assert second["args"] == {"detail": "x"}


def test_record_kind_cannot_collide_with_fields():
    recorder = FlightRecorder(capacity=2)
    # ``kind`` is positional-only, so a payload field named "kind" is fine.
    recorder.record("task", kind="compile")
    (event,) = recorder.events()
    assert event["kind"] == "task"
    assert event["args"]["kind"] == "compile"


def test_large_fields_are_truncated():
    recorder = FlightRecorder(capacity=2)
    recorder.record("big", payload="x" * 100_000)
    (event,) = recorder.events()
    assert len(event["args"]["payload"]) < 5000
    assert event["args"]["payload"].endswith("…")


def test_non_jsonable_fields_become_reprs():
    recorder = FlightRecorder(capacity=2)
    recorder.record("obj", value={1, 2})
    (event,) = recorder.events()
    json.dumps(event)  # must be serializable
    assert "1" in event["args"]["value"]


def test_dump_document_shape():
    recorder = FlightRecorder(capacity=2)
    for i in range(5):
        recorder.record("tick", i=i)
    doc = recorder.dump("worker-crash", extra={"task_id": 7})
    assert doc["flight_recorder"] == 1
    assert doc["version"] == __version__
    assert doc["reason"] == "worker-crash"
    assert doc["recorded"] == 5
    assert doc["dropped"] == 3
    assert doc["context"] == {"task_id": 7}
    assert [e["args"]["i"] for e in doc["events"]] == [3, 4]


def test_dump_to_writes_artifact(tmp_path):
    recorder = FlightRecorder(capacity=4)
    recorder.record("request", op="compile")
    out = tmp_path / "flights"
    path = recorder.dump_to(str(out), "oracle divergence!", extra={"seed": 3})
    assert path.startswith(str(out))
    assert "oracle-divergence" in path  # slugged reason
    doc = json.loads(open(path).read())
    assert doc["reason"] == "oracle divergence!"
    assert doc["context"] == {"seed": 3}
    # A second dump gets a distinct file.
    path2 = recorder.dump_to(str(out), "oracle divergence!")
    assert path2 != path
    assert recorder.dumps == 2
    # No temp droppings left behind.
    leftovers = [p.name for p in out.iterdir() if p.name.startswith(".flight-")]
    assert leftovers == []


def test_clear_resets_ring_not_seq():
    recorder = FlightRecorder(capacity=4)
    recorder.record("a")
    recorder.clear()
    assert len(recorder) == 0
    recorder.record("b")
    assert recorder.events()[0]["seq"] == 2


def test_global_recorder_is_shared():
    assert get_flight_recorder() is get_flight_recorder()
