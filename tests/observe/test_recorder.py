"""The flight recorder: ring-buffer bounds, dump artifacts, field
sanitization."""

import json
import threading

from repro import __version__
from repro.observe.recorder import (
    FlightRecorder,
    active_trace,
    get_flight_recorder,
    set_active_trace,
)


def test_ring_keeps_only_most_recent_events():
    recorder = FlightRecorder(capacity=4)
    for i in range(10):
        recorder.record("tick", i=i)
    assert len(recorder) == 4
    assert recorder.recorded == 10
    events = recorder.events()
    assert [e["args"]["i"] for e in events] == [6, 7, 8, 9]
    # Sequence numbers are global, not ring-relative.
    assert [e["seq"] for e in events] == [7, 8, 9, 10]


def test_events_are_ordered_and_timestamped():
    recorder = FlightRecorder(capacity=8)
    recorder.record("a")
    recorder.record("b", detail="x")
    first, second = recorder.events()
    assert first["kind"] == "a" and second["kind"] == "b"
    assert second["mono_s"] >= first["mono_s"]
    assert second["args"] == {"detail": "x"}


def test_record_kind_cannot_collide_with_fields():
    recorder = FlightRecorder(capacity=2)
    # ``kind`` is positional-only, so a payload field named "kind" is fine.
    recorder.record("task", kind="compile")
    (event,) = recorder.events()
    assert event["kind"] == "task"
    assert event["args"]["kind"] == "compile"


def test_large_fields_are_truncated():
    recorder = FlightRecorder(capacity=2)
    recorder.record("big", payload="x" * 100_000)
    (event,) = recorder.events()
    assert len(event["args"]["payload"]) < 5000
    assert event["args"]["payload"].endswith("…")


def test_non_jsonable_fields_become_reprs():
    recorder = FlightRecorder(capacity=2)
    recorder.record("obj", value={1, 2})
    (event,) = recorder.events()
    json.dumps(event)  # must be serializable
    assert "1" in event["args"]["value"]


def test_dump_document_shape():
    recorder = FlightRecorder(capacity=2)
    for i in range(5):
        recorder.record("tick", i=i)
    doc = recorder.dump("worker-crash", extra={"task_id": 7})
    assert doc["flight_recorder"] == 1
    assert doc["version"] == __version__
    assert doc["reason"] == "worker-crash"
    assert doc["recorded"] == 5
    assert doc["dropped"] == 3
    assert doc["context"] == {"task_id": 7}
    assert [e["args"]["i"] for e in doc["events"]] == [3, 4]


def test_dump_to_writes_artifact(tmp_path):
    recorder = FlightRecorder(capacity=4)
    recorder.record("request", op="compile")
    out = tmp_path / "flights"
    path = recorder.dump_to(str(out), "oracle divergence!", extra={"seed": 3})
    assert path.startswith(str(out))
    assert "oracle-divergence" in path  # slugged reason
    doc = json.loads(open(path).read())
    assert doc["reason"] == "oracle divergence!"
    assert doc["context"] == {"seed": 3}
    # A second dump gets a distinct file.
    path2 = recorder.dump_to(str(out), "oracle divergence!")
    assert path2 != path
    assert recorder.dumps == 2
    # No temp droppings left behind.
    leftovers = [p.name for p in out.iterdir() if p.name.startswith(".flight-")]
    assert leftovers == []


def test_clear_resets_ring_not_seq():
    recorder = FlightRecorder(capacity=4)
    recorder.record("a")
    recorder.clear()
    assert len(recorder) == 0
    recorder.record("b")
    assert recorder.events()[0]["seq"] == 2


def test_global_recorder_is_shared():
    assert get_flight_recorder() is get_flight_recorder()


def test_events_and_dumps_carry_the_active_trace():
    recorder = FlightRecorder(capacity=4)
    set_active_trace("cafe0123deadbeef")
    try:
        recorder.record("request", op="compile")
        (event,) = recorder.events()
        assert event["args"]["trace"] == "cafe0123deadbeef"
        doc = recorder.dump("boom")
        assert doc["trace"] == "cafe0123deadbeef"
    finally:
        set_active_trace(None)
    assert active_trace() is None
    # With no active trace, events stay clean.
    recorder.record("request", op="run")
    assert "trace" not in recorder.events()[-1]["args"]


def test_explicit_trace_field_wins_over_active_trace():
    recorder = FlightRecorder(capacity=4)
    set_active_trace("cafe0123deadbeef")
    try:
        recorder.record("request", trace="explicit")
    finally:
        set_active_trace(None)
    assert recorder.events()[0]["args"]["trace"] == "explicit"


def test_concurrent_dumps_get_distinct_intact_files(tmp_path):
    """Two threads dumping at the same instant must produce two
    distinct flight-*.json files, each valid JSON (satellite: the dump
    counter + filename choice + write are one critical section)."""
    recorder = FlightRecorder(capacity=8)
    for i in range(6):
        recorder.record("tick", i=i)
    out = tmp_path / "flights"
    paths = []
    errors = []
    gate = threading.Barrier(2)

    def dump(tag):
        try:
            gate.wait(timeout=5)
            paths.append(recorder.dump_to(str(out), f"crash-{tag}"))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=dump, args=(tag,)) for tag in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not errors
    assert len(paths) == 2
    assert len(set(paths)) == 2
    for path in paths:
        doc = json.loads(open(path).read())  # intact, not interleaved
        assert doc["flight_recorder"] == 1
        assert len(doc["events"]) == 6
    assert recorder.dumps == 2
