"""End-to-end acceptance: ``repro trace`` on a Gabriel benchmark
produces a Chrome-loadable trace with one span per compiler pass and a
per-procedure profile that conserves the run's counters exactly."""

import json

import pytest

from repro.benchsuite.runner import run_benchmark
from repro.cli import main
from repro.config import CompilerConfig
from repro.observe import Tracer

PIPELINE_PASSES = ["read", "expand", "convert", "closure", "allocate", "codegen"]


@pytest.fixture
def tak_file(tmp_path):
    # The Gabriel tak benchmark, scaled down so the suite stays fast.
    path = tmp_path / "tak.scm"
    path.write_text(
        "(define (tak x y z)\n"
        "  (if (not (< y x)) z\n"
        "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))\n"
        "(tak 12 8 4)\n"
    )
    return str(path)


def test_trace_cli_chrome_output(tak_file, tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", tak_file, "--out", str(out), "--profile"]) == 0
    err = capsys.readouterr().err
    assert "; value 5" in err

    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    names = [e["name"] for e in spans]
    for name in PIPELINE_PASSES:
        assert names.count(name) == 1, f"expected exactly one {name!r} span"
    assert "execute" in names
    for event in spans:
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["dur"], (int, float))

    # Per-procedure rows ride along; their totals must conserve the
    # counters recorded in otherData.
    rows = [e["args"] for e in events if e.get("cat") == "vm-profile"]
    assert rows
    counters = doc["otherData"]["counters"]
    assert sum(r["cycles"] for r in rows) == counters["cycles"]
    assert sum(r["instructions"] for r in rows) == counters["instructions"]
    assert sum(r["stack_refs"] for r in rows) == counters["stack_refs"]
    assert sum(r["saves"] for r in rows) == counters["saves"]
    assert sum(r["restores"] for r in rows) == counters["restores"]


def test_trace_cli_text_output(tak_file, capsys):
    assert main(["trace", tak_file, "--format", "text"]) == 0
    out = capsys.readouterr().out
    assert "compiler passes" in out
    assert "hot procedures" in out
    assert "tak" in out


def test_trace_cli_json_output(tak_file, capsys):
    assert main(["trace", tak_file, "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["value"] == "5"
    assert set(PIPELINE_PASSES) <= set(doc["passes"])
    totals = doc["counters"]
    assert sum(p["cycles"] for p in doc["procedures"]) == totals["cycles"]


def test_run_benchmark_with_tracer_and_profile():
    # The benchsuite path: the real Gabriel tak under full observation.
    tracer = Tracer()
    run = run_benchmark("tak", CompilerConfig(), tracer=tracer, profile=True)
    assert set(PIPELINE_PASSES) <= set(tracer.pass_timings())
    totals = run.result.profile.totals()
    assert totals["cycles"] == run.counters.cycles
    assert totals["instructions"] == run.counters.instructions
    assert totals["stack_reads"] == run.counters.stack_reads
    assert totals["stack_writes"] == run.counters.stack_writes
