"""The metrics registry: bucket semantics, exact cross-process merge,
quantile error bounds, exposition formats, and the catalog."""

import json
import math

import pytest

from repro.observe.catalog import CATALOG, declare, declare_all, markdown_table
from repro.observe.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    histogram_summary,
    lint_openmetrics,
    load_snapshot,
    log_buckets,
    merge_snapshots,
    render_openmetrics,
)


# ---------------------------------------------------------------------------
# Buckets
# ---------------------------------------------------------------------------


def test_log_buckets_are_1_2_5_series():
    assert log_buckets(0, 2) == (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


def test_log_buckets_negative_decades_are_clean_doubles():
    # 5 / 1e6 is the double that renders as "5e-06"; 5 * 1e-06 is not.
    bounds = log_buckets(-6, -6)
    assert [repr(b) for b in bounds] == ["1e-06", "2e-06", "5e-06"]


def test_bucket_bounds_deterministic_across_calls():
    assert log_buckets(-6, 2) == LATENCY_BUCKETS
    assert log_buckets(0, 9) == COUNT_BUCKETS


def test_histogram_boundary_value_lands_in_le_bucket():
    hist = Histogram((1.0, 10.0, 100.0))
    hist.observe(10.0)  # exactly on a bound: belongs to le="10" (le semantics)
    assert hist.counts == [0, 1, 0, 0]
    hist.observe(10.0000001)
    assert hist.counts == [0, 1, 1, 0]
    hist.observe(0.0)
    assert hist.counts == [1, 1, 1, 0]
    hist.observe(1e9)  # overflow bucket
    assert hist.counts == [1, 1, 1, 1]
    assert hist.count == 4


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram((2.0, 1.0))


def test_quantile_within_one_bucket_width():
    hist = Histogram(LATENCY_BUCKETS)
    values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
    for v in values:
        hist.observe(v)
    values.sort()
    for q in (0.50, 0.90, 0.99):
        true = values[min(len(values) - 1, int(q * len(values)))]
        estimate = hist.quantile(q)
        # The estimate must land inside the true value's bucket, i.e. be
        # within one bucket width.
        import bisect

        i = bisect.bisect_left(hist.bounds, true)
        lo = hist.bounds[i - 1] if i > 0 else 0.0
        hi = hist.bounds[min(i, len(hist.bounds) - 1)]
        width = hi - lo
        assert abs(estimate - true) <= width + 1e-12, (q, true, estimate, width)


def test_quantile_edge_cases():
    hist = Histogram((1.0, 2.0))
    assert hist.quantile(0.5) == 0.0  # empty
    hist.observe(100.0)  # overflow only
    assert hist.quantile(0.5) == 2.0  # clamped to last bound
    with pytest.raises(ValueError):
        hist.quantile(1.5)


# ---------------------------------------------------------------------------
# Registry + exact merge
# ---------------------------------------------------------------------------


def _populate(registry, scale=1):
    c = registry.counter("repro_test_hits", "hits", ("tier",))
    c.labels(tier="memory").inc(3 * scale)
    c.labels(tier="disk").inc(scale)
    registry.gauge("repro_test_depth", "queue depth").set(7 * scale)
    h = registry.histogram("repro_test_seconds", "latency", buckets=LATENCY_BUCKETS)
    for i in range(10 * scale):
        h.observe((i + 1) / 1000.0)


def test_merge_two_registries_equals_combined_registry():
    a, b = MetricsRegistry(), MetricsRegistry()
    _populate(a, scale=1)
    _populate(b, scale=3)
    combined = MetricsRegistry()
    _populate(combined, scale=1)
    _populate(combined, scale=3)

    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    want = combined.snapshot()
    # Exact, not approximate: counters and every bucket count match.
    assert merged["counters"] == want["counters"]
    assert merged["histograms"] == want["histograms"]


def test_diff_snapshot_then_merge_is_exact():
    worker = MetricsRegistry()
    _populate(worker, scale=2)
    base = worker.snapshot()
    # More work happens after the base snapshot...
    worker.counter("repro_test_hits", labels=("tier",)).labels(tier="memory").inc(5)
    worker.histogram("repro_test_seconds").observe(0.25)
    delta = worker.diff_snapshot(base)

    # ...and only the delta lands in the parent.
    parent = MetricsRegistry()
    parent.merge_snapshot(delta)
    snap = parent.snapshot()
    assert snap["counters"] == {'repro_test_hits{tier="memory"}': 5}
    assert sum(snap["histograms"]["repro_test_seconds"]["counts"]) == 1
    assert snap["histograms"]["repro_test_seconds"]["sum"] == pytest.approx(0.25)


def test_diff_snapshot_idle_interval_is_empty():
    registry = MetricsRegistry()
    _populate(registry)
    base = registry.snapshot()
    delta = registry.diff_snapshot(base)
    assert delta["counters"] == {}
    assert delta["histograms"] == {}


def test_merge_rejects_mismatched_bounds():
    a = MetricsRegistry()
    a.histogram("repro_test_seconds", buckets=(1.0, 2.0)).observe(1.5)
    b = MetricsRegistry()
    b.histogram("repro_test_seconds", buckets=(1.0, 2.0, 3.0)).observe(1.5)
    with pytest.raises(ValueError):
        b.merge_snapshot(a.snapshot())


def test_label_values_with_quotes_round_trip():
    registry = MetricsRegistry()
    family = registry.counter("repro_test_ops", "ops", ("op",))
    family.labels(op='we"ird\nop').inc(2)
    merged = merge_snapshots([registry.snapshot(), registry.snapshot()])
    (key,) = merged["counters"]
    assert merged["counters"][key] == 4
    text = render_openmetrics(merged)
    assert lint_openmetrics(text) == []


def test_counter_rejects_negative():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("repro_test_hits").inc(-1)


def test_registry_redeclaration_kind_conflict():
    registry = MetricsRegistry()
    registry.counter("repro_test_x")
    with pytest.raises(ValueError):
        registry.gauge("repro_test_x")


def test_dump_and_load_round_trip(tmp_path):
    registry = MetricsRegistry()
    _populate(registry)
    path = tmp_path / "nested" / "metrics.json"
    registry.dump(str(path))
    snap = load_snapshot(str(path))
    assert snap["counters"] == registry.snapshot()["counters"]
    with pytest.raises(ValueError):
        (tmp_path / "bad.json").write_text(json.dumps({"not": "a snapshot"}))
        load_snapshot(str(tmp_path / "bad.json"))


def test_histogram_summary_matches_histogram():
    registry = MetricsRegistry()
    h = registry.histogram("repro_test_seconds")
    for v in (0.001, 0.002, 0.004, 0.5):
        h.observe(v)
    doc = registry.snapshot()["histograms"]["repro_test_seconds"]
    summary = histogram_summary(doc)
    assert summary["count"] == 4
    assert summary["sum"] == pytest.approx(0.507)
    assert 0 < summary["p50"] <= summary["p90"] <= summary["p99"]


# ---------------------------------------------------------------------------
# OpenMetrics exposition + lint
# ---------------------------------------------------------------------------


def test_render_openmetrics_shape():
    registry = MetricsRegistry()
    _populate(registry)
    text = render_openmetrics(registry.snapshot())
    assert text.endswith("# EOF\n")
    assert "# TYPE repro_test_hits counter" in text
    assert 'repro_test_hits_total{tier="memory"} 3' in text
    assert "repro_test_depth 7" in text
    assert 'repro_test_seconds_bucket{le="+Inf"} 10' in text
    assert "repro_test_seconds_count 10" in text
    assert "repro_test_seconds_sum" in text


def test_lint_accepts_own_rendering():
    registry = MetricsRegistry()
    _populate(registry)
    assert lint_openmetrics(render_openmetrics(registry.snapshot())) == []


def test_lint_catches_violations():
    assert any(
        "EOF" in p for p in lint_openmetrics("# TYPE x counter\nx_total 1\n")
    )
    assert any(
        "_total" in p
        for p in lint_openmetrics("# TYPE x counter\nx 1\n# EOF\n")
    )
    assert any(
        "no TYPE" in p for p in lint_openmetrics("y_total 1\n# EOF\n")
    )
    assert any(
        "duplicate series" in p
        for p in lint_openmetrics(
            "# TYPE x gauge\nx 1\nx 2\n# EOF\n"
        )
    )
    bad_hist = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="2"} 3\n'  # not cumulative
        'h_bucket{le="+Inf"} 5\n'
        "h_sum 1\n"
        "h_count 5\n"
        "# EOF\n"
    )
    assert any("cumulative" in p for p in lint_openmetrics(bad_hist))
    no_inf = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        "h_sum 1\n"
        "h_count 5\n"
        "# EOF\n"
    )
    assert any("+Inf" in p for p in lint_openmetrics(no_inf))
    assert any(
        "non-numeric" in p
        for p in lint_openmetrics("# TYPE x gauge\nx nope\n# EOF\n")
    )


def test_openmetrics_merge_then_render_consistent():
    a, b = MetricsRegistry(), MetricsRegistry()
    _populate(a, 1)
    _populate(b, 2)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    text = render_openmetrics(merged)
    assert lint_openmetrics(text) == []
    assert 'repro_test_hits_total{tier="memory"} 9' in text  # 3 + 6


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


def test_declare_all_covers_catalog_and_is_lintable():
    registry = MetricsRegistry()
    families = declare_all(registry)
    assert set(families) == {entry[0] for entry in CATALOG}
    assert lint_openmetrics(render_openmetrics(registry.snapshot())) == []


def test_declare_unknown_metric_is_an_error():
    with pytest.raises(KeyError):
        declare(MetricsRegistry(), "repro_not_a_metric")


def test_declare_is_idempotent():
    registry = MetricsRegistry()
    first = declare(registry, "repro_cache_hits")
    again = declare(registry, "repro_cache_hits")
    assert first is again


def test_catalog_names_follow_conventions():
    for name, kind, labels, buckets, help_text in CATALOG:
        assert name.startswith("repro_"), name
        assert help_text, f"{name}: missing help text"
        if kind == "histogram":
            assert buckets, f"{name}: histogram without buckets"
            assert list(buckets) == sorted(set(buckets))
            assert all(math.isfinite(b) for b in buckets)
        else:
            assert buckets is None, f"{name}: buckets on a {kind}"


def test_markdown_table_lists_every_metric():
    table = markdown_table()
    for entry in CATALOG:
        assert entry[0] in table
    assert table.splitlines()[0].startswith("| metric ")


def test_docs_table_in_sync_with_catalog():
    import os

    doc_path = os.path.join(
        os.path.dirname(__file__), "..", "..", "docs", "observability.md"
    )
    text = open(doc_path).read()
    begin = text.index("<!-- metric-catalog:begin -->")
    end = text.index("<!-- metric-catalog:end -->")
    embedded = text[begin:end].splitlines()[1:]
    embedded = "\n".join(line for line in embedded if line.strip())
    assert embedded == markdown_table(), (
        "docs/observability.md metric table is stale — regenerate with "
        "repro.observe.catalog.markdown_table()"
    )
