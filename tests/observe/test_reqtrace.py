"""Request tracing: traceparent parsing, tail sampling, span trees,
worker payload absorption, trace metrics, exemplars."""

import pytest

from repro.observe.metrics import MetricsRegistry
from repro.observe.recorder import active_trace
from repro.observe.reqtrace import (
    ReqTracer,
    TailSampler,
    build_reqtracer,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.observe.spanstore import SpanStore, build_tree, load_trace


def make_tracer(tmp_path, rate=1.0, slowest_k=0, registry=None, **kwargs):
    store = SpanStore(str(tmp_path / "spans"), registry=registry)
    sampler = TailSampler(rate=rate, slowest_k=slowest_k, seed=0, **kwargs)
    return ReqTracer(store, sampler, registry=registry)


# ---------------------------------------------------------------------------
# traceparent
# ---------------------------------------------------------------------------


def test_traceparent_roundtrip():
    trace_id, span_id = new_trace_id(), new_span_id()
    text = format_traceparent(trace_id, span_id)
    assert parse_traceparent(text) == (trace_id, span_id)


@pytest.mark.parametrize(
    "bad",
    [None, 42, "", "nope", "aaaa-bbbb", "g" * 16 + "-" + "0" * 16,
     "0" * 16 + "-" + "0" * 15, "0" * 16 + "-" + "0" * 16 + "-extra"],
)
def test_malformed_traceparent_is_rejected_not_fatal(bad):
    assert parse_traceparent(bad) is None


def test_client_traceparent_owns_the_trace_id(tmp_path):
    tracer = make_tracer(tmp_path)
    parent = format_traceparent("ab" * 8, "cd" * 8)
    trace = tracer.start(traceparent=parent, op="compile")
    assert trace.trace_id == "ab" * 8
    trace.finish("ok")
    # The daemon's root span is a child of the client span.
    (records,) = [trace.records]
    root = [r for r in records if r["name"] == "request"]
    assert root[0]["parent"] == "cd" * 8


# ---------------------------------------------------------------------------
# The tail sampler
# ---------------------------------------------------------------------------


def test_errors_always_kept_even_at_rate_zero():
    sampler = TailSampler(rate=0.0, slowest_k=0, seed=1)
    for status in ("error", "overloaded", "timeout", "cancelled"):
        assert sampler.decide(status, 0.001) == (True, "error")


def test_ok_traces_dropped_at_rate_zero():
    sampler = TailSampler(rate=0.0, slowest_k=0, seed=1)
    assert sampler.decide("ok", 0.001) == (False, "dropped")


def test_slowest_k_kept_per_window():
    sampler = TailSampler(rate=0.0, slowest_k=1, window=100, seed=1)
    keep, reason = sampler.decide("ok", 0.010)  # first fills the k-heap
    assert (keep, reason) == (True, "slow")
    assert sampler.decide("ok", 0.005) == (False, "dropped")
    assert sampler.decide("ok", 0.020) == (True, "slow")


def test_window_reset_forgets_the_slowest():
    sampler = TailSampler(rate=0.0, slowest_k=1, window=2, seed=1)
    assert sampler.decide("ok", 0.010)[1] == "slow"
    assert sampler.decide("ok", 0.001)[1] == "dropped"
    # Third decision starts a new window: the heap is empty again.
    assert sampler.decide("ok", 0.0001)[1] == "slow"


def test_rate_out_of_range_rejected():
    with pytest.raises(ValueError):
        TailSampler(rate=1.5)
    with pytest.raises(ValueError):
        TailSampler(rate=-0.1)


def test_rate_is_deterministic_under_seed():
    a = TailSampler(rate=0.5, slowest_k=0, seed=42)
    b = TailSampler(rate=0.5, slowest_k=0, seed=42)
    decisions_a = [a.decide("ok", 0.001) for _ in range(64)]
    decisions_b = [b.decide("ok", 0.001) for _ in range(64)]
    assert decisions_a == decisions_b
    assert any(keep for keep, _ in decisions_a)
    assert any(not keep for keep, _ in decisions_a)


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------


def test_span_tree_lands_in_the_store(tmp_path):
    tracer = make_tracer(tmp_path)
    trace = tracer.start(op="compile", id="r1")
    with trace.span("admission") as handle:
        handle.set(admitted=True)
    with trace.span("wait"):
        with trace.span("queue"):
            pass
    keep, reason = trace.finish("ok", cached=False)
    assert keep and reason in ("sampled", "slow")
    records = load_trace(str(tmp_path / "spans"), trace.trace_id)
    names = {r["name"] for r in records}
    assert names == {"request", "admission", "wait", "queue"}
    (root_tree,) = build_tree(records)
    root, kids = root_tree
    assert root["name"] == "request"
    assert root["attrs"]["status"] == "ok"
    assert {k[0]["name"] for k in kids} == {"admission", "wait"}
    wait = next(k for k in kids if k[0]["name"] == "wait")
    assert wait[1][0][0]["name"] == "queue"


def test_finish_is_idempotent_and_clears_active_trace(tmp_path):
    tracer = make_tracer(tmp_path)
    trace = tracer.start(op="run")
    assert active_trace() == trace.trace_id
    first = trace.finish("ok")
    assert active_trace() is None
    assert trace.finish("ok") == first
    records = load_trace(str(tmp_path / "spans"), trace.trace_id)
    assert len([r for r in records if r["name"] == "request"]) == 1


def test_exception_path_closes_dangling_spans(tmp_path):
    tracer = make_tracer(tmp_path)
    trace = tracer.start(op="run")
    trace.span("outer")
    trace.span("inner")  # neither exited — error path
    trace.finish("error")
    records = load_trace(str(tmp_path / "spans"), trace.trace_id)
    assert {r["name"] for r in records} == {"request", "outer", "inner"}
    for record in records:
        assert record["dur_ns"] >= 0


def test_nesting_is_monotonic_after_finish(tmp_path):
    """Parents are expanded to cover children timed on other clocks."""
    tracer = make_tracer(tmp_path)
    trace = tracer.start(op="run")
    base = trace.now_ns()
    run_id = trace.record("run", base + 2_000_000, 1_000_000)
    # A "worker" child that starts before and ends after its parent.
    trace.record("compile", base, 5_000_000, parent=run_id)
    trace.finish("ok")
    records = {r["name"]: r for r in trace.records}
    run, compile_ = records["run"], records["compile"]
    assert run["start_ns"] <= compile_["start_ns"]
    assert (run["start_ns"] + run["dur_ns"]
            >= compile_["start_ns"] + compile_["dur_ns"])
    root = records["request"]
    assert root["start_ns"] <= run["start_ns"]
    assert (root["start_ns"] + root["dur_ns"]
            >= run["start_ns"] + run["dur_ns"])


def test_dropped_traces_never_reach_the_store(tmp_path):
    tracer = make_tracer(tmp_path, rate=0.0)
    trace = tracer.start(op="compile")
    keep, reason = trace.finish("ok")
    assert (keep, reason) == (False, "dropped")
    assert load_trace(str(tmp_path / "spans"), trace.trace_id) == []


def test_disabled_tracer_returns_none():
    tracer = ReqTracer(None, TailSampler())
    assert not tracer.enabled
    assert tracer.start(op="compile") is None
    assert build_reqtracer(None) is None
    assert build_reqtracer("") is None


# ---------------------------------------------------------------------------
# Worker payload absorption
# ---------------------------------------------------------------------------


def worker_payload(trace_id, epoch, pid=4242):
    # The repro.observe.tracer span_payload shape: monotonic offsets
    # from the worker's own wall anchor, parent named but not id'd.
    return {
        "trace_id": trace_id,
        "pid": pid,
        "wall_epoch_ns": epoch,
        "spans": [
            {"name": "compile", "start": 0, "dur": 9_000_000, "args": {}},
            {"name": "read", "start": 100_000, "dur": 2_000_000, "args": {}},
            {"name": "allocate", "start": 3_000_000, "dur": 5_000_000,
             "args": {"registers_assigned": 7}},
        ],
    }


def test_absorb_payload_reconstructs_worker_parentage(tmp_path):
    tracer = make_tracer(tmp_path)
    trace = tracer.start(op="compile")
    run_id = trace.record("run", trace.now_ns(), 10_000_000)
    count = trace.absorb_payload(
        worker_payload(trace.trace_id, trace.wall_epoch_ns), parent=run_id
    )
    assert count == 3
    trace.finish("ok")
    records = load_trace(str(tmp_path / "spans"), trace.trace_id)
    by_name = {r["name"]: r for r in records}
    compile_ = by_name["compile"]
    assert compile_["parent"] == run_id
    assert compile_["pid"] == 4242
    assert compile_["service"] == "worker"
    # read and allocate nest under compile by interval containment.
    assert by_name["read"]["parent"] == compile_["span"]
    assert by_name["allocate"]["parent"] == compile_["span"]
    assert by_name["allocate"]["attrs"]["registers_assigned"] == 7


def test_absorb_payload_rejects_foreign_trace(tmp_path):
    tracer = make_tracer(tmp_path)
    trace = tracer.start(op="compile")
    payload = worker_payload("f" * 16, trace.wall_epoch_ns)
    assert trace.absorb_payload(payload) == 0
    assert trace.absorb_payload(None) == 0
    assert trace.absorb_payload({}) == 0
    trace.finish("ok")


# ---------------------------------------------------------------------------
# Metrics + exemplars
# ---------------------------------------------------------------------------


def test_trace_decisions_counted(tmp_path):
    registry = MetricsRegistry()
    registry.enable()
    tracer = make_tracer(tmp_path, rate=0.0, registry=registry)
    tracer.start(op="a").finish("ok")
    tracer.start(op="b").finish("error")
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    assert counters['repro_trace_traces{decision="dropped"}'] == 1
    assert counters['repro_trace_traces{decision="error"}'] == 1
    # The kept trace's spans were counted too.
    assert counters["repro_trace_spans"] >= 1
    assert counters["repro_trace_bytes_written"] > 0


def test_exemplar_records_trace_for_latency_bucket(tmp_path):
    registry = MetricsRegistry()
    registry.enable()
    tracer = make_tracer(tmp_path, registry=registry)
    trace = tracer.start(op="compile")
    trace.finish("ok")
    tracer.exemplar(
        "repro_serve_request_seconds", ("op",), ("compile",), 0.012,
        trace.trace_id,
    )
    snapshot = registry.snapshot()
    exemplars = snapshot["exemplars"]
    (key,) = exemplars.keys()
    assert "repro_serve_request_seconds" in key and "compile" in key
    (bucket_entry,) = exemplars[key].values()
    assert bucket_entry["trace"] == trace.trace_id
    assert bucket_entry["value"] == 0.012
    # Exemplars merge across snapshots (parent aggregation path).
    other = MetricsRegistry()
    other.enable()
    other.merge_snapshot(snapshot)
    assert other.exemplars[key] == exemplars[key]
