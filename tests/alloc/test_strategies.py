"""The pluggable allocator arena: registry, shared model, rivals.

Three layers of coverage:

* the strategy registry (lookup, diagnostics, registration guards);
* the shared :mod:`repro.alloc.model` every rival consumes (interval
  sanity, the :func:`verify_assignment` cross-check);
* end-to-end differential runs — every registered strategy must compute
  the same values as the paper's lazy allocator at every register-file
  size, because strategies only choose *where* bindings live, never
  *what* the program means.
"""

import pytest

from repro.alloc import (
    available_strategies,
    build_model,
    get_strategy,
    register_strategy,
)
from repro.alloc.base import AllocatorStrategy
from repro.alloc.model import AllocationModel, BindingSite, verify_assignment
from repro.astnodes import Var
from repro.config import ALLOCATOR_STRATEGIES, CompilerConfig
from repro.core.registers import Register
from repro.errors import CompilerError
from repro.pipeline import compile_source, run_compiled
from repro.sexp.writer import write_datum

# Deep expression with many simultaneously-live temporaries spanning
# calls: small register files force every strategy to make real
# spill/placement decisions.
PRESSURE = """
(define (mix a b c d e n)
  (let ((p (+ a b))
        (q (+ c d))
        (r (+ e a))
        (s (- b c)))
    (if (< n 1)
        (+ p (+ q (+ r s)))
        (let ((t (mix b c d e a (- n 1)))
              (u (mix c d e a b (- n 1))))
          (+ (* p t) (+ (* q u) (+ (* r t) (* s u))))))))
(mix 6 5 4 3 2 5)
"""

FIB = """
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 12)
"""

REG_POINTS = [(6, 6), (4, 2), (2, 1), (1, 0), (0, 0)]


def run_value(source, **overrides):
    config = CompilerConfig(**overrides)
    compiled = compile_source(source, config)
    result = run_compiled(compiled)
    return write_datum(result.value), result.output, compiled


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_registry_matches_config_constant(self):
        assert set(available_strategies()) == set(ALLOCATOR_STRATEGIES)

    def test_lookup_resolves_every_name(self):
        for name in ALLOCATOR_STRATEGIES:
            strategy = get_strategy(name)
            assert strategy.name == name
            assert isinstance(strategy, AllocatorStrategy)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(CompilerError, match="unknown allocator"):
            get_strategy("bestfit")
        try:
            get_strategy("bestfit")
        except CompilerError as exc:
            for name in ALLOCATOR_STRATEGIES:
                assert name in str(exc)

    def test_anonymous_strategy_rejected(self):
        with pytest.raises(ValueError):

            @register_strategy
            class Nameless(AllocatorStrategy):  # noqa: F841
                def assign(self, alloc, model, config):
                    raise NotImplementedError

    def test_lazy_is_the_default_and_skips_the_model(self):
        lazy = get_strategy("lazy")
        assert ALLOCATOR_STRATEGIES[0] == "lazy"
        assert lazy.needs_model is False
        for rival in ALLOCATOR_STRATEGIES[1:]:
            assert get_strategy(rival).needs_model is True
            assert get_strategy(rival).verify is True


# ---------------------------------------------------------------------------
# Shared model
# ---------------------------------------------------------------------------


class TestModel:
    def _models(self, source, **overrides):
        # The model is built from the liveness-annotated tree *before*
        # save placement rewrites it, so run only the front half of the
        # pipeline here and stop after liveness + assignment.
        from repro.core.liveness import analyze_liveness, assign_bindings
        from repro.core.registers import RegisterFile
        from repro.frontend.analyze import check_scopes, mark_tail_calls
        from repro.frontend.assignconvert import assignment_convert
        from repro.frontend.closure import closure_convert
        from repro.frontend.expand import expand_program
        from repro.sexp.reader import read_all

        config = CompilerConfig(**overrides)
        expr = assignment_convert(expand_program(read_all(source)))
        mark_tail_calls(expr)
        check_scopes(expr)
        program = closure_convert(expr)
        regfile = RegisterFile(config.num_arg_regs, config.num_temp_regs)
        for code in program.codes:
            alloc = analyze_liveness(code, regfile)
            assign_bindings(alloc)
            yield alloc, build_model(alloc)

    def test_sites_cover_every_binding_candidate(self):
        compiled = compile_source(PRESSURE, CompilerConfig(), prelude=False)
        total = sum(len(m.sites) for _, m in self._models(PRESSURE))
        assert total > 0
        assert total == compiled.allocation.stats.candidates

    def test_intervals_are_well_formed(self):
        for alloc, model in self._models(PRESSURE):
            positions = set()
            for site in model.sites:
                assert 1 <= site.start <= site.end <= model.length
                assert site.refs >= 0
                assert site.var in site.group
                positions.add(site.start)
            # Fix siblings share a binding position; let sites do not.
            assert len(positions) <= len(model.sites)

    def test_overlap_subsumes_busy_interference(self):
        # Any pair the busy sets call interfering must also overlap as
        # intervals — the soundness condition linear scan relies on.
        for alloc, model in self._models(PRESSURE):
            by_var = {s.var: s for s in model.sites}
            for site in model.sites:
                for other in site.busy:
                    rival = by_var.get(other)
                    if rival is None:
                        continue
                    assert (
                        site.start <= rival.end and rival.start <= site.end
                    ), f"busy pair {site.var}/{other} has disjoint intervals"

    def test_verify_assignment_catches_busy_sharing(self):
        a, b = Var("a"), Var("b")
        reg = Register("t0", 0, "temp")
        a.location = reg
        b.location = reg
        site = BindingSite(
            var=a, busy=frozenset([b]), group=(a,), start=1, end=3, refs=1
        )
        model = AllocationModel(
            sites=[site], param_end={}, affinity={}, length=4
        )
        with pytest.raises(CompilerError, match="share"):
            verify_assignment(model)

    def test_verify_assignment_catches_unplaced_variable(self):
        a = Var("a")
        site = BindingSite(
            var=a, busy=frozenset(), group=(a,), start=1, end=1, refs=0
        )
        model = AllocationModel(
            sites=[site], param_end={}, affinity={}, length=2
        )
        with pytest.raises(CompilerError, match="never placed"):
            verify_assignment(model)

    def test_verify_assignment_catches_fix_sibling_sharing(self):
        a, b = Var("f"), Var("g")
        reg = Register("t1", 1, "temp")
        a.location = reg
        b.location = reg
        group = (a, b)
        sites = [
            BindingSite(
                var=v, busy=frozenset(), group=group, start=1, end=5, refs=2
            )
            for v in group
        ]
        model = AllocationModel(
            sites=sites, param_end={}, affinity={}, length=6
        )
        with pytest.raises(CompilerError, match="siblings"):
            verify_assignment(model)


# ---------------------------------------------------------------------------
# Strategies, end to end
# ---------------------------------------------------------------------------


class TestStrategiesEndToEnd:
    @pytest.mark.parametrize("allocator", ALLOCATOR_STRATEGIES)
    @pytest.mark.parametrize("arg_regs,temp_regs", REG_POINTS)
    def test_same_value_as_lazy_everywhere(self, allocator, arg_regs, temp_regs):
        want, want_out, _ = run_value(
            PRESSURE, num_arg_regs=arg_regs, num_temp_regs=temp_regs
        )
        got, got_out, _ = run_value(
            PRESSURE,
            allocator=allocator,
            num_arg_regs=arg_regs,
            num_temp_regs=temp_regs,
        )
        assert (got, got_out) == (want, want_out)

    @pytest.mark.parametrize("allocator", ALLOCATOR_STRATEGIES)
    def test_fib_agrees(self, allocator):
        want, _, _ = run_value(FIB)
        got, _, _ = run_value(FIB, allocator=allocator, num_arg_regs=2,
                              num_temp_regs=1)
        assert got == want

    @pytest.mark.parametrize("allocator", ALLOCATOR_STRATEGIES)
    def test_stats_account_for_every_candidate(self, allocator):
        _, _, compiled = run_value(
            PRESSURE, allocator=allocator, num_arg_regs=2, num_temp_regs=1
        )
        stats = compiled.allocation.stats
        assert stats.candidates == stats.assigned + stats.spilled
        assert compiled.allocation.strategy == allocator

    def test_rivals_spill_under_pressure(self):
        for allocator in ALLOCATOR_STRATEGIES[1:]:
            _, _, compiled = run_value(
                PRESSURE, allocator=allocator, num_arg_regs=1, num_temp_regs=1
            )
            assert compiled.allocation.stats.spilled > 0

    def test_zero_registers_spills_everything(self):
        for allocator in ALLOCATOR_STRATEGIES:
            _, _, compiled = run_value(
                PRESSURE, allocator=allocator, num_arg_regs=0, num_temp_regs=0
            )
            stats = compiled.allocation.stats
            assert stats.assigned == 0
            assert stats.spilled == stats.candidates

    def test_pass_times_cover_the_five_phases(self):
        _, _, compiled = run_value(PRESSURE, allocator="graphcolor")
        assert sorted(compiled.allocation.pass_times) == [
            "assign",
            "liveness",
            "restore-placement",
            "save-placement",
            "shuffle",
        ]

    def test_graphcolor_biases_moves_no_worse_than_naive_order(self):
        # Move biasing can only reduce shuffle traffic relative to the
        # same coloring without affinities; sanity-check the dynamic
        # move count stays within lazy's at the default machine size.
        _, _, lazy = run_value(PRESSURE)
        _, _, gc = run_value(PRESSURE, allocator="graphcolor")
        lazy_r = run_compiled(lazy)
        gc_r = run_compiled(gc)
        assert gc_r.counters.moves <= lazy_r.counters.moves * 2


# ---------------------------------------------------------------------------
# Metrics emission
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_driver_emits_strategy_metrics(self):
        from repro.observe import REGISTRY

        REGISTRY.enable()
        REGISTRY.clear()
        try:
            run_value(PRESSURE, allocator="linearscan", num_arg_regs=1,
                      num_temp_regs=1)
            snap = REGISTRY.snapshot()
            counters = snap["counters"]
            assert counters.get("repro_alloc_spills", 0) > 0
            assert counters.get("repro_alloc_moves", 0) > 0
            hists = snap["histograms"]
            assert any(
                key.startswith("repro_alloc_strategy_seconds")
                and 'strategy="linearscan"' in key
                for key in hists
            )
        finally:
            REGISTRY.clear()
            REGISTRY.enabled = False
