"""repro — a reproduction of Burger, Waddell & Dybvig,
"Register Allocation Using Lazy Saves, Eager Restores, and Greedy
Shuffling" (PLDI 1995).

A whole-program compiler for a Scheme subset whose register allocator
implements the paper's three techniques, plus a simulating back end
that measures exactly what the paper measures: dynamic stack
references, cycle-model run time, and activation classifications.

Quick start::

    from repro import run_source, CompilerConfig

    result = run_source("(define (f x) (* x x)) (f 21)")
    print(result.value)                       # 441
    print(result.counters.total_stack_refs)   # stack traffic

The package root resolves its exports lazily (PEP 562): importing
``repro`` — or any runtime submodule like ``repro.vm.aotrt`` — must
not pull the compiler in, because AOT-emitted modules (see
``docs/aot.md``) run with only the runtime slice of the package in
the process.  ``from repro import compile_source`` still works; the
import happens on first attribute access.
"""

__version__ = "1.0.0"

#: Export name -> defining submodule, resolved on first access.
_EXPORTS = {
    "CompilerConfig": "repro.config",
    "CostModel": "repro.config",
    "CompilerError": "repro.errors",
    "SchemeError": "repro.runtime.values",
    "CompileTimes": "repro.pipeline",
    "ExecutionResult": "repro.pipeline",
    "compile_source": "repro.pipeline",
    "expand_source": "repro.pipeline",
    "run_compiled": "repro.pipeline",
    "run_source": "repro.pipeline",
    "Interpreter": "repro.interp.interpreter",
    "interpret_source": "repro.interp.interpreter",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(__all__)
