"""repro — a reproduction of Burger, Waddell & Dybvig,
"Register Allocation Using Lazy Saves, Eager Restores, and Greedy
Shuffling" (PLDI 1995).

A whole-program compiler for a Scheme subset whose register allocator
implements the paper's three techniques, plus a simulating back end
that measures exactly what the paper measures: dynamic stack
references, cycle-model run time, and activation classifications.

Quick start::

    from repro import run_source, CompilerConfig

    result = run_source("(define (f x) (* x x)) (f 21)")
    print(result.value)                       # 441
    print(result.counters.total_stack_refs)   # stack traffic
"""

from repro.config import CompilerConfig, CostModel
from repro.errors import CompilerError
from repro.pipeline import (
    CompileTimes,
    ExecutionResult,
    compile_source,
    expand_source,
    run_compiled,
    run_source,
)
from repro.runtime.values import SchemeError
from repro.interp.interpreter import Interpreter, interpret_source

__version__ = "1.0.0"

__all__ = [
    "CompilerConfig",
    "CostModel",
    "CompilerError",
    "SchemeError",
    "CompileTimes",
    "ExecutionResult",
    "compile_source",
    "expand_source",
    "run_compiled",
    "run_source",
    "Interpreter",
    "interpret_source",
    "__version__",
]
