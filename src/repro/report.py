"""Human-readable allocation reports.

``allocation_report`` summarizes, per procedure, every decision the
paper's allocator made: variable locations, frame layout, save regions,
restore sets, and shuffle plans.  Exposed on the CLI as
``python -m repro report program.scm``.
"""

from __future__ import annotations

from typing import List

from repro.astnodes import Call, CodeObject, Save, walk
from repro.backend.codegen import CompiledProgram
from repro.core.locations import FrameSlot


def code_report(compiled: CompiledProgram, code: CodeObject) -> str:
    alloc = compiled.allocation.alloc_for(code)
    lines: List[str] = []
    flags = []
    if code.syntactic_leaf:
        flags.append("syntactic-leaf")
    if code.always_calls:
        flags.append("always-calls")
    lines.append(
        f"{code.label}: {len(code.params)} param(s), "
        f"{len(code.free)} free, frame={code.frame_size}"
        + (f" [{', '.join(flags)}]" if flags else "")
    )

    locs = []
    for var in alloc.register_vars:
        home = f" home=fv{var.home.index}" if var.home is not None else ""
        locs.append(f"    {var.name:12s} -> %{var.location.name}{home}")
    for var in set(code.params):
        if isinstance(var.location, FrameSlot):
            locs.append(f"    {var.name:12s} -> fv{var.location.index} (stack)")
    if locs:
        lines.append("  locations:")
        lines.extend(sorted(locs))

    if alloc.layout.size:
        purposes = ", ".join(
            f"fv{i}:{p}" for i, p in enumerate(alloc.layout.purposes)
        )
        lines.append(f"  frame: {purposes}")

    saves = [n for n in walk(code.body) if isinstance(n, Save)]
    for save in saves:
        names = ", ".join(v.name for v in save.vars)
        callee = (
            " callee:{" + ", ".join(r.name for r in save.callee_regs) + "}"
            if save.callee_regs
            else ""
        )
        lines.append(f"  save region: {{{names}}}{callee}")

    calls = [n for n in walk(code.body) if isinstance(n, Call)]
    for call in calls:
        if call.tail:
            kind = "tail call"
            restores = ""
        else:
            kind = "call"
            restores = (
                " restores {"
                + ", ".join(v.name for v in (call.restores or []))
                + "}"
            )
        plan = call.shuffle_plan
        shuffle = ""
        if plan is not None and (plan.had_cycle or plan.evictions):
            shuffle = (
                f" shuffle: cycle={plan.had_cycle} temps={plan.evictions}"
            )
        lines.append(f"  {kind} ({len(call.args)} args){restores}{shuffle}")
    return "\n".join(lines)


def allocation_report(compiled: CompiledProgram, proc: str = None) -> str:
    """Report for the whole program (or one named procedure)."""
    parts = []
    for code in compiled.codes:
        if proc and code.name != proc:
            continue
        parts.append(code_report(compiled, code))
    return "\n\n".join(parts)
