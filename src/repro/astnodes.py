"""Core abstract syntax.

After macro expansion the compiler works on the small core language the
paper describes (section 2), enriched with the binding and closure forms
a real compiler needs:

* ``Quote``     — constants (the paper's ``true``/``false`` generalized)
* ``Ref``       — variable reference (the paper's ``x``)
* ``PrimCall``  — primitive application; **not** a procedure call
* ``If``        — two-armed conditional
* ``Seq``       — the paper's ``seq``, n-ary
* ``Let``       — single binding; nested for multiple bindings
* ``Lambda``    — procedure abstraction (pre closure conversion)
* ``Fix``       — mutually recursive lambda bindings (``letrec`` of lambdas)
* ``Call``      — procedure call (the paper's ``call``), tail-marked
* ``SetBang``   — assignment; removed by assignment conversion
* ``MakeClosure`` / ``ClosureRef`` — introduced by closure conversion
* ``Save``      — register-save region introduced by the allocator
                  (the paper's ``(save (x ...) E)`` form)

Calls additionally carry the allocator's restore annotations (the
paper's ``(restore-after call (x ...))``) and the argument evaluation
order chosen by the greedy shuffler.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Sequence


class Var:
    """A variable after alpha renaming: globally unique identity.

    The front end creates one ``Var`` per binding occurrence; every
    reference shares the object.  Later passes hang analysis results off
    it: whether it is assigned (pre assignment conversion), its run-time
    location, and its frame "home" used by register saves.
    """

    _counter = itertools.count()

    __slots__ = (
        "name",
        "uid",
        "assigned",
        "referenced",
        "boxed",
        "location",
        "home",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.uid = next(Var._counter)
        self.assigned = False
        self.referenced = False
        self.boxed = False
        self.location = None  # set by repro.core.liveness
        self.home = None  # frame slot used when this variable is saved

    def __repr__(self) -> str:
        return f"{self.name}.{self.uid}"


class Expr:
    """Base class for core-language expressions."""

    __slots__ = ()


class Quote(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class Ref(Expr):
    __slots__ = ("var",)

    def __init__(self, var: Var) -> None:
        self.var = var


class PrimCall(Expr):
    """Application of a known primitive.  Never a procedure call."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Sequence[Expr]) -> None:
        self.op = op
        self.args = list(args)


class If(Expr):
    """Two-armed conditional.

    ``prediction`` is filled by the allocator when static branch
    prediction (§6) is enabled: ``"then"`` / ``"else"`` / ``None``.
    """

    __slots__ = ("test", "then", "otherwise", "prediction")

    def __init__(self, test: Expr, then: Expr, otherwise: Expr) -> None:
        self.test = test
        self.then = then
        self.otherwise = otherwise
        self.prediction = None


class Seq(Expr):
    """Sequencing; the value is the last subexpression's."""

    __slots__ = ("exprs",)

    def __init__(self, exprs: Sequence[Expr]) -> None:
        assert exprs, "Seq requires at least one subexpression"
        self.exprs = list(exprs)


class Let(Expr):
    """A single-variable binding.

    The expander alpha-renames, so nested ``Let``s faithfully encode
    parallel ``let``: no right-hand side can see the new bindings.
    """

    __slots__ = ("var", "rhs", "body", "busy")

    def __init__(self, var: Var, rhs: Expr, body: Expr) -> None:
        self.var = var
        self.rhs = rhs
        self.body = body
        self.busy = None  # variables live during the body (set by liveness)


class Lambda(Expr):
    __slots__ = ("params", "body", "name")

    def __init__(self, params: Sequence[Var], body: Expr, name: str = "anonymous") -> None:
        self.params = list(params)
        self.body = body
        self.name = name


class Fix(Expr):
    """Mutually recursive bindings of variables to lambdas (``letrec``)."""

    __slots__ = ("vars", "lambdas", "body", "busy")

    def __init__(self, vars: Sequence[Var], lambdas: Sequence[Lambda], body: Expr) -> None:
        assert len(vars) == len(lambdas)
        self.vars = list(vars)
        self.lambdas = list(lambdas)
        self.body = body
        self.busy = None  # variables live during the body (set by liveness)


class Call(Expr):
    """A procedure call.

    ``tail`` marks tail calls, which the paper's footnote 1 excludes
    from "calls" (they are jumps).  ``order``/``restores``/``shuffle``
    are filled in by the register allocator:

    * ``order`` — evaluation order over operator+operands chosen by the
      greedy shuffler (list of indices; index 0 is the operator).
    * ``temps`` — indices evaluated into temporary locations.
    * ``restores`` — variables to reload immediately after the call
      (eager restore placement).
    """

    __slots__ = (
        "fn",
        "args",
        "tail",
        "order",
        "temps",
        "restores",
        "shuffle_plan",
        "live_after",
        "live_before",
    )

    def __init__(self, fn: Expr, args: Sequence[Expr], tail: bool = False) -> None:
        self.fn = fn
        self.args = list(args)
        self.tail = tail
        self.order = None
        self.temps = None
        self.restores = None
        self.shuffle_plan = None
        self.live_after = None  # variables live after the call (liveness pass)
        self.live_before = None  # variables live entering the call setup


class CallCC(Call):
    """``(call/cc f)``.

    A subclass of :class:`Call` so the register allocator treats it as
    what it is — a procedure call that clobbers the caller-save
    registers — while the back end emits the capture instruction.
    """

    __slots__ = ()

    def __init__(self, fn: Expr, args: Sequence[Expr] = (), tail: bool = False) -> None:
        assert not args, "call/cc takes exactly one (operator) expression"
        super().__init__(fn, [], tail)


class SetBang(Expr):
    __slots__ = ("var", "value")

    def __init__(self, var: Var, value: Expr) -> None:
        self.var = var
        self.value = value


class MakeClosure(Expr):
    """Allocate a closure over *code* capturing the given values."""

    __slots__ = ("code", "free_exprs")

    def __init__(self, code: "CodeObject", free_exprs: Sequence[Expr]) -> None:
        self.code = code
        self.free_exprs = list(free_exprs)


class ClosureRef(Expr):
    """Read slot *index* of the currently executing closure."""

    __slots__ = ("var", "index")

    def __init__(self, var: Var, index: int) -> None:
        self.var = var
        self.index = index


class Save(Expr):
    """The paper's ``(save (x ...) E)``: store each variable's register
    into its frame home on entry to *body*.

    In callee-save mode (§2.4) a Save may instead be a *callee region*:
    ``callee_regs`` lists registers whose old (caller's) values are
    stored at region entry and reloaded at frame exit.
    """

    __slots__ = ("vars", "body", "callee_regs", "refs_after")

    def __init__(self, vars: Sequence[Var], body: Expr, callee_regs=None) -> None:
        self.vars = list(vars)
        self.body = body
        self.callee_regs = list(callee_regs) if callee_regs else []
        # Variables of this region possibly referenced after it before
        # the next call (pass 2): the lazy restore strategy reloads
        # these at region exit (the paper's Figure 2c case).
        self.refs_after = frozenset()


class CodeObject:
    """A closure-converted procedure body.

    Attributes filled by the allocator/back end:

    * ``frame_size``      — number of frame slots
    * ``syntactic_leaf``  — contains no non-tail calls
    * ``always_calls``    — ``ret ∈ St[body] ∩ Sf[body]``: every path
                            through the body makes a non-tail call
    * ``instructions``    — generated VM code
    * ``fast_instructions`` — pre-decoded fused stream for the VM fast
                            path (``repro.vm.predecode``), cached on
                            first execution
    * ``fast_blocks``     — block-compiled form of the fused stream
                            (``repro.vm.blockcompile``), cached on
                            first execution under the fast loop
    """

    _counter = itertools.count()

    __slots__ = (
        "name",
        "uid",
        "params",
        "free",
        "body",
        "frame_size",
        "syntactic_leaf",
        "always_calls",
        "instructions",
        "fast_instructions",
        "fast_blocks",
        "entry_saves",
        "callee_saved",
    )

    def __init__(self, name: str, params: Sequence[Var], free: Sequence[Var], body: Expr) -> None:
        self.name = name
        self.uid = next(CodeObject._counter)
        self.params = list(params)
        self.free = list(free)
        self.body = body
        self.frame_size = 0
        self.syntactic_leaf = False
        self.always_calls = False
        self.instructions = None
        self.fast_instructions = None
        self.fast_blocks = None
        self.entry_saves = []
        self.callee_saved = []

    @property
    def label(self) -> str:
        return f"{self.name}%{self.uid}"

    def __repr__(self) -> str:
        return f"<code {self.label}>"


class Program:
    """A closure-converted program: code objects plus the entry body."""

    __slots__ = ("codes", "entry")

    def __init__(self, codes: Sequence[CodeObject], entry: CodeObject) -> None:
        self.codes = list(codes)
        self.entry = entry


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def children(expr: Expr) -> List[Expr]:
    """Direct subexpressions of *expr*, in evaluation order."""
    if isinstance(expr, (Quote, Ref, ClosureRef)):
        return []
    if isinstance(expr, PrimCall):
        return list(expr.args)
    if isinstance(expr, If):
        return [expr.test, expr.then, expr.otherwise]
    if isinstance(expr, Seq):
        return list(expr.exprs)
    if isinstance(expr, Let):
        return [expr.rhs, expr.body]
    if isinstance(expr, Lambda):
        return [expr.body]
    if isinstance(expr, Fix):
        return [*expr.lambdas, expr.body]
    if isinstance(expr, Call):
        return [expr.fn, *expr.args]
    if isinstance(expr, SetBang):
        return [expr.value]
    if isinstance(expr, MakeClosure):
        return list(expr.free_exprs)
    if isinstance(expr, Save):
        return [expr.body]
    raise TypeError(f"unknown expression type: {type(expr).__name__}")


def walk(expr: Expr) -> List[Expr]:
    """All nodes of *expr* in preorder (does not descend into
    ``MakeClosure`` code objects)."""
    out: List[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(reversed(children(node)))
    return out


def count_nodes(expr: Expr) -> int:
    return len(walk(expr))


def copy_expr(expr: Expr) -> Expr:
    """A fresh, annotation-free copy of a post-expansion expression.

    Later passes hang state off the tree in place (``Var.location``,
    ``Call.shuffle_plan``, tail marks), so one expanded tree cannot be
    compiled under two configurations.  ``copy_expr`` gives each
    compilation its own tree: every ``Var`` is re-created (the
    pre-conversion ``assigned`` flag is preserved; analysis results are
    not) and every reference is rewired to the copy.  Quoted constants
    are shared, not copied — the callers that need this (the fuzzing
    oracle) only quote immutable data.

    Only the node types that exist before closure conversion are
    supported; ``MakeClosure``/``ClosureRef``/``Save`` raise
    ``TypeError``.
    """
    vars_map: Dict[Var, Var] = {}

    def copy_var(var: Var) -> Var:
        new = vars_map.get(var)
        if new is None:
            new = Var(var.name)
            new.assigned = var.assigned
            vars_map[var] = new
        return new

    def go(node: Expr) -> Expr:
        if isinstance(node, Quote):
            return Quote(node.value)
        if isinstance(node, Ref):
            return Ref(copy_var(node.var))
        if isinstance(node, PrimCall):
            return PrimCall(node.op, [go(a) for a in node.args])
        if isinstance(node, If):
            return If(go(node.test), go(node.then), go(node.otherwise))
        if isinstance(node, Seq):
            return Seq([go(e) for e in node.exprs])
        if isinstance(node, Let):
            rhs = go(node.rhs)
            return Let(copy_var(node.var), rhs, go(node.body))
        if isinstance(node, Lambda):
            params = [copy_var(p) for p in node.params]
            return Lambda(params, go(node.body), node.name)
        if isinstance(node, Fix):
            fixvars = [copy_var(v) for v in node.vars]
            lambdas = [go(lam) for lam in node.lambdas]
            return Fix(fixvars, lambdas, go(node.body))
        if isinstance(node, CallCC):
            return CallCC(go(node.fn), [], node.tail)
        if isinstance(node, Call):
            return Call(go(node.fn), [go(a) for a in node.args], node.tail)
        if isinstance(node, SetBang):
            return SetBang(copy_var(node.var), go(node.value))
        raise TypeError(
            f"copy_expr: {type(node).__name__} only exists after closure "
            "conversion; copy the pre-conversion tree instead"
        )

    return go(expr)


# ---------------------------------------------------------------------------
# Pretty printing (for tests, debugging, and documentation)
# ---------------------------------------------------------------------------


def pretty(expr: Expr) -> str:
    """Render an expression as an s-expression-ish string."""
    parts: List[str] = []
    _pp(expr, parts)
    return "".join(parts)


def _pp(expr: Expr, out: List[str]) -> None:
    if isinstance(expr, Quote):
        from repro.sexp.writer import write_datum

        text = write_datum(expr.value)
        if isinstance(expr.value, (int, float, bool)):
            out.append(text)
        else:
            out.append("'" + text)
    elif isinstance(expr, Ref):
        out.append(repr(expr.var))
    elif isinstance(expr, ClosureRef):
        out.append(f"(closure-ref {expr.index} {expr.var!r})")
    elif isinstance(expr, PrimCall):
        out.append(f"(#%{expr.op}")
        for arg in expr.args:
            out.append(" ")
            _pp(arg, out)
        out.append(")")
    elif isinstance(expr, If):
        out.append("(if ")
        _pp(expr.test, out)
        out.append(" ")
        _pp(expr.then, out)
        out.append(" ")
        _pp(expr.otherwise, out)
        out.append(")")
    elif isinstance(expr, Seq):
        out.append("(seq")
        for sub in expr.exprs:
            out.append(" ")
            _pp(sub, out)
        out.append(")")
    elif isinstance(expr, Let):
        out.append(f"(let ([{expr.var!r} ")
        _pp(expr.rhs, out)
        out.append("]) ")
        _pp(expr.body, out)
        out.append(")")
    elif isinstance(expr, Lambda):
        params = " ".join(repr(p) for p in expr.params)
        out.append(f"(lambda ({params}) ")
        _pp(expr.body, out)
        out.append(")")
    elif isinstance(expr, Fix):
        out.append("(fix (")
        for i, (var, lam) in enumerate(zip(expr.vars, expr.lambdas)):
            if i:
                out.append(" ")
            out.append(f"[{var!r} ")
            _pp(lam, out)
            out.append("]")
        out.append(") ")
        _pp(expr.body, out)
        out.append(")")
    elif isinstance(expr, CallCC):
        out.append("(call/cc ")
        _pp(expr.fn, out)
        out.append(")")
    elif isinstance(expr, Call):
        out.append("(tailcall " if expr.tail else "(call ")
        _pp(expr.fn, out)
        for arg in expr.args:
            out.append(" ")
            _pp(arg, out)
        out.append(")")
    elif isinstance(expr, SetBang):
        out.append(f"(set! {expr.var!r} ")
        _pp(expr.value, out)
        out.append(")")
    elif isinstance(expr, MakeClosure):
        out.append(f"(make-closure {expr.code.label}")
        for sub in expr.free_exprs:
            out.append(" ")
            _pp(sub, out)
        out.append(")")
    elif isinstance(expr, Save):
        names = " ".join(repr(v) for v in expr.vars)
        out.append(f"(save ({names}) ")
        _pp(expr.body, out)
        out.append(")")
    else:
        raise TypeError(f"unknown expression type: {type(expr).__name__}")
