"""``repro.serve`` — the compilation service layer.

The production substrate around the compiler: a content-addressed
compile cache (compilation is deterministic in (source, config,
version), so every recompile is waste), a crash-isolated multi-process
worker pool with per-request timeouts and instruction budgets, a batch
front end (``repro batch``), and a long-lived JSON-lines daemon
(``repro serve --stdio``).

See ``docs/serving.md`` for the architecture, the stdio protocol with
a worked transcript, cache-key semantics, and the failure-mode table.
"""

from repro.serve.cache import (
    CacheCorrupt,
    CacheStats,
    CompileCache,
    cache_key,
    canonical_source,
    default_cache_dir,
    deserialize_compiled,
    serialize_compiled,
)
from repro.serve.pool import TaskResult, WorkerPool, default_jobs
from repro.serve.service import BatchService, Request, Response, summarize
from repro.serve.stdio import PROTOCOL_VERSION, serve_stdio

__all__ = [
    "BatchService",
    "CacheCorrupt",
    "CacheStats",
    "CompileCache",
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "TaskResult",
    "WorkerPool",
    "cache_key",
    "canonical_source",
    "default_cache_dir",
    "default_jobs",
    "deserialize_compiled",
    "serialize_compiled",
    "serve_stdio",
    "summarize",
]
