"""``repro serve --tcp`` — the asyncio JSON-lines TCP front door.

The protocol is the stdio daemon's (:mod:`repro.serve.stdio`) over a
socket, one JSON document per line, with three front-door additions:

* requests may carry ``"tenant": "name"`` — the admission-control key
  (default ``"default"``);
* a request past the tenant or global pending bound is answered
  immediately with ``{"ok": false, "error_kind": "overloaded",
  "reason": ...}`` — the protocol's 429; clients should back off and
  retry (``retry_after_s`` is a hint);
* follower responses produced by single-flight dedup carry
  ``"deduped": true`` (and the leader's ``cached`` flag).

Architecture — one event loop, one pool thread::

    client ──┐  asyncio loop (intake, admission, single-flight, responses)
    client ──┤        │ submit/cancel (command queue)   ▲ results
    client ──┘        ▼                                 │ (call_soon_threadsafe)
                 _PoolBridge thread ── owns the WorkerPool (poll/dispatch)
                      │
                 worker processes (crash isolation, per-task timeouts)

Every :class:`~repro.serve.pool.WorkerPool` call happens on the bridge
thread, preserving the pool's single-threaded scheduler invariants;
the loop talks to it through a command queue and gets results back as
resolved futures.  Backpressure is layered: per-connection response
writes await ``drain()`` (a slow reader stalls only its own
responses), admission bounds what the server will hold, and the pool
bounds what actually runs.

Graceful drain (SIGTERM, SIGINT, or the ``shutdown`` op): stop
accepting connections, reject new work with ``reason: "draining"``,
finish everything in flight (bounded by ``drain_grace_s``, then
cancel), flush the metrics snapshot, send every client ``{"event":
"bye"}``, and exit 0.  EOF on the stdio daemon now follows the same
sequence (see ``stdio._Session.graceful_drain``).
"""

from __future__ import annotations

import asyncio
import json
import queue
import signal
import socket
import sys
import threading
import time
from typing import Any, Callable, Dict, Optional, Set

from repro import __version__
from repro.config import CompilerConfig, ServeConfig
from repro.observe.catalog import declare
from repro.observe.metrics import get_registry, render_openmetrics
from repro.observe.recorder import get_flight_recorder
from repro.serve.cache import cache_key
from repro.serve.net.admission import (
    REASON_DRAINING,
    REASON_MAX_CLIENTS,
    AdmissionController,
)
from repro.serve.net.singleflight import FlightTable
from repro.serve.pool import TaskResult, WorkerPool
from repro.serve.service import Request, response_from_task
from repro.serve.stdio import PROTOCOL_VERSION, _METRICS_DUMP_INTERVAL

_CONTROL_OPS = ("ping", "stats", "cancel", "shutdown", "metrics", "health")

#: Longest accepted request line (sources are small; a client that
#: sends more is broken, not big).
_LINE_LIMIT = 1 << 20

#: The ``retry_after_s`` hint attached to overloaded rejects.
_RETRY_AFTER_S = 0.05


class _PoolBridge:
    """The worker pool behind a thread boundary.

    ``submit`` may be called from the event loop; the returned
    ``asyncio.Future`` resolves (on the loop) with the task's
    :class:`TaskResult`.  All pool mutation happens on the bridge
    thread, fed by a command queue, so the pool's scheduler state is
    never touched concurrently.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[str] = None,
        disk_cache: bool = True,
        artifacts: bool = True,
        cache_shards: int = 1,
        registry=None,
        recorder=None,
        flight_dir: Optional[str] = None,
    ) -> None:
        self._loop = loop
        self.jobs = max(1, jobs)
        self._pool_kwargs = dict(
            jobs=jobs,
            cache=cache,
            cache_dir=cache_dir,
            disk_cache=disk_cache,
            artifacts=artifacts,
            cache_shards=cache_shards,
            registry=registry,
            recorder=recorder,
            flight_dir=flight_dir,
        )
        self._commands: "queue.Queue" = queue.Queue()
        self._futures: Dict[int, "asyncio.Future"] = {}  # task_id -> future
        self._task_ids: Dict[int, int] = {}  # id(future) -> task_id
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-pool-bridge", daemon=True
        )
        self.flight_dumps: list = []

    def start(self) -> None:
        self._thread.start()
        self._started.wait()

    # -- loop-side API --------------------------------------------------

    def submit(
        self,
        op: str,
        payload: Dict[str, Any],
        timeout: Optional[float],
        trace: Optional[Dict[str, Any]] = None,
    ) -> "asyncio.Future":
        future = self._loop.create_future()
        self._commands.put(("submit", op, payload, timeout, trace, future))
        return future

    def cancel(self, future: "asyncio.Future") -> None:
        """Best-effort cancel of a submitted task (queued: dropped;
        running: worker terminated); the future still resolves, with
        ``error_kind: "cancelled"``."""
        self._commands.put(("cancel", future))

    def cancel_pending(self) -> None:
        """Drop every queued-but-unstarted task (drain-grace expiry)."""
        self._commands.put(("cancel_pending",))

    def stats(self) -> "asyncio.Future":
        future = self._loop.create_future()
        self._commands.put(("stats", future))
        return future

    def stop(self, join_timeout: float = 10.0) -> None:
        self._commands.put(("stop",))
        self._thread.join(timeout=join_timeout)

    # -- bridge thread --------------------------------------------------

    def _run(self) -> None:
        with WorkerPool(**self._pool_kwargs) as pool:
            self._pool = pool
            self._started.set()
            stopping = False
            while True:
                while True:
                    try:
                        command = self._commands.get_nowait()
                    except queue.Empty:
                        break
                    if command[0] == "stop":
                        stopping = True
                    else:
                        self._handle(pool, command)
                if stopping and not self._futures:
                    break
                for result in pool.poll(0.02):
                    self._deliver(result)
                if stopping:
                    # Nothing new arrives after stop; resolve what is
                    # left (close() would abandon it silently).
                    pool.cancel_pending()
            self.flight_dumps.extend(pool.flight_dumps)
        # Unresolvable futures (pool torn down mid-flight) fail loudly.
        for future in list(self._futures.values()):
            self._resolve_threadsafe(
                future,
                TaskResult(
                    -1, "?", ok=False, error_kind="cancelled",
                    error="server shut down",
                ),
            )
        self._futures.clear()

    def _handle(self, pool: WorkerPool, command) -> None:
        kind = command[0]
        if kind == "submit":
            _, op, payload, timeout, trace, future = command
            task_id = pool.submit(op, payload, timeout=timeout, trace=trace)
            self._futures[task_id] = future
            self._task_ids[id(future)] = task_id
        elif kind == "cancel":
            _, future = command
            task_id = self._task_ids.get(id(future))
            if task_id is not None:
                pool.cancel(task_id)
        elif kind == "cancel_pending":
            pool.cancel_pending()
        elif kind == "stats":
            _, future = command
            self._resolve_threadsafe(future, pool.stats())

    def _deliver(self, result: TaskResult) -> None:
        future = self._futures.pop(result.task_id, None)
        if future is None:
            return
        self._task_ids.pop(id(future), None)
        self._resolve_threadsafe(future, result)

    def _resolve_threadsafe(self, future: "asyncio.Future", value) -> None:
        def resolve() -> None:
            if not future.done():
                future.set_result(value)

        try:
            self._loop.call_soon_threadsafe(resolve)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass


class _Connection:
    """One TCP client: a reader loop plus serialized response writes."""

    def __init__(self, server: "NetServer", reader, writer, conn_id: int) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.conn_id = conn_id
        self.peer = writer.get_extra_info("peername")
        self.tasks: Set["asyncio.Task"] = set()
        self.task_of_id: Dict[Any, "asyncio.Task"] = {}
        self._write_lock = asyncio.Lock()
        self.alive = True

    async def send(self, doc: Dict[str, Any]) -> None:
        if not self.alive:
            return
        data = (json.dumps(doc) + "\n").encode()
        try:
            async with self._write_lock:
                self.writer.write(data)
                # Backpressure: a slow reader stalls this connection's
                # responses (and only this connection's).
                await self.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            self.alive = False

    async def run(self) -> None:
        await self.send(
            {
                "event": "ready",
                "protocol": PROTOCOL_VERSION,
                "version": __version__,
                "transport": "tcp",
                "jobs": self.server.bridge.jobs,
                "dedup": self.server.config.dedup,
                "tracing": self.server.reqtracer is not None,
            }
        )
        while True:
            try:
                line = await self.reader.readline()
            except (ConnectionError, OSError, ValueError):
                # ValueError: line past the limit — a broken client.
                break
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if text:
                await self.server.dispatch(self, text)
        self.alive = False
        # The client is gone: release what it was waiting on.  Leader
        # pool tasks are server-owned and keep running (the result
        # still warms the cache and resolves any followers).
        for task in list(self.tasks):
            task.cancel()

    def close(self) -> None:
        self.alive = False
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - already closed
            pass


class NetServer:
    """The multi-client TCP compile server (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[str] = None,
        disk_cache: bool = True,
        artifacts: bool = True,
        registry=None,
        recorder=None,
        metrics_out: Optional[str] = None,
        flight_dir: Optional[str] = None,
        reqtracer=None,
        announce: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else get_registry()
        self.registry.enable()
        self.recorder = recorder if recorder is not None else get_flight_recorder()
        self.metrics_out = metrics_out
        self.flight_dir = flight_dir
        #: Request tracer (repro.observe.reqtrace.ReqTracer) or None —
        #: every touch below is guarded, so tracing off costs nothing.
        self.reqtracer = reqtracer
        self.announce = announce or (lambda doc: None)
        self.admission = AdmissionController(
            max_pending_per_tenant=self.config.max_pending_per_tenant,
            max_pending_total=self.config.max_pending_total,
            registry=self.registry,
        )
        self.flights = FlightTable(shards=self.config.cache_shards)
        self._jobs = jobs
        self._cache = cache
        self._cache_dir = cache_dir
        self._disk_cache = disk_cache
        self._artifacts = artifacts
        self.clients: Set[_Connection] = set()
        self.clients_peak = 0
        self._next_conn_id = 0
        self._outstanding: Set["asyncio.Task"] = set()
        self._lead_tasks: Set["asyncio.Task"] = set()
        self._draining = False
        self._drain_started = False
        self._drained = None  # asyncio.Event, created in start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_task: Optional["asyncio.Task"] = None
        self.started_at = time.monotonic()
        self.requests = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self.bridge = _PoolBridge(
            loop,
            jobs=self._jobs,
            cache=self._cache,
            cache_dir=self._cache_dir,
            disk_cache=self._disk_cache,
            artifacts=self._artifacts,
            cache_shards=self.config.cache_shards,
            registry=self.registry,
            recorder=self.recorder,
            flight_dir=self.flight_dir,
        )
        self.bridge.start()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=_LINE_LIMIT,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        if self.metrics_out:
            self._metrics_task = asyncio.ensure_future(self._metrics_loop())
        self.recorder.record(
            "net.listening", host=self.address[0], port=self.address[1]
        )
        self.announce(
            {
                "event": "listening",
                "host": self.address[0],
                "port": self.address[1],
                "jobs": self.bridge.jobs,
                "pid": __import__("os").getpid(),
                "limits": self.config.as_dict(),
            }
        )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain.  Only possible on the main
        thread (the background harness drains explicitly instead)."""
        if threading.current_thread() is not threading.main_thread():
            return
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig,
                    lambda s=sig: asyncio.ensure_future(
                        self.drain(reason=f"signal-{s.name}")
                    ),
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                return

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def drain(self, reason: str = "shutdown") -> None:
        """Stop accepting, finish in flight, flush metrics, say bye."""
        if self._drain_started:
            return
        self._drain_started = True
        self._draining = True
        self.recorder.record("net.draining", reason=reason)
        self.announce({"event": "draining", "reason": reason})
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Finish what was admitted, bounded by the grace window; after
        # it, queued tasks are cancelled and we wait (briefly) for the
        # cancellations to resolve so every response is still written.
        if not await self._await_outstanding(self.config.drain_grace_s):
            self.bridge.cancel_pending()
            if not await self._await_outstanding(5.0):
                # A handler can outlive even the cancellations when its
                # client stopped reading; cut it loose rather than hang
                # the drain on a dead peer.
                for task in list(self._outstanding):
                    task.cancel()
                await self._await_outstanding(2.0)
        for task in list(self._lead_tasks):
            task.cancel()
        if self._metrics_task is not None:
            self._metrics_task.cancel()
        self._dump_metrics()
        for conn in list(self.clients):
            await conn.send({"event": "bye"})
            conn.close()
        self.bridge.stop()
        self.announce({"event": "bye"})
        self._drained.set()

    async def _await_outstanding(self, grace: float) -> bool:
        deadline = time.monotonic() + grace
        while self._outstanding:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            await asyncio.wait(
                list(self._outstanding),
                timeout=remaining,
                return_when=asyncio.ALL_COMPLETED,
            )
        return True

    async def _metrics_loop(self) -> None:
        while True:
            await asyncio.sleep(_METRICS_DUMP_INTERVAL)
            self._dump_metrics()

    def _dump_metrics(self) -> None:
        if self.metrics_out:
            try:
                self.registry.dump(self.metrics_out)
            except OSError:  # pragma: no cover - unwritable path
                pass

    # -- connections ----------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        if self._draining or len(self.clients) >= self.config.max_clients:
            reason = (
                REASON_DRAINING if self._draining else REASON_MAX_CLIENTS
            )
            self.admission.count_reject(reason)
            try:
                writer.write(
                    (json.dumps({"event": "overloaded", "reason": reason}) + "\n").encode()
                )
                await writer.drain()
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            return
        conn = _Connection(self, reader, writer, self._next_conn_id)
        self._next_conn_id += 1
        self.clients.add(conn)
        self.clients_peak = max(self.clients_peak, len(self.clients))
        self._gauge_clients()
        self.recorder.record("net.connect", conn=conn.conn_id, peer=str(conn.peer))
        try:
            await conn.run()
        finally:
            self.clients.discard(conn)
            self._gauge_clients()
            conn.close()
            self.recorder.record("net.disconnect", conn=conn.conn_id)

    def _gauge_clients(self) -> None:
        if self.registry.enabled:
            declare(self.registry, "repro_serve_clients").set(len(self.clients))

    # -- request dispatch ----------------------------------------------

    async def dispatch(self, conn: _Connection, line: str) -> None:
        intake_started = time.perf_counter_ns()
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            await self._protocol_error(conn, None, "?", f"unparseable request: {exc}")
            return
        op = doc.get("op")
        if op in _CONTROL_OPS:
            await self._handle_control(conn, doc)
            return
        try:
            request = Request.from_dict(doc)
        except (KeyError, ValueError, TypeError) as exc:
            await self._protocol_error(
                conn, doc.get("id"), str(op or "?"), f"bad request: {exc}"
            )
            return
        tenant = str(doc.get("tenant", "default"))
        trace = None
        if self.reqtracer is not None:
            trace = self.reqtracer.start(
                traceparent=doc.get("traceparent"),
                op=request.op,
                id=request.id,
                tenant=tenant,
            )
        if trace is not None:
            # Intake/parse time: measured from line receipt, recorded
            # retroactively now that the trace exists.
            intake_ns = time.perf_counter_ns() - intake_started
            trace.record(
                "intake", trace.now_ns() - intake_ns, intake_ns,
                bytes=len(line),
            )
        if self._draining:
            self.admission.count_reject(REASON_DRAINING)
            await conn.send(
                self._overloaded(request, REASON_DRAINING, trace)
            )
            return
        admit_ns = time.perf_counter_ns()
        reason = self.admission.try_admit(tenant)
        if trace is not None:
            dur = time.perf_counter_ns() - admit_ns
            trace.record(
                "admission", trace.now_ns() - dur, dur,
                admitted=reason is None,
            )
        if reason is not None:
            self.recorder.record(
                "net.reject", id=request.id, tenant=tenant, reason=reason
            )
            await conn.send(self._overloaded(request, reason, trace))
            return
        task = asyncio.ensure_future(
            self._handle_work(conn, request, tenant, trace)
        )
        self._outstanding.add(task)
        conn.tasks.add(task)
        if request.id is not None:
            conn.task_of_id[request.id] = task

        def cleanup(t: "asyncio.Task") -> None:
            self._outstanding.discard(t)
            conn.tasks.discard(t)
            if request.id is not None and conn.task_of_id.get(request.id) is t:
                del conn.task_of_id[request.id]

        task.add_done_callback(cleanup)

    @staticmethod
    def _overloaded(
        request: Request, reason: str, trace=None
    ) -> Dict[str, Any]:
        doc = {
            "id": request.id,
            "op": request.op,
            "ok": False,
            "error_kind": "overloaded",
            "reason": reason,
            "retry_after_s": _RETRY_AFTER_S,
        }
        if trace is not None:
            doc["traceparent"] = trace.traceparent()
            # Overload rejects are always retained by the tail sampler
            # (non-ok status), regardless of the sampling rate.
            trace.finish("overloaded", reason=reason)
        return doc

    async def _protocol_error(
        self, conn: _Connection, rid, op: str, message: str
    ) -> None:
        self.recorder.record("net.protocol-error", id=rid, op=op, error=message)
        if self.registry.enabled:
            declare(self.registry, "repro_requests").labels(
                op=op, status="protocol"
            ).inc()
        await conn.send(
            {"id": rid, "ok": False, "error_kind": "protocol", "error": message}
        )

    # -- work requests --------------------------------------------------

    def _flight_key(self, request: Request) -> Optional[str]:
        """The single-flight identity of a request: the compile-cache
        key (canonical source + config fingerprint + version) extended
        with the op and budget, which also determine the answer.  None
        when the source cannot even be canonicalized — those requests
        go straight to a worker, which classifies the error properly."""
        if not self.config.dedup:
            return None
        try:
            key = cache_key(
                request.source,
                request.config or CompilerConfig(),
                request.prelude,
            )
        except Exception:  # noqa: BLE001 - unparseable/odd source: no dedup
            return None
        return f"{key}:{request.op}:{request.max_instructions}"

    async def _lead(self, flight_key: str, pool_future: "asyncio.Future") -> None:
        """Server-owned leader body: resolve the flight when the pool
        does.  Owned by the server, not the leader's connection, so a
        leader disconnect can never strand the followers."""
        try:
            result = await pool_future
        except asyncio.CancelledError:
            self.flights.abort(flight_key, ConnectionError("server draining"))
            raise
        except BaseException as exc:  # pragma: no cover - bridge teardown
            self.flights.abort(flight_key, exc)
            return
        self.flights.resolve(flight_key, result)

    async def _handle_work(
        self, conn: _Connection, request: Request, tenant: str, trace=None
    ) -> None:
        started = time.monotonic()
        self.requests += 1
        deduped = False
        try:
            flight_key = self._flight_key(request)
            role = "nodedup" if flight_key is None else "leader"
            dedup_ns = trace.now_ns() if trace is not None else 0
            if flight_key is None:
                future = self.bridge.submit(
                    request.op, request.payload(), request.timeout,
                    trace=trace.context() if trace is not None else None,
                )
            else:
                leader, future = self.flights.join(flight_key)
                if leader:
                    # Only the leader reaches the pool, so the worker's
                    # compile spans belong to the leader's trace.
                    pool_future = self.bridge.submit(
                        request.op, request.payload(), request.timeout,
                        trace=trace.context() if trace is not None else None,
                    )
                    lead = asyncio.ensure_future(
                        self._lead(flight_key, pool_future)
                    )
                    self._lead_tasks.add(lead)
                    lead.add_done_callback(self._lead_tasks.discard)
                else:
                    role = "follower"
                    deduped = True
                    if self.registry.enabled:
                        declare(self.registry, "repro_serve_inflight_dedup").inc()
                    self.recorder.record(
                        "net.dedup", id=request.id, tenant=tenant
                    )
            if trace is not None:
                now = trace.now_ns()
                trace.record("dedup", dedup_ns, now - dedup_ns, role=role)
            wait_ns = trace.now_ns() if trace is not None else 0
            try:
                # Shield: cancelling this handler (client disconnect,
                # per-request cancel op) must not cancel the shared
                # flight future other requests are awaiting.
                result = await asyncio.shield(future)
            except asyncio.CancelledError:
                response = self._cancelled_response(request)
                await conn.send(response.as_dict())
                self._observe(request.op, response, started, trace)
                return
            except ConnectionError as exc:
                response = self._cancelled_response(request, str(exc))
                await conn.send(response.as_dict())
                if trace is not None:
                    trace.finish("cancelled", deduped=deduped)
                return
            if trace is not None:
                wait_id = trace.record(
                    "wait", wait_ns, trace.now_ns() - wait_ns, role=role
                )
                if not deduped:
                    # The pool's latency split, re-timed onto the wall
                    # clock: queue ends where the worker run began.
                    queued_ns = int(result.queued_s * 1e9)
                    run_ns = int(result.run_s * 1e9)
                    run_start = trace.now_ns() - run_ns
                    trace.record(
                        "queue", run_start - queued_ns, queued_ns,
                        parent=wait_id,
                    )
                    run_id = trace.record(
                        "run", run_start, run_ns, parent=wait_id,
                    )
                    if result.meta:
                        trace.absorb_payload(
                            result.meta.get("spans"), parent=run_id
                        )
            response = response_from_task(request, 0, result)
            doc = response.as_dict()
            if deduped:
                doc["deduped"] = True
            if trace is not None:
                doc["traceparent"] = trace.traceparent()
                respond_ns = trace.now_ns()
                await conn.send(doc)
                trace.record(
                    "respond", respond_ns, trace.now_ns() - respond_ns
                )
            else:
                await conn.send(doc)
            self._observe(request.op, response, started, trace)
        finally:
            self.admission.release(tenant)

    @staticmethod
    def _cancelled_response(request: Request, message: str = "cancelled"):
        from repro.serve.service import Response

        return Response(
            id=request.id,
            op=request.op,
            ok=False,
            error_kind="cancelled",
            error=message,
        )

    def _observe(self, op: str, response, started: float, trace=None) -> None:
        status = "ok" if response.ok else (response.error_kind or "error")
        elapsed = max(0.0, time.monotonic() - started)
        if self.registry.enabled:
            declare(self.registry, "repro_requests").labels(
                op=op, status=status
            ).inc()
            declare(self.registry, "repro_serve_request_seconds").labels(
                op=op
            ).observe(elapsed)
        self.recorder.record(
            "net.response", id=response.id, op=op, status=status
        )
        if trace is not None:
            cached = response.cached
            keep, _ = trace.finish(status, cached=cached)
            if keep and self.reqtracer is not None:
                self.reqtracer.exemplar(
                    "repro_serve_request_seconds", ("op",), (op,),
                    elapsed, trace.trace_id,
                )

    # -- control ops ----------------------------------------------------

    async def _handle_control(self, conn: _Connection, doc: Dict[str, Any]) -> None:
        op = doc["op"]
        rid = doc.get("id")
        if op == "ping":
            await conn.send({"id": rid, "ok": True, "pong": True})
        elif op == "stats":
            pool_stats = await self.bridge.stats()
            await conn.send(
                {
                    "id": rid,
                    "ok": True,
                    "stats": {"server": self.server_stats(), "pool": pool_stats},
                }
            )
        elif op == "cancel":
            target = doc.get("target")
            task = conn.task_of_id.get(target)
            cancelled = task is not None and task.cancel()
            await conn.send(
                {"id": rid, "ok": True, "cancelled": bool(cancelled),
                 "target": target}
            )
        elif op == "shutdown":
            # Stop admitting before even acknowledging: a request on
            # the wire behind this one is deterministically rejected.
            self._draining = True
            await conn.send({"id": rid, "ok": True, "shutdown": True})
            asyncio.ensure_future(self.drain(reason="shutdown-op"))
        elif op == "metrics":
            snapshot = self.registry.snapshot()
            if doc.get("format") == "openmetrics":
                await conn.send(
                    {"id": rid, "ok": True,
                     "openmetrics": render_openmetrics(snapshot)}
                )
            else:
                await conn.send({"id": rid, "ok": True, "metrics": snapshot})
        elif op == "health":
            await conn.send(
                {
                    "id": rid,
                    "ok": True,
                    "health": {
                        "status": "draining" if self._draining else "ok",
                        "pid": __import__("os").getpid(),
                        "version": __version__,
                        "uptime_s": time.monotonic() - self.started_at,
                        "jobs": self.bridge.jobs,
                        "clients": len(self.clients),
                        "pending": self.admission.total,
                        "flight_events": len(self.recorder),
                    },
                }
            )

    def server_stats(self) -> Dict[str, Any]:
        return {
            "clients": len(self.clients),
            "clients_peak": self.clients_peak,
            "requests": self.requests,
            "draining": self._draining,
            "admission": self.admission.stats(),
            "singleflight": self.flights.stats(),
            "uptime_s": time.monotonic() - self.started_at,
        }


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def serve_tcp(
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    disk_cache: bool = True,
    artifacts: bool = True,
    serve_config: Optional[ServeConfig] = None,
    metrics_out: Optional[str] = None,
    flight_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
    trace_sample: float = 1.0,
    stdout=None,
) -> int:
    """Run the TCP daemon until SIGTERM/SIGINT or a ``shutdown`` op.

    Lifecycle events (``listening``, ``draining``, ``bye``) go to
    *stdout* as JSON lines so a supervisor can scrape the bound port
    and confirm a clean drain.  Returns 0 after a graceful drain.
    """
    out = stdout if stdout is not None else sys.stdout

    def announce(doc: Dict[str, Any]) -> None:
        out.write(json.dumps(doc) + "\n")
        out.flush()

    config = serve_config or ServeConfig()
    if (host, port) != (config.host, config.port):
        config = config.with_address(host, port)
    # Like the stdio daemon: the server's metrics cover its lifetime.
    registry = get_registry()
    registry.clear()
    registry.enable()
    from repro.observe.reqtrace import build_reqtracer

    reqtracer = build_reqtracer(
        trace_dir, sample=trace_sample, registry=registry, service="net"
    )

    async def main() -> None:
        server = NetServer(
            config=config,
            jobs=jobs,
            cache=cache,
            cache_dir=cache_dir,
            disk_cache=disk_cache,
            artifacts=artifacts,
            registry=registry,
            metrics_out=metrics_out,
            flight_dir=flight_dir,
            reqtracer=reqtracer,
            announce=announce,
        )
        await server.start()
        server.install_signal_handlers()
        await server.wait_drained()

    asyncio.run(main())
    return 0


class BackgroundServer:
    """A :class:`NetServer` on its own thread and event loop — the
    in-process harness ``repro loadgen --spawn`` and the test suite
    use.  ``address`` is the bound ``(host, port)``; ``stop()`` runs a
    graceful drain and joins the thread."""

    def __init__(self, **kwargs: Any) -> None:
        self.events: list = []
        kwargs.setdefault("announce", self.events.append)
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self.server: Optional[NetServer] = None
        self.address = None
        self._thread = threading.Thread(
            target=self._main, name="repro-net-server", daemon=True
        )

    def start(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("server thread did not start")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def _main(self) -> None:
        async def body() -> None:
            try:
                self.server = NetServer(**self._kwargs)
                await self.server.start()
                self._loop = asyncio.get_running_loop()
                self.address = self.server.address
            except BaseException as exc:  # noqa: BLE001 - report to starter
                self._error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.wait_drained()

        try:
            asyncio.run(body())
        except BaseException:  # noqa: BLE001 - surfaced via self._error
            if not self._ready.is_set():  # pragma: no cover
                self._ready.set()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(
                        self.server.drain(reason="background-stop")
                    )
                )
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def wait_for_port(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll until something accepts on (host, port) — CI readiness."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.05)
    return False
