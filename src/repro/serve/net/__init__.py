"""The networked compile farm: an asyncio TCP front door over the
crash-isolated worker pool.

* :mod:`repro.serve.net.server` — the JSON-lines TCP daemon
  (``repro serve --tcp``): multi-client multiplexing, per-tenant
  admission control, single-flight dedup, graceful drain.
* :mod:`repro.serve.net.admission` — bounded per-tenant queues and
  429-style ``overloaded`` rejects.
* :mod:`repro.serve.net.singleflight` — the key-prefix-sharded flight
  table that lets N concurrent identical compiles cost one pool task.
* :mod:`repro.serve.net.loadgen` — ``repro loadgen``: corpus replay at
  configurable concurrency, latency percentiles, and the SLO gate.
"""

from repro.serve.net.admission import AdmissionController
from repro.serve.net.loadgen import run_loadgen
from repro.serve.net.server import BackgroundServer, NetServer, serve_tcp
from repro.serve.net.singleflight import FlightTable

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "FlightTable",
    "NetServer",
    "run_loadgen",
    "serve_tcp",
]
