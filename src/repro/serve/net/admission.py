"""Per-tenant admission control for the TCP front door.

The pool's queue is unbounded by design (a batch knows its own size);
a network front door does not have that luxury — a single client can
submit forever.  Admission control bounds what the server will hold
per tenant and in total, and answers everything past the bound with an
immediate ``overloaded`` reject (the JSON-lines protocol's 429) rather
than queueing without limit.

A *tenant* is whatever the request says it is (``"tenant": "name"``,
defaulting to ``"default"``) — the unit of isolation is cooperative,
like a rate-limit key, not a security boundary.  One tenant hammering
its queue full cannot displace another tenant's requests: per-tenant
bounds are checked before the global one, and the global bound is the
backstop against many tenants at once.

Counted against a tenant is every admitted-but-unresolved request —
queued in the pool, running on a worker, or waiting as a single-flight
follower — so dedup does not become an amplification loophole.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observe.catalog import declare

#: Reject reasons (the ``repro_serve_rejects`` label values).
REASON_TENANT_FULL = "tenant-queue-full"
REASON_QUEUE_FULL = "queue-full"
REASON_MAX_CLIENTS = "max-clients"
REASON_DRAINING = "draining"


class AdmissionController:
    """Bounded per-tenant and global pending-request accounting."""

    def __init__(
        self,
        max_pending_per_tenant: int = 128,
        max_pending_total: int = 1024,
        registry=None,
    ) -> None:
        self.max_pending_per_tenant = max_pending_per_tenant
        self.max_pending_total = max_pending_total
        self.registry = registry
        self.pending: Dict[str, int] = {}
        self.total = 0
        self.admitted = 0
        self.rejects: Dict[str, int] = {}

    def try_admit(self, tenant: str) -> Optional[str]:
        """Admit one request for *tenant*; returns ``None`` on success
        or the reject reason.  Every successful admit must be paired
        with exactly one :meth:`release`."""
        depth = self.pending.get(tenant, 0)
        if depth >= self.max_pending_per_tenant:
            return self._reject(REASON_TENANT_FULL)
        if self.total >= self.max_pending_total:
            return self._reject(REASON_QUEUE_FULL)
        self.pending[tenant] = depth + 1
        self.total += 1
        self.admitted += 1
        self._gauge(tenant)
        return None

    def release(self, tenant: str) -> None:
        depth = self.pending.get(tenant, 0)
        if depth <= 1:
            self.pending.pop(tenant, None)
        else:
            self.pending[tenant] = depth - 1
        self.total = max(0, self.total - 1)
        self._gauge(tenant)

    def count_reject(self, reason: str) -> None:
        """Record a reject decided outside the queue bounds (connection
        cap, draining)."""
        self._reject(reason)

    def _reject(self, reason: str) -> str:
        self.rejects[reason] = self.rejects.get(reason, 0) + 1
        if self.registry is not None and self.registry.enabled:
            declare(self.registry, "repro_serve_rejects").labels(
                reason=reason
            ).inc()
        return reason

    def _gauge(self, tenant: str) -> None:
        if self.registry is not None and self.registry.enabled:
            declare(self.registry, "repro_serve_tenant_queue_depth").labels(
                tenant=tenant
            ).set(self.pending.get(tenant, 0))

    def stats(self) -> Dict[str, object]:
        return {
            "pending_total": self.total,
            "admitted": self.admitted,
            "per_tenant": dict(self.pending),
            "rejects": dict(self.rejects),
            "max_pending_per_tenant": self.max_pending_per_tenant,
            "max_pending_total": self.max_pending_total,
        }
