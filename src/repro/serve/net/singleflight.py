"""Single-flight deduplication of identical in-flight requests.

Compilation (and, in this deterministic VM, execution) is a pure
function of the request, so N concurrent identical requests need one
pool task: the first becomes the **leader** and submits; the other
N-1 become **followers** and await the leader's result.  This is the
in-flight analogue of the compile cache — the cache collapses repeats
*across* time, the flight table collapses repeats *within* the window
where the answer is still being computed (exactly the window where a
cold cache would otherwise stampede the pool).

The table is sharded by the same key prefix as the cache
(:func:`repro.serve.cache.shard_index`), so the flight map and the
cache shard that will absorb the result agree on ownership and no
single dict holds the whole keyspace.

Everything here runs on one event loop; there is no locking because
there is no preemption between :meth:`join`'s check and insert.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Tuple

from repro.serve.cache import shard_index


class FlightTable:
    """key → shared future, sharded by key prefix."""

    def __init__(self, shards: int = 8) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._shards: Tuple[Dict[str, "asyncio.Future"], ...] = tuple(
            {} for _ in range(shards)
        )
        #: Followers served so far (the ``repro_serve_inflight_dedup``
        #: mirror, kept here so ``stats`` needs no registry).
        self.dedup_hits = 0
        self.flights = 0

    def _bucket(self, key: str) -> Dict[str, "asyncio.Future"]:
        return self._shards[shard_index(key, len(self._shards))]

    def join(self, key: str) -> Tuple[bool, "asyncio.Future"]:
        """Returns ``(leader, future)``.  The leader must eventually
        call :meth:`resolve` with the same key, exactly once."""
        bucket = self._bucket(key)
        future = bucket.get(key)
        if future is not None:
            self.dedup_hits += 1
            return False, future
        future = asyncio.get_running_loop().create_future()
        bucket[key] = future
        self.flights += 1
        return True, future

    def resolve(self, key: str, result) -> None:
        """Publish the leader's result to every follower and retire the
        flight.  Results are plain values (a failed task is still a
        :class:`TaskResult`), so the future always resolves with
        ``set_result`` — a follower can never see a raised exception it
        did not cause."""
        future = self._bucket(key).pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def abort(self, key: str, exc: BaseException) -> None:
        """Retire a flight whose leader could not produce a result at
        all (pool teardown mid-submit); followers see the exception."""
        future = self._bucket(key).pop(key, None)
        if future is not None and not future.done():
            future.set_exception(exc)

    @property
    def in_flight(self) -> int:
        return sum(len(bucket) for bucket in self._shards)

    def pending_keys(self) -> List[str]:
        return [key for bucket in self._shards for key in bucket]

    def stats(self) -> Dict[str, int]:
        return {
            "shards": len(self._shards),
            "in_flight": self.in_flight,
            "flights": self.flights,
            "dedup_hits": self.dedup_hits,
        }
