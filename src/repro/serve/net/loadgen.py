"""``repro loadgen`` — corpus replay against the TCP front door.

A loadgen run is *N* virtual users, each a closed loop on its own TCP
connection: pick a program from the corpus, send it, wait for the
response, repeat — until a duration or per-vuser request budget runs
out.  Latency is measured client-side (send to response line), so the
reported percentiles are what a real client of the farm would see,
queueing included.

Schedules are deterministic: vuser *v* of a run with ``--seed s``
draws from ``random.Random(f"{s}:{v}")``, so two runs with the same
seed, corpus, and shape replay the same request sequence
(:func:`request_indices` is the pure form the tests pin down).  A
``duplicate_fraction`` of each vuser's picks comes from a small shared
hot set, which is what makes single-flight dedup observable: on a cold
cache, concurrent vusers stampede the same hot programs and all but
one ride the leader's compile.

The report is a JSON document (percentiles, error/reject counts, the
server's own admission/single-flight/cache stats) and, with
``--check``, is gated against committed thresholds
(``BENCH_serve.json``) — the CI SLO gate.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Corpus entries are ``(name, source)`` pairs.
Corpus = List[Tuple[str, str]]

#: How many corpus entries form the shared hot set duplicates are
#: drawn from (capped at the corpus size).
HOT_SET = 4

_CONNECT_TIMEOUT_S = 30.0
_RESPONSE_TIMEOUT_S = 120.0


# ---------------------------------------------------------------------------
# Corpora
# ---------------------------------------------------------------------------


def corpus_from_bench(heavy: bool = False) -> Corpus:
    """Every benchsuite program (the default corpus): real compiler
    input with real register pressure, not synthetic no-ops."""
    from repro.benchsuite import BENCHMARKS

    return [
        (name, bench.source)
        for name, bench in sorted(BENCHMARKS.items())
        if heavy or not bench.heavy
    ]


def corpus_from_dir(path: str) -> Corpus:
    """A directory of ``.sexp`` programs — e.g. a fuzz corpus
    (:mod:`repro.fuzz.corpus` files parse as-is: the reader treats the
    ``;;`` header lines as comments)."""
    root = Path(path)
    entries = [
        (p.name, p.read_text())
        for p in sorted(root.glob("*.sexp"))
        if p.is_file()
    ]
    if not entries:
        raise ValueError(f"no .sexp programs under {path!r}")
    return entries


def corpus_from_jsonl(path: str) -> Corpus:
    """A JSON-lines request file (the ``repro batch`` format); only
    ``source`` (and optional ``id``) are used."""
    entries: Corpus = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            doc = json.loads(line)
            entries.append((str(doc.get("id", lineno)), doc["source"]))
    if not entries:
        raise ValueError(f"no requests in {path!r}")
    return entries


# ---------------------------------------------------------------------------
# Deterministic schedules
# ---------------------------------------------------------------------------


def _vuser_rng(seed: int, vuser: int) -> random.Random:
    return random.Random(f"{seed}:{vuser}")


def client_traceparent(seed: int, vuser: int, sent: int) -> str:
    """The deterministic traceparent vuser *vuser* stamps on its
    *sent*-th request: trace and span ids derived from the run seed, so
    a rerun with the same seed produces the same trace ids and a report
    can be cross-referenced against an archived span store."""
    digest = hashlib.sha256(f"{seed}:{vuser}:{sent}".encode()).hexdigest()
    return f"{digest[:16]}-{digest[16:32]}"


def _pick(rng: random.Random, corpus_size: int, duplicate_fraction: float) -> int:
    hot = min(HOT_SET, corpus_size)
    if rng.random() < duplicate_fraction:
        return rng.randrange(hot)
    return rng.randrange(corpus_size)


def request_indices(
    seed: int,
    vuser: int,
    count: int,
    corpus_size: int,
    duplicate_fraction: float = 0.5,
) -> List[int]:
    """The first *count* corpus indices vuser *vuser* will request —
    the pure schedule, for determinism tests and offline analysis."""
    rng = _vuser_rng(seed, vuser)
    return [_pick(rng, corpus_size, duplicate_fraction) for _ in range(count)]


def percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Exact (nearest-rank) percentile of an ascending sequence."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ---------------------------------------------------------------------------
# The client loop
# ---------------------------------------------------------------------------


class _VUser(threading.Thread):
    def __init__(
        self,
        vuser: int,
        address: Tuple[str, int],
        corpus: Corpus,
        opts: Dict[str, Any],
        stop_at: Optional[float],
    ) -> None:
        super().__init__(name=f"loadgen-vuser-{vuser}", daemon=True)
        self.vuser = vuser
        self.address = address
        self.corpus = corpus
        self.opts = opts
        self.stop_at = stop_at
        self.records: List[Dict[str, Any]] = []
        self.failure: Optional[str] = None

    def run(self) -> None:
        try:
            self._run()
        except Exception as exc:  # noqa: BLE001 - reported in the summary
            self.failure = f"{type(exc).__name__}: {exc}"

    def _run(self) -> None:
        opts = self.opts
        rng = _vuser_rng(opts["seed"], self.vuser)
        tenants = opts["tenants"]
        tenant = tenants[self.vuser % len(tenants)]
        sock = socket.create_connection(self.address, timeout=_CONNECT_TIMEOUT_S)
        sock.settimeout(_RESPONSE_TIMEOUT_S)
        try:
            reader = sock.makefile("r", encoding="utf-8")
            banner = json.loads(reader.readline())
            if banner.get("event") == "overloaded":
                self.records.append(
                    {"ok": False, "rejected": True, "reason": banner.get("reason"),
                     "latency_s": 0.0, "op": opts["op"], "deduped": False,
                     "cached": False}
                )
                return
            sent = 0
            while opts["requests"] is None or sent < opts["requests"]:
                if self.stop_at is not None and time.monotonic() >= self.stop_at:
                    break
                index = _pick(rng, len(self.corpus), opts["duplicate_fraction"])
                name, source = self.corpus[index]
                traceparent = client_traceparent(
                    opts["seed"], self.vuser, sent
                )
                request = {
                    "id": f"{self.vuser}-{sent}",
                    "op": opts["op"],
                    "source": source,
                    "tenant": tenant,
                    "traceparent": traceparent,
                }
                if opts["timeout"] is not None:
                    request["timeout"] = opts["timeout"]
                if opts["max_instructions"] is not None:
                    request["max_instructions"] = opts["max_instructions"]
                started = time.perf_counter()
                sock.sendall((json.dumps(request) + "\n").encode())
                doc = self._next_response(reader)
                if doc is None:  # server went away (drain) — stop cleanly
                    break
                latency = time.perf_counter() - started
                rejected = doc.get("error_kind") == "overloaded"
                self.records.append(
                    {
                        "ok": bool(doc.get("ok")),
                        "rejected": rejected,
                        "reason": doc.get("reason") if rejected else None,
                        "error_kind": doc.get("error_kind"),
                        "latency_s": latency,
                        "op": opts["op"],
                        "program": name,
                        "deduped": bool(doc.get("deduped")),
                        "cached": bool(doc.get("cached")),
                        "trace": traceparent.split("-", 1)[0],
                        "vuser": self.vuser,
                    }
                )
                sent += 1
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    @staticmethod
    def _next_response(reader) -> Optional[Dict[str, Any]]:
        while True:
            line = reader.readline()
            if not line:
                return None
            doc = json.loads(line)
            if "event" in doc:
                if doc["event"] == "bye":
                    return None
                continue  # informational event; keep waiting
            return doc


def _server_stats(address: Tuple[str, int]) -> Optional[Dict[str, Any]]:
    """One control round-trip for the server's own view of the run."""
    try:
        with socket.create_connection(address, timeout=_CONNECT_TIMEOUT_S) as sock:
            sock.settimeout(_CONNECT_TIMEOUT_S)
            reader = sock.makefile("r", encoding="utf-8")
            json.loads(reader.readline())  # ready banner
            sock.sendall(b'{"id": "stats", "op": "stats"}\n')
            doc = json.loads(reader.readline())
            return doc.get("stats")
    except (OSError, ValueError):  # pragma: no cover - server already gone
        return None


# ---------------------------------------------------------------------------
# The run + report
# ---------------------------------------------------------------------------


def run_loadgen(
    address: Optional[Tuple[str, int]] = None,
    corpus: Optional[Corpus] = None,
    op: str = "compile",
    concurrency: int = 8,
    duration: Optional[float] = None,
    requests: Optional[int] = None,
    seed: int = 0,
    duplicate_fraction: float = 0.5,
    tenants: Sequence[str] = ("default",),
    timeout: Optional[float] = None,
    max_instructions: Optional[int] = None,
    spawn: bool = False,
    spawn_jobs: int = 4,
    cache_dir: Optional[str] = None,
    serve_config=None,
    check: Optional[str] = None,
    tolerance: float = 1.0,
    trace_dir: Optional[str] = None,
    trace_sample: float = 1.0,
    latencies_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the load and return the report document.

    Either point it at a live daemon (*address*) or let it *spawn* an
    in-process :class:`~repro.serve.net.server.BackgroundServer` for
    the run (the CI and test path — a fresh server with a cold cache,
    so dedup is exercised, not just the disk tier).  When neither
    *duration* nor *requests* (per vuser) is given, each vuser sends
    10 requests.
    """
    from repro.config import ServeConfig

    if corpus is None:
        corpus = corpus_from_bench()
    if not corpus:
        raise ValueError("empty corpus")
    if duration is None and requests is None:
        requests = 10
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")

    server = None
    if spawn:
        from repro.serve.net.server import BackgroundServer

        reqtracer = None
        if trace_dir is not None:
            from repro.observe.reqtrace import build_reqtracer

            reqtracer = build_reqtracer(
                trace_dir, sample=trace_sample, service="net", seed=seed
            )
        server = BackgroundServer(
            config=serve_config or ServeConfig(),
            jobs=spawn_jobs,
            cache_dir=cache_dir,
            disk_cache=cache_dir is not None,
            reqtracer=reqtracer,
        ).start()
        address = tuple(server.address)
    elif address is None:
        raise ValueError("give an address or spawn=True")

    opts = {
        "op": op,
        "seed": seed,
        "requests": requests,
        "duplicate_fraction": duplicate_fraction,
        "tenants": tuple(tenants) or ("default",),
        "timeout": timeout,
        "max_instructions": max_instructions,
    }
    started = time.monotonic()
    stop_at = started + duration if duration is not None else None
    vusers = [
        _VUser(v, address, corpus, opts, stop_at) for v in range(concurrency)
    ]
    try:
        for vuser in vusers:
            vuser.start()
        for vuser in vusers:
            vuser.join()
        elapsed = time.monotonic() - started
        stats = _server_stats(address)
    finally:
        if server is not None:
            server.stop()

    records = [r for vuser in vusers for r in vuser.records]
    failures = [v.failure for v in vusers if v.failure]
    latencies = sorted(r["latency_s"] for r in records if not r["rejected"])
    completed = [r for r in records if not r["rejected"]]
    errors = [r for r in completed if not r["ok"]]
    rejected = [r for r in records if r["rejected"]]
    report: Dict[str, Any] = {
        "kind": "repro-loadgen-report",
        "params": {
            "op": op,
            "concurrency": concurrency,
            "duration_s": duration,
            "requests_per_vuser": requests,
            "seed": seed,
            "duplicate_fraction": duplicate_fraction,
            "tenants": list(opts["tenants"]),
            "corpus_size": len(corpus),
            "spawned": spawn,
        },
        "elapsed_s": round(elapsed, 3),
        "requests": len(records),
        "completed": len(completed),
        "errors": len(errors),
        "error_rate": (len(errors) / len(completed)) if completed else 0.0,
        "error_kinds": _count(r.get("error_kind") for r in errors),
        "rejected": len(rejected),
        "reject_reasons": _count(r.get("reason") for r in rejected),
        "deduped": sum(1 for r in completed if r["deduped"]),
        "cached": sum(1 for r in completed if r["cached"]),
        "throughput_rps": round(len(completed) / elapsed, 3) if elapsed else 0.0,
        "latency_s": {
            "p50": percentile(latencies, 0.50),
            "p90": percentile(latencies, 0.90),
            "p99": percentile(latencies, 0.99),
            "mean": (sum(latencies) / len(latencies)) if latencies else None,
            "stddev": stddev(latencies),
            "max": latencies[-1] if latencies else None,
        },
        "slowest": [
            {
                "latency_s": round(r["latency_s"], 6),
                "trace": r.get("trace"),
                "program": r.get("program"),
                "op": r.get("op"),
            }
            for r in sorted(
                completed, key=lambda r: r["latency_s"], reverse=True
            )[:5]
        ],
        "vuser_failures": failures,
        "server": stats,
    }
    if check is not None:
        report["slo"] = check_slo(report, json.loads(Path(check).read_text()),
                                  tolerance=tolerance)
    if latencies_out is not None:
        path = Path(latencies_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    return report


def stddev(values: Sequence[float]) -> Optional[float]:
    """Population standard deviation (None for an empty sequence)."""
    if not values:
        return None
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def _count(values) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for value in values:
        key = str(value)
        out[key] = out.get(key, 0) + 1
    return out


# ---------------------------------------------------------------------------
# The SLO gate
# ---------------------------------------------------------------------------


def check_slo(
    report: Dict[str, Any],
    thresholds: Dict[str, Any],
    tolerance: float = 1.0,
) -> Dict[str, Any]:
    """Gate a report against committed thresholds (``BENCH_serve.json``).

    Recognized threshold keys: ``p50_s``/``p90_s``/``p99_s`` (client
    latency ceilings, scaled by *tolerance* to absorb shared-runner
    noise), ``max_error_rate``, ``max_rejects``, ``min_dedup_hits``,
    ``min_requests``.  Returns ``{"ok": bool, "violations": [...]}`` —
    empty violations means the gate passes.
    """
    violations: List[str] = []
    latency = report.get("latency_s", {})
    for q in ("p50", "p90", "p99"):
        ceiling = thresholds.get(f"{q}_s")
        observed = latency.get(q)
        if ceiling is None:
            continue
        limit = ceiling * tolerance
        if observed is None:
            violations.append(f"{q}: no latency samples")
        elif observed > limit:
            violations.append(
                f"{q}: {observed:.4f}s exceeds {ceiling}s * {tolerance} = {limit:.4f}s"
            )
    max_error_rate = thresholds.get("max_error_rate")
    if max_error_rate is not None and report["error_rate"] > max_error_rate:
        violations.append(
            f"error_rate: {report['error_rate']:.4f} exceeds {max_error_rate}"
            f" ({report['errors']} errors: {report['error_kinds']})"
        )
    max_rejects = thresholds.get("max_rejects")
    if max_rejects is not None and report["rejected"] > max_rejects:
        violations.append(
            f"rejected: {report['rejected']} exceeds {max_rejects}"
        )
    min_dedup = thresholds.get("min_dedup_hits")
    if min_dedup is not None:
        # Prefer the server's count (covers every client); fall back to
        # the responses this run saw marked deduped.
        server = report.get("server") or {}
        hits = (
            server.get("server", {}).get("singleflight", {}).get("dedup_hits")
            if isinstance(server.get("server"), dict)
            else None
        )
        if hits is None:
            hits = report.get("deduped", 0)
        if hits < min_dedup:
            violations.append(f"dedup_hits: {hits} below {min_dedup}")
    min_requests = thresholds.get("min_requests")
    if min_requests is not None and report["completed"] < min_requests:
        violations.append(
            f"completed: {report['completed']} below {min_requests}"
        )
    if report.get("vuser_failures"):
        violations.append(f"vuser failures: {report['vuser_failures']}")
    return {"ok": not violations, "violations": violations,
            "thresholds": thresholds, "tolerance": tolerance}
