"""The content-addressed compile cache.

Compilation is a pure function of (source, configuration, compiler
version), so its output can be cached under a key derived from exactly
those three inputs:

* **canonical source** — the program is read and re-written as datums,
  so whitespace and comments do not affect the key (plus whether the
  library prelude is prepended);
* **configuration fingerprint** — :meth:`CompilerConfig.fingerprint`,
  canonical JSON over *every* field;
* **compiler version** — ``repro.__version__``; a new release never
  reuses an old release's entries.

The key is the SHA-256 of those parts; the store is content-addressed
(``objects/<k[:2]>/<k>.bin``) with a small in-memory LRU in front of
it.  Disk writes are atomic (temp file + ``os.replace``) so a crashed
or concurrent writer can never leave a half-written entry under a live
key, and every entry carries a checksum so a corrupted or truncated
file is detected and treated as a **miss**, never an error.

**The artifact tier.**  Alongside the ISA objects the cache keeps a
second content-addressed tier, ``artifacts/<k[:2]>/<k>.bin``
(:mod:`repro.vm.artifact`): the same program with its pre-decoded
instruction streams and marshal-serialized trace modules attached, so
a warm process skips predecode + blockcompile entirely.  Same keys,
same framing discipline, stricter validity (artifacts additionally
stamp the artifact format, the Python bytecode magic, and the config
fingerprint — any skew is a miss).  :meth:`CompileCache.compile`
probes memory → artifact → ISA; an ISA hit with a missing or stale
artifact re-promotes (rebuilds and rewrites the artifact), so the two
tiers converge on any shared disk root, sharded or plain.  Artifact
handling is gated by ``CompilerConfig.artifact_cache`` and the
cache's ``artifacts`` flag, and only applies to ``vm_fast`` configs
(the tier stores fast-path state).  See ``docs/aot.md``.

The on-disk root defaults to ``~/.cache/repro`` (honouring
``REPRO_CACHE_DIR`` and ``XDG_CACHE_HOME``), deliberately outside the
repository tree.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Iterator, List, Optional, Tuple

from repro import __version__
from repro.backend.codegen import CompiledProgram
from repro.config import CompilerConfig
from repro.observe.catalog import declare
from repro.observe.metrics import get_registry
from repro.pipeline import compile_source
from repro.sexp.reader import read_all
from repro.sexp.writer import write_datum
from repro.vm.artifact import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactStale,
    build_artifact,
    load_artifact,
)

#: On-disk entry header; bump when the payload layout changes.
MAGIC = b"RPC1"
_DIGEST_LEN = hashlib.sha256().digest_size


class CacheCorrupt(Exception):
    """An on-disk entry failed validation (bad magic, checksum mismatch,
    truncated pickle, wrong payload type).  Internal: the cache converts
    it into a miss."""


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro`` — never a path inside the repository."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def canonical_source(source: str, prelude: bool = True) -> str:
    """The source half of the cache key: every top-level form re-written
    by the s-expression writer, so formatting and comments cannot split
    the cache.  Raises the reader's error on unparseable input (callers
    fall back to an uncached compile, which reports it properly)."""
    forms = read_all(source)
    tag = "prelude" if prelude else "bare"
    return tag + "\n" + "\n".join(write_datum(form) for form in forms)


def cache_key(
    source: str, config: Optional[CompilerConfig] = None, prelude: bool = True
) -> str:
    """SHA-256 over (canonical source, config fingerprint, version)."""
    config = config or CompilerConfig()
    h = hashlib.sha256()
    h.update(canonical_source(source, prelude).encode())
    h.update(b"\x00")
    h.update(config.fingerprint().encode())
    h.update(b"\x00")
    h.update(__version__.encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def serialize_compiled(compiled: CompiledProgram) -> bytes:
    """Pickle a compiled program for the on-disk store.

    The VM fast-path caches (``fast_instructions``/``fast_blocks``)
    hold exec-compiled Python functions, which are both unpicklable and
    derived data — they are stripped for the duration of the pickle and
    restored, and are rebuilt lazily on first execution of a
    deserialized program.  The payload is framed as
    ``MAGIC + sha256(body) + body`` so corruption is detectable.
    """
    stashed = [
        (code.fast_instructions, code.fast_blocks) for code in compiled.codes
    ]
    for code in compiled.codes:
        code.fast_instructions = None
        code.fast_blocks = None
    try:
        body = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for code, (fast, blocks) in zip(compiled.codes, stashed):
            code.fast_instructions = fast
            code.fast_blocks = blocks
    return MAGIC + hashlib.sha256(body).digest() + body


def deserialize_compiled(data: bytes) -> CompiledProgram:
    """Inverse of :func:`serialize_compiled`; raises :class:`CacheCorrupt`
    on any framing, checksum, or unpickling problem."""
    header = len(MAGIC) + _DIGEST_LEN
    if len(data) < header or data[: len(MAGIC)] != MAGIC:
        raise CacheCorrupt("bad entry header")
    digest = data[len(MAGIC) : header]
    body = data[header:]
    if hashlib.sha256(body).digest() != digest:
        raise CacheCorrupt("checksum mismatch")
    try:
        obj = pickle.loads(body)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is corruption
        raise CacheCorrupt(f"unpicklable body: {exc}") from exc
    if not isinstance(obj, CompiledProgram):
        raise CacheCorrupt(f"unexpected payload type {type(obj).__name__}")
    return obj


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (the ``repro.observe`` metric set)."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    corruptions: int = 0
    bytes_written: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_stores: int = 0
    artifact_corruptions: int = 0
    artifact_bytes_written: int = 0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The two on-disk tiers (also the subdirectory names under the root).
TIERS = ("objects", "artifacts")


@dataclass
class CacheEntry:
    """One on-disk object, as reported by :meth:`CompileCache.entries`."""

    key: str
    path: str
    size: int
    mtime: float = field(repr=False, default=0.0)
    tier: str = "objects"


class CompileCache:
    """In-memory LRU over an (optional) on-disk content-addressed store.

    ``get``/``put`` move whole :class:`CompiledProgram` objects; the
    memory tier returns the *same* object to repeated callers (compiled
    programs are immutable apart from the idempotent, lazily rebuilt VM
    fast-path caches), while the disk tier deserializes a fresh object
    per process.  Hits refresh both the LRU position and the disk
    entry's mtime, which is the recency order :meth:`gc` evicts in.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        memory_entries: int = 256,
        disk: bool = True,
        artifacts: bool = True,
        registry=None,
    ) -> None:
        self.disk = disk
        self.root = root if root is not None else (
            default_cache_dir() if disk else None
        )
        self.memory_entries = memory_entries
        #: Whether compile() may read/write the executable-artifact
        #: tier (still subject to the per-config ``artifact_cache``
        #: knob; the tier needs a disk root).
        self.artifacts = artifacts and disk
        self.stats = CacheStats()
        self.registry = registry if registry is not None else get_registry()
        self._memory: "OrderedDict[str, CompiledProgram]" = OrderedDict()

    # -- key/value interface -------------------------------------------

    def get(self, key: str) -> Optional[CompiledProgram]:
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            if self.registry.enabled:
                declare(self.registry, "repro_cache_hits").labels(
                    tier="memory"
                ).inc()
            return cached
        if self.disk:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                self._count_miss()
                return None
            try:
                compiled = deserialize_compiled(data)
            except CacheCorrupt:
                self.stats.corruptions += 1
                if self.registry.enabled:
                    declare(self.registry, "repro_cache_corruptions").inc()
                self._count_miss()
                self._discard(path)
                return None
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - concurrent GC
                pass
            self._remember(key, compiled)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            if self.registry.enabled:
                declare(self.registry, "repro_cache_hits").labels(
                    tier="disk"
                ).inc()
            return compiled
        self._count_miss()
        return None

    def _count_miss(self) -> None:
        self.stats.misses += 1
        if self.registry.enabled:
            declare(self.registry, "repro_cache_misses").inc()

    def put(self, key: str, compiled: CompiledProgram) -> None:
        self._remember(key, compiled)
        if not self.disk:
            return
        data = serialize_compiled(compiled)
        self._write(self._path(key), data)
        self.stats.stores += 1
        self.stats.bytes_written += len(data)
        if self.registry.enabled:
            declare(self.registry, "repro_cache_stores").inc()
            declare(self.registry, "repro_cache_bytes_written").inc(len(data))
            declare(self.registry, "repro_cache_entry_bytes").observe(len(data))

    # -- the artifact tier ----------------------------------------------

    def get_artifact(
        self, key: str, fingerprint: Optional[str] = None
    ) -> Optional[CompiledProgram]:
        """Load the executable artifact for *key*, or None.  Corrupt
        entries are deleted and counted; stale ones (format/Python/
        version/fingerprint skew) are left for re-promotion to
        overwrite.  Either way: a miss, never an error."""
        if not self.artifacts:
            return None
        path = self._artifact_path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._count_artifact_miss()
            return None
        try:
            compiled = load_artifact(data, expected_fingerprint=fingerprint)
        except ArtifactCorrupt:
            self.stats.artifact_corruptions += 1
            if self.registry.enabled:
                declare(self.registry, "repro_artifact_corruptions").inc()
            self._count_artifact_miss()
            self._discard(path)
            return None
        except ArtifactStale:
            self._count_artifact_miss()
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - concurrent GC
            pass
        self.stats.artifact_hits += 1
        if self.registry.enabled:
            declare(self.registry, "repro_artifact_hits").inc()
            declare(self.registry, "repro_cache_hits").labels(
                tier="artifact"
            ).inc()
        return compiled

    def put_artifact(self, key: str, compiled: CompiledProgram) -> bool:
        """Build and store the executable artifact for *key*.  Build or
        write failures are swallowed (the artifact tier is an
        accelerator, never a correctness dependency); returns whether
        the artifact was written."""
        if not self.artifacts:
            return False
        started = time.perf_counter()
        try:
            data = build_artifact(compiled)
            self._write(self._artifact_path(key), data)
        except (ArtifactError, OSError, ValueError):
            return False
        self.stats.artifact_stores += 1
        self.stats.artifact_bytes_written += len(data)
        if self.registry.enabled:
            declare(self.registry, "repro_artifact_stores").inc()
            declare(self.registry, "repro_artifact_bytes_written").inc(len(data))
            declare(self.registry, "repro_artifact_build_seconds").observe(
                time.perf_counter() - started
            )
        return True

    def _count_artifact_miss(self) -> None:
        self.stats.artifact_misses += 1
        if self.registry.enabled:
            declare(self.registry, "repro_artifact_misses").inc()

    def _artifact_enabled(self, config: CompilerConfig) -> bool:
        # The tier stores fast-path state; legacy-loop configs have
        # nothing to gain and nothing to store.
        return self.artifacts and config.artifact_cache and config.vm_fast

    def _write(self, path: str, data: bytes) -> None:
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise

    # -- the one-call compile front door --------------------------------

    def compile(
        self,
        source: str,
        config: Optional[CompilerConfig] = None,
        prelude: bool = True,
        tracer=None,
        times=None,
        key: Optional[str] = None,
    ) -> Tuple[CompiledProgram, bool]:
        """Compile *source* under *config*, through the cache.

        Returns ``(compiled, hit)``.  On a hit the compiler never runs,
        so per-pass tracer spans and ``times`` are only recorded on a
        miss (callers that want compile observability should bypass the
        cache).  ``key`` short-circuits the key derivation when the
        caller (the sharded front, the single-flight table) has already
        computed it.

        Tier order: memory LRU, then the executable-artifact tier
        (when enabled for this config — skips predecode/blockcompile
        entirely), then the ISA tier.  An ISA hit whose artifact was
        missing or stale re-promotes it; a full miss compiles and
        writes both tiers.
        """
        config = config or CompilerConfig()
        if key is None:
            key = cache_key(source, config, prelude)
        use_artifact = self._artifact_enabled(config)
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            if self.registry.enabled:
                declare(self.registry, "repro_cache_hits").labels(
                    tier="memory"
                ).inc()
            return cached, True
        if use_artifact:
            compiled = self.get_artifact(key, fingerprint=config.fingerprint())
            if compiled is not None:
                self._remember(key, compiled)
                self.stats.hits += 1
                return compiled, True
        cached = self.get(key)
        if cached is not None:
            if use_artifact:
                # ISA hit, artifact miss: promote so the next warm
                # process skips predecode + blockcompile.
                self.put_artifact(key, cached)
            return cached, True
        started = time.perf_counter()
        compiled = compile_source(
            source, config, prelude=prelude, tracer=tracer, times=times
        )
        if self.registry.enabled:
            declare(self.registry, "repro_compile_seconds").observe(
                time.perf_counter() - started
            )
        self.put(key, compiled)
        if use_artifact:
            self.put_artifact(key, compiled)
        return compiled, False

    # -- maintenance ----------------------------------------------------

    def entries(self, tier: str = "all") -> List[CacheEntry]:
        """On-disk entries, oldest (least recently used) first.  *tier*
        selects ``"objects"`` (ISA), ``"artifacts"``, or ``"all"``
        (the default — maintenance must see both tiers)."""
        tiers = TIERS if tier == "all" else (tier,)
        found: List[CacheEntry] = []
        for tier_name in tiers:
            tier_dir = self._tier_dir(tier_name)
            if tier_dir is None or not os.path.isdir(tier_dir):
                continue
            for shard in sorted(os.listdir(tier_dir)):
                shard_dir = os.path.join(tier_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if not name.endswith(".bin"):
                        continue
                    path = os.path.join(shard_dir, name)
                    try:
                        st = os.stat(path)
                    except OSError:  # pragma: no cover - concurrent removal
                        continue
                    found.append(CacheEntry(
                        name[: -len(".bin")], path, st.st_size,
                        st.st_mtime, tier_name,
                    ))
        found.sort(key=lambda e: (e.mtime, e.key, e.tier))
        return found

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Shrink the disk store to the given bounds, evicting least
        recently used entries first.  Returns the number removed."""
        entries = self.entries()
        total_bytes = sum(e.size for e in entries)
        total_entries = len(entries)
        removed = 0
        for entry in entries:
            over_entries = max_entries is not None and total_entries > max_entries
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not (over_entries or over_bytes):
                break
            self._discard(entry.path)
            self._memory.pop(entry.key, None)
            total_entries -= 1
            total_bytes -= entry.size
            removed += 1
            self.stats.evictions += 1
        if removed and self.registry.enabled:
            declare(self.registry, "repro_cache_evictions").inc(removed)
        return removed

    def verify(self, remove: bool = False) -> dict:
        """Integrity-scan the on-disk store — **both tiers**: ISA
        entries re-validate framing and checksum; artifact entries
        additionally check the version/fingerprint stamps (skew counts
        as ``stale``, not ``corrupt`` — a stale artifact is simply
        awaiting re-promotion, though ``remove=True`` deletes it too,
        since it can never be read again by this build).

        Corrupt entries are counted (``stats.corruptions`` /
        ``stats.artifact_corruptions`` and their metrics) and, with
        ``remove=True``, deleted.  Returns ``{"scanned", "ok",
        "corrupt", "stale", "removed", "bytes", "tiers"}`` where
        ``tiers`` breaks the same counts down per tier.
        """
        tiers = {
            name: {"scanned": 0, "ok": 0, "corrupt": 0, "stale": 0,
                   "removed": 0, "bytes": 0}
            for name in TIERS
        }
        for entry in self.entries():
            t = tiers[entry.tier]
            t["scanned"] += 1
            t["bytes"] += entry.size
            status = "ok"
            try:
                with open(entry.path, "rb") as handle:
                    data = handle.read()
                if entry.tier == "artifacts":
                    load_artifact(data)
                else:
                    deserialize_compiled(data)
            except ArtifactStale:
                status = "stale"
            except (OSError, CacheCorrupt, ArtifactError):
                status = "corrupt"
                if entry.tier == "artifacts":
                    self.stats.artifact_corruptions += 1
                    if self.registry.enabled:
                        declare(self.registry, "repro_artifact_corruptions").inc()
                else:
                    self.stats.corruptions += 1
                    if self.registry.enabled:
                        declare(self.registry, "repro_cache_corruptions").inc()
            t[status] += 1
            if status != "ok" and remove:
                self._discard(entry.path)
                if entry.tier == "objects":
                    self._memory.pop(entry.key, None)
                t["removed"] += 1
        report = {
            key: sum(t[key] for t in tiers.values())
            for key in ("scanned", "ok", "corrupt", "stale", "removed", "bytes")
        }
        report["tiers"] = tiers
        return report

    def clear(self) -> int:
        """Drop every entry (memory and disk).  Returns the number of
        disk entries removed — the explicit invalidation command."""
        removed = 0
        for entry in self.entries():
            self._discard(entry.path)
            removed += 1
        self._memory.clear()
        return removed

    def disk_usage(self) -> Tuple[int, int]:
        """(entry count, total bytes) of the on-disk store."""
        entries = self.entries()
        return len(entries), sum(e.size for e in entries)

    # -- internals ------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, "objects", key[:2], key + ".bin")

    def _artifact_path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, "artifacts", key[:2], key + ".bin")

    def _tier_dir(self, tier: str) -> Optional[str]:
        return os.path.join(self.root, tier) if self.root else None

    def _remember(self, key: str, compiled: CompiledProgram) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            if self.registry.enabled:
                declare(self.registry, "repro_cache_evictions").inc()

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def __repr__(self) -> str:
        where = self.root if self.disk else "memory-only"
        return f"<CompileCache {where} {self.stats.as_dict()}>"


def shard_index(key: str, shards: int) -> int:
    """Which shard a cache key belongs to: the key's leading byte
    modulo the shard count — the same prefix that names the disk
    store's fan-out directory (``objects/<k[:2]>/``), so one shard owns
    a contiguous slice of the on-disk namespace."""
    return int(key[:2], 16) % shards


class ShardedCompileCache:
    """A key-prefix-sharded front over N :class:`CompileCache` tiers.

    Each shard is an independent cache (its own memory LRU and
    counters) over the *same* disk root — the content-addressed store
    already fans out by key prefix, so shards never contend for the
    same objects.  Sharding bounds the cost of any per-shard scan or
    eviction sweep to ``1/N`` of the keyspace and gives the service
    layer independently evictable units; the networked front door pairs
    it with a flight table sharded by the same prefix
    (:mod:`repro.serve.net.singleflight`).

    The interface is the :class:`CompileCache` subset the service layer
    uses (``get``/``put``/``compile``/``stats``), so the two are
    drop-in interchangeable as worker state.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        shards: int = 8,
        memory_entries: int = 256,
        disk: bool = True,
        artifacts: bool = True,
        registry=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        per_shard = max(1, memory_entries // shards)
        self.shards: Tuple[CompileCache, ...] = tuple(
            CompileCache(
                root=root,
                memory_entries=per_shard,
                disk=disk,
                artifacts=artifacts,
                registry=registry,
            )
            for _ in range(shards)
        )
        # Every shard shares one root (or all are memory-only).
        self.root = self.shards[0].root
        self.disk = disk

    def shard_for(self, key: str) -> CompileCache:
        return self.shards[shard_index(key, len(self.shards))]

    def get(self, key: str) -> Optional[CompiledProgram]:
        return self.shard_for(key).get(key)

    def put(self, key: str, compiled: CompiledProgram) -> None:
        self.shard_for(key).put(key, compiled)

    def compile(
        self,
        source: str,
        config: Optional[CompilerConfig] = None,
        prelude: bool = True,
        tracer=None,
        times=None,
        key: Optional[str] = None,
    ) -> Tuple[CompiledProgram, bool]:
        """Route one compile to its key's shard (the key is computed
        once, here, and handed down)."""
        if key is None:
            key = cache_key(source, config, prelude)
        return self.shard_for(key).compile(
            source, config, prelude=prelude, tracer=tracer, times=times, key=key
        )

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters across every shard (a fresh snapshot
        object; per-shard views live on the shards themselves)."""
        total = CacheStats()
        for shard in self.shards:
            s = shard.stats
            for f in fields(CacheStats):
                setattr(total, f.name, getattr(total, f.name) + getattr(s, f.name))
        return total

    def __repr__(self) -> str:
        where = self.root if self.disk else "memory-only"
        return (
            f"<ShardedCompileCache x{len(self.shards)} {where} "
            f"{self.stats.as_dict()}>"
        )


def iter_keys(sources, config: Optional[CompilerConfig] = None) -> Iterator[str]:
    """Cache keys for many sources under one config (warm-up helper)."""
    for source in sources:
        yield cache_key(source, config)
