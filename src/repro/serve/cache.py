"""The content-addressed compile cache.

Compilation is a pure function of (source, configuration, compiler
version), so its output can be cached under a key derived from exactly
those three inputs:

* **canonical source** — the program is read and re-written as datums,
  so whitespace and comments do not affect the key (plus whether the
  library prelude is prepended);
* **configuration fingerprint** — :meth:`CompilerConfig.fingerprint`,
  canonical JSON over *every* field;
* **compiler version** — ``repro.__version__``; a new release never
  reuses an old release's entries.

The key is the SHA-256 of those parts; the store is content-addressed
(``objects/<k[:2]>/<k>.bin``) with a small in-memory LRU in front of
it.  Disk writes are atomic (temp file + ``os.replace``) so a crashed
or concurrent writer can never leave a half-written entry under a live
key, and every entry carries a checksum so a corrupted or truncated
file is detected and treated as a **miss**, never an error.

The on-disk root defaults to ``~/.cache/repro`` (honouring
``REPRO_CACHE_DIR`` and ``XDG_CACHE_HOME``), deliberately outside the
repository tree.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro import __version__
from repro.backend.codegen import CompiledProgram
from repro.config import CompilerConfig
from repro.observe.catalog import declare
from repro.observe.metrics import get_registry
from repro.pipeline import compile_source
from repro.sexp.reader import read_all
from repro.sexp.writer import write_datum

#: On-disk entry header; bump when the payload layout changes.
MAGIC = b"RPC1"
_DIGEST_LEN = hashlib.sha256().digest_size


class CacheCorrupt(Exception):
    """An on-disk entry failed validation (bad magic, checksum mismatch,
    truncated pickle, wrong payload type).  Internal: the cache converts
    it into a miss."""


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro`` — never a path inside the repository."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def canonical_source(source: str, prelude: bool = True) -> str:
    """The source half of the cache key: every top-level form re-written
    by the s-expression writer, so formatting and comments cannot split
    the cache.  Raises the reader's error on unparseable input (callers
    fall back to an uncached compile, which reports it properly)."""
    forms = read_all(source)
    tag = "prelude" if prelude else "bare"
    return tag + "\n" + "\n".join(write_datum(form) for form in forms)


def cache_key(
    source: str, config: Optional[CompilerConfig] = None, prelude: bool = True
) -> str:
    """SHA-256 over (canonical source, config fingerprint, version)."""
    config = config or CompilerConfig()
    h = hashlib.sha256()
    h.update(canonical_source(source, prelude).encode())
    h.update(b"\x00")
    h.update(config.fingerprint().encode())
    h.update(b"\x00")
    h.update(__version__.encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def serialize_compiled(compiled: CompiledProgram) -> bytes:
    """Pickle a compiled program for the on-disk store.

    The VM fast-path caches (``fast_instructions``/``fast_blocks``)
    hold exec-compiled Python functions, which are both unpicklable and
    derived data — they are stripped for the duration of the pickle and
    restored, and are rebuilt lazily on first execution of a
    deserialized program.  The payload is framed as
    ``MAGIC + sha256(body) + body`` so corruption is detectable.
    """
    stashed = [
        (code.fast_instructions, code.fast_blocks) for code in compiled.codes
    ]
    for code in compiled.codes:
        code.fast_instructions = None
        code.fast_blocks = None
    try:
        body = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for code, (fast, blocks) in zip(compiled.codes, stashed):
            code.fast_instructions = fast
            code.fast_blocks = blocks
    return MAGIC + hashlib.sha256(body).digest() + body


def deserialize_compiled(data: bytes) -> CompiledProgram:
    """Inverse of :func:`serialize_compiled`; raises :class:`CacheCorrupt`
    on any framing, checksum, or unpickling problem."""
    header = len(MAGIC) + _DIGEST_LEN
    if len(data) < header or data[: len(MAGIC)] != MAGIC:
        raise CacheCorrupt("bad entry header")
    digest = data[len(MAGIC) : header]
    body = data[header:]
    if hashlib.sha256(body).digest() != digest:
        raise CacheCorrupt("checksum mismatch")
    try:
        obj = pickle.loads(body)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is corruption
        raise CacheCorrupt(f"unpicklable body: {exc}") from exc
    if not isinstance(obj, CompiledProgram):
        raise CacheCorrupt(f"unexpected payload type {type(obj).__name__}")
    return obj


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (the ``repro.observe`` metric set)."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    corruptions: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "bytes_written": self.bytes_written,
        }


@dataclass
class CacheEntry:
    """One on-disk object, as reported by :meth:`CompileCache.entries`."""

    key: str
    path: str
    size: int
    mtime: float = field(repr=False, default=0.0)


class CompileCache:
    """In-memory LRU over an (optional) on-disk content-addressed store.

    ``get``/``put`` move whole :class:`CompiledProgram` objects; the
    memory tier returns the *same* object to repeated callers (compiled
    programs are immutable apart from the idempotent, lazily rebuilt VM
    fast-path caches), while the disk tier deserializes a fresh object
    per process.  Hits refresh both the LRU position and the disk
    entry's mtime, which is the recency order :meth:`gc` evicts in.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        memory_entries: int = 256,
        disk: bool = True,
        registry=None,
    ) -> None:
        self.disk = disk
        self.root = root if root is not None else (
            default_cache_dir() if disk else None
        )
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self.registry = registry if registry is not None else get_registry()
        self._memory: "OrderedDict[str, CompiledProgram]" = OrderedDict()

    # -- key/value interface -------------------------------------------

    def get(self, key: str) -> Optional[CompiledProgram]:
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            if self.registry.enabled:
                declare(self.registry, "repro_cache_hits").labels(
                    tier="memory"
                ).inc()
            return cached
        if self.disk:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                self._count_miss()
                return None
            try:
                compiled = deserialize_compiled(data)
            except CacheCorrupt:
                self.stats.corruptions += 1
                if self.registry.enabled:
                    declare(self.registry, "repro_cache_corruptions").inc()
                self._count_miss()
                self._discard(path)
                return None
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - concurrent GC
                pass
            self._remember(key, compiled)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            if self.registry.enabled:
                declare(self.registry, "repro_cache_hits").labels(
                    tier="disk"
                ).inc()
            return compiled
        self._count_miss()
        return None

    def _count_miss(self) -> None:
        self.stats.misses += 1
        if self.registry.enabled:
            declare(self.registry, "repro_cache_misses").inc()

    def put(self, key: str, compiled: CompiledProgram) -> None:
        self._remember(key, compiled)
        if not self.disk:
            return
        path = self._path(key)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        data = serialize_compiled(compiled)
        fd, tmp = tempfile.mkstemp(dir=parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise
        self.stats.stores += 1
        self.stats.bytes_written += len(data)
        if self.registry.enabled:
            declare(self.registry, "repro_cache_stores").inc()
            declare(self.registry, "repro_cache_bytes_written").inc(len(data))
            declare(self.registry, "repro_cache_entry_bytes").observe(len(data))

    # -- the one-call compile front door --------------------------------

    def compile(
        self,
        source: str,
        config: Optional[CompilerConfig] = None,
        prelude: bool = True,
        tracer=None,
        times=None,
        key: Optional[str] = None,
    ) -> Tuple[CompiledProgram, bool]:
        """Compile *source* under *config*, through the cache.

        Returns ``(compiled, hit)``.  On a hit the compiler never runs,
        so per-pass tracer spans and ``times`` are only recorded on a
        miss (callers that want compile observability should bypass the
        cache).  ``key`` short-circuits the key derivation when the
        caller (the sharded front, the single-flight table) has already
        computed it.
        """
        config = config or CompilerConfig()
        if key is None:
            key = cache_key(source, config, prelude)
        cached = self.get(key)
        if cached is not None:
            return cached, True
        started = time.perf_counter()
        compiled = compile_source(
            source, config, prelude=prelude, tracer=tracer, times=times
        )
        if self.registry.enabled:
            declare(self.registry, "repro_compile_seconds").observe(
                time.perf_counter() - started
            )
        self.put(key, compiled)
        return compiled, False

    # -- maintenance ----------------------------------------------------

    def entries(self) -> List[CacheEntry]:
        """Every on-disk entry, oldest (least recently used) first."""
        found: List[CacheEntry] = []
        objects = self._objects_dir()
        if objects is None or not os.path.isdir(objects):
            return found
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".bin"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:  # pragma: no cover - concurrent removal
                    continue
                found.append(
                    CacheEntry(name[: -len(".bin")], path, st.st_size, st.st_mtime)
                )
        found.sort(key=lambda e: (e.mtime, e.key))
        return found

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Shrink the disk store to the given bounds, evicting least
        recently used entries first.  Returns the number removed."""
        entries = self.entries()
        total_bytes = sum(e.size for e in entries)
        total_entries = len(entries)
        removed = 0
        for entry in entries:
            over_entries = max_entries is not None and total_entries > max_entries
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not (over_entries or over_bytes):
                break
            self._discard(entry.path)
            self._memory.pop(entry.key, None)
            total_entries -= 1
            total_bytes -= entry.size
            removed += 1
            self.stats.evictions += 1
        if removed and self.registry.enabled:
            declare(self.registry, "repro_cache_evictions").inc(removed)
        return removed

    def verify(self, remove: bool = False) -> dict:
        """Integrity-scan the on-disk store: re-validate every entry's
        framing and checksum without deserializing the pickle bodies
        into live objects that hit the memory tier.

        Corrupt entries are counted (``stats.corruptions`` and the
        ``repro_cache_corruptions`` metric) and, with ``remove=True``,
        deleted.  Returns ``{"scanned", "ok", "corrupt", "removed",
        "bytes"}``.
        """
        scanned = ok = corrupt = removed = total_bytes = 0
        for entry in self.entries():
            scanned += 1
            total_bytes += entry.size
            try:
                with open(entry.path, "rb") as handle:
                    deserialize_compiled(handle.read())
            except (OSError, CacheCorrupt):
                corrupt += 1
                self.stats.corruptions += 1
                if self.registry.enabled:
                    declare(self.registry, "repro_cache_corruptions").inc()
                if remove:
                    self._discard(entry.path)
                    self._memory.pop(entry.key, None)
                    removed += 1
            else:
                ok += 1
        return {
            "scanned": scanned,
            "ok": ok,
            "corrupt": corrupt,
            "removed": removed,
            "bytes": total_bytes,
        }

    def clear(self) -> int:
        """Drop every entry (memory and disk).  Returns the number of
        disk entries removed — the explicit invalidation command."""
        removed = 0
        for entry in self.entries():
            self._discard(entry.path)
            removed += 1
        self._memory.clear()
        return removed

    def disk_usage(self) -> Tuple[int, int]:
        """(entry count, total bytes) of the on-disk store."""
        entries = self.entries()
        return len(entries), sum(e.size for e in entries)

    # -- internals ------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, "objects", key[:2], key + ".bin")

    def _objects_dir(self) -> Optional[str]:
        return os.path.join(self.root, "objects") if self.root else None

    def _remember(self, key: str, compiled: CompiledProgram) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            if self.registry.enabled:
                declare(self.registry, "repro_cache_evictions").inc()

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def __repr__(self) -> str:
        where = self.root if self.disk else "memory-only"
        return f"<CompileCache {where} {self.stats.as_dict()}>"


def shard_index(key: str, shards: int) -> int:
    """Which shard a cache key belongs to: the key's leading byte
    modulo the shard count — the same prefix that names the disk
    store's fan-out directory (``objects/<k[:2]>/``), so one shard owns
    a contiguous slice of the on-disk namespace."""
    return int(key[:2], 16) % shards


class ShardedCompileCache:
    """A key-prefix-sharded front over N :class:`CompileCache` tiers.

    Each shard is an independent cache (its own memory LRU and
    counters) over the *same* disk root — the content-addressed store
    already fans out by key prefix, so shards never contend for the
    same objects.  Sharding bounds the cost of any per-shard scan or
    eviction sweep to ``1/N`` of the keyspace and gives the service
    layer independently evictable units; the networked front door pairs
    it with a flight table sharded by the same prefix
    (:mod:`repro.serve.net.singleflight`).

    The interface is the :class:`CompileCache` subset the service layer
    uses (``get``/``put``/``compile``/``stats``), so the two are
    drop-in interchangeable as worker state.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        shards: int = 8,
        memory_entries: int = 256,
        disk: bool = True,
        registry=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        per_shard = max(1, memory_entries // shards)
        self.shards: Tuple[CompileCache, ...] = tuple(
            CompileCache(
                root=root,
                memory_entries=per_shard,
                disk=disk,
                registry=registry,
            )
            for _ in range(shards)
        )
        # Every shard shares one root (or all are memory-only).
        self.root = self.shards[0].root
        self.disk = disk

    def shard_for(self, key: str) -> CompileCache:
        return self.shards[shard_index(key, len(self.shards))]

    def get(self, key: str) -> Optional[CompiledProgram]:
        return self.shard_for(key).get(key)

    def put(self, key: str, compiled: CompiledProgram) -> None:
        self.shard_for(key).put(key, compiled)

    def compile(
        self,
        source: str,
        config: Optional[CompilerConfig] = None,
        prelude: bool = True,
        tracer=None,
        times=None,
        key: Optional[str] = None,
    ) -> Tuple[CompiledProgram, bool]:
        """Route one compile to its key's shard (the key is computed
        once, here, and handed down)."""
        if key is None:
            key = cache_key(source, config, prelude)
        return self.shard_for(key).compile(
            source, config, prelude=prelude, tracer=tracer, times=times, key=key
        )

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters across every shard (a fresh snapshot
        object; per-shard views live on the shards themselves)."""
        total = CacheStats()
        for shard in self.shards:
            s = shard.stats
            total.hits += s.hits
            total.misses += s.misses
            total.memory_hits += s.memory_hits
            total.disk_hits += s.disk_hits
            total.stores += s.stores
            total.evictions += s.evictions
            total.corruptions += s.corruptions
            total.bytes_written += s.bytes_written
        return total

    def __repr__(self) -> str:
        where = self.root if self.disk else "memory-only"
        return (
            f"<ShardedCompileCache x{len(self.shards)} {where} "
            f"{self.stats.as_dict()}>"
        )


def iter_keys(sources, config: Optional[CompilerConfig] = None) -> Iterator[str]:
    """Cache keys for many sources under one config (warm-up helper)."""
    for source in sources:
        yield cache_key(source, config)
