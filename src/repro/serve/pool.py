"""A crash-isolated multi-process worker pool.

Unlike ``multiprocessing.Pool`` (where a dying worker can wedge or
poison the whole pool) the scheduler here keeps every queued task on
the parent side and hands tasks to idle workers one at a time.  That
buys the service guarantees the batch/serve layer advertises:

* **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM kill) fails *its* task with ``error_kind="crash"`` and is
  replaced; every other task is unaffected;
* **per-task timeouts** — a task that exceeds its deadline has its
  worker terminated and fails with ``error_kind="timeout"``;
* **cancellation** — queued tasks are dropped without ever starting
  (``error_kind="cancelled"``); a running task's worker is terminated.

Task payloads and results must be picklable plain data.  The work
itself is named by *kind* and resolved in the worker against the
handler registry in :mod:`repro.serve.work`, which is also where
worker-local state (each worker's compile cache) lives.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.observe.catalog import declare
from repro.observe.metrics import get_registry
from repro.observe.recorder import get_flight_recorder
from repro.serve.work import worker_main

#: Seconds the result-poll blocks between liveness/deadline sweeps.
_POLL_INTERVAL = 0.05


@dataclass
class TaskResult:
    """Outcome of one submitted task.

    ``ok`` tasks carry the handler's return dict in ``value``; failed
    tasks carry ``error_kind`` (``"timeout"``, ``"crash"``,
    ``"cancelled"``, ``"budget"``, ``"compile-error"``, ``"read-error"``,
    ``"runtime-error"``, ``"vm-error"``, or ``"error"``) and a one-line
    ``error`` message.  ``queued_s``/``run_s`` are the scheduler-side
    latency split (time waiting for a worker vs. time executing).
    ``meta`` is the worker's telemetry shipment (registry delta and/or
    span payload); the pool absorbs it before handing the result out.
    """

    task_id: int
    kind: str
    ok: bool
    value: Optional[Dict[str, Any]] = None
    error_kind: Optional[str] = None
    error: Optional[str] = None
    queued_s: float = 0.0
    run_s: float = 0.0
    meta: Optional[Dict[str, Any]] = None


@dataclass
class _Task:
    task_id: int
    kind: str
    payload: Any
    timeout: Optional[float]
    #: Per-task request-trace context (``RequestTrace.context()``); the
    #: worker re-parents its compile spans under it.  ``None`` falls
    #: back to the pool-static ``init["trace"]``.
    trace: Optional[Dict[str, Any]] = None
    submitted_at: float = field(default_factory=time.monotonic)


class _Worker:
    """One worker process plus its private task queue."""

    def __init__(self, ctx, worker_id: int, results, init: Dict[str, Any]) -> None:
        self.worker_id = worker_id
        self.inbox = ctx.Queue()
        self.proc = ctx.Process(
            target=worker_main,
            args=(worker_id, self.inbox, results, init),
            daemon=True,
        )
        self.proc.start()
        self.task: Optional[_Task] = None
        self.started_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def assign(self, task: _Task) -> None:
        self.task = task
        self.started_at = time.monotonic()
        self.inbox.put((task.task_id, task.kind, task.payload, task.trace))

    def stop(self) -> None:
        try:
            self.inbox.put(None)
        except (OSError, ValueError):  # pragma: no cover - closed queue
            pass

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)
        self.inbox.close()


class WorkerPool:
    """Schedule tasks over *jobs* worker processes.

    Use as a context manager::

        with WorkerPool(jobs=4) as pool:
            ids = [pool.submit("run", {...}) for ...]
            for result in pool.results():
                ...

    ``init`` is passed to every worker at startup (see
    :func:`repro.serve.work.worker_main`); by default workers open the
    shared on-disk compile cache.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[str] = None,
        disk_cache: bool = True,
        artifacts: bool = True,
        cache_shards: int = 1,
        mp_context: Optional[str] = None,
        trace: Optional[Dict[str, Any]] = None,
        registry=None,
        recorder=None,
        flight_dir: Optional[str] = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self._ctx = multiprocessing.get_context(mp_context)
        self._init = {
            "cache": cache,
            "cache_dir": cache_dir,
            "disk_cache": disk_cache,
            "artifacts": artifacts,
            "cache_shards": cache_shards,
            "trace": trace,
        }
        self.registry = registry if registry is not None else get_registry()
        self.recorder = recorder if recorder is not None else get_flight_recorder()
        self.flight_dir = flight_dir
        self.flight_dumps: List[str] = []
        #: Worker span payloads absorbed from task meta, in completion
        #: order — feed these to ``chrome_trace(..., workers=...)``.
        self.worker_spans: List[Dict[str, Any]] = []
        self._results = self._ctx.Queue()
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._next_task_id = 0
        self._pending: "deque[_Task]" = deque()
        self._cancelled: set = set()
        # Results that resolved without a worker round-trip (tasks
        # cancelled while still queued), delivered by the next poll.
        self._ready: List[TaskResult] = []
        self._outstanding = 0
        # Workers killed by the scheduler (crash/timeout/cancel): the
        # next spawn that replaces one counts as a respawn.
        self._dead_workers = 0
        # Telemetry for the observe layer / service stats.
        self.queue_depth_max = 0
        self.submitted = 0
        self.completed = 0
        self.ok_count = 0
        self.error_count = 0
        self.crashes = 0
        self.timeouts = 0
        self.cancelled_count = 0
        self.respawns = 0
        self.latency_total_s = 0.0
        self.latency_max_s = 0.0

    # -- submission -----------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: Any,
        timeout: Optional[float] = None,
        trace: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Queue one task; returns its id.  Tasks start as workers free
        up, in submission order.  *trace* is an optional per-request
        trace context shipped with the task so the worker's compile
        spans join the request's trace."""
        task = _Task(self._next_task_id, kind, payload, timeout, trace)
        self._next_task_id += 1
        self._pending.append(task)
        self._outstanding += 1
        self.submitted += 1
        self.queue_depth_max = max(self.queue_depth_max, len(self._pending))
        self.recorder.record("pool.submit", task_id=task.task_id, kind=kind)
        if self.registry.enabled:
            declare(self.registry, "repro_pool_submitted").inc()
        self._dispatch()
        self._gauge_depth()
        return task.task_id

    def cancel(self, task_id: int) -> bool:
        """Cancel one task.  A queued task is dropped before it starts; a
        running task's worker is terminated.  Either way its result
        arrives as ``error_kind="cancelled"``.  Returns False when the
        id is unknown or already finished."""
        for task in self._pending:
            if task.task_id == task_id:
                self._cancelled.add(task_id)
                return True
        for worker in self._workers.values():
            if worker.task is not None and worker.task.task_id == task_id:
                self._ready.append(
                    self._fail_worker_task(
                        worker, "cancelled", "cancelled by caller"
                    )
                )
                return True
        return False

    def cancel_pending(self) -> int:
        """Drop every not-yet-started task; their results arrive as
        ``error_kind="cancelled"``.  Returns how many were dropped."""
        count = 0
        for task in self._pending:
            if task.task_id not in self._cancelled:
                self._cancelled.add(task.task_id)
                count += 1
        return count

    # -- collection -----------------------------------------------------

    def results(self) -> Iterator[TaskResult]:
        """Yield results in completion order until every submitted task
        has resolved (including cancelled/crashed/timed-out ones)."""
        while self._outstanding or self._ready:
            for result in self._poll(_POLL_INTERVAL):
                yield result

    def poll(self, timeout: float = _POLL_INTERVAL) -> List[TaskResult]:
        """Non-draining collection step: whatever results are ready
        within *timeout* seconds (possibly none).  The daemon's loop
        uses this to interleave result delivery with request intake."""
        if not self._outstanding and not self._ready:
            return []
        return self._poll(timeout)

    def wait_all(self) -> List[TaskResult]:
        return list(self.results())

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def in_flight(self) -> int:
        return sum(1 for w in self._workers.values() if w.busy)

    def stats(self) -> Dict[str, Any]:
        """Scheduler telemetry (queue depth, latency, failure counts).

        Conservation invariant: every submitted task resolves exactly
        once, so ``submitted == ok + errors + cancelled + outstanding``
        (and with the pool drained, ``outstanding`` is zero).
        """
        avg = self.latency_total_s / self.completed if self.completed else 0.0
        return {
            "jobs": self.jobs,
            "submitted": self.submitted,
            "completed": self.completed,
            "ok": self.ok_count,
            "errors": self.error_count,
            "cancelled": self.cancelled_count,
            "outstanding": self._outstanding,
            "queue_depth": self.queue_depth,
            "queue_depth_max": self.queue_depth_max,
            "in_flight": self.in_flight,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "flight_dumps": len(self.flight_dumps),
            "latency_avg_s": avg,
            "latency_max_s": self.latency_max_s,
        }

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Terminate every worker.  In-flight tasks are abandoned."""
        for worker in self._workers.values():
            worker.stop()
        for worker in self._workers.values():
            worker.proc.join(timeout=1)
            if worker.proc.is_alive():
                worker.kill()
        self._workers.clear()
        self._pending.clear()
        self._outstanding = 0

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- scheduler internals -------------------------------------------

    def _dispatch(self) -> None:
        while self._pending:
            # Cancelled-before-start tasks resolve without a worker.
            task = self._pending[0]
            if task.task_id in self._cancelled:
                self._pending.popleft()
                self._cancelled.discard(task.task_id)
                self._ready.append(
                    self._finish(
                        TaskResult(
                            task.task_id,
                            task.kind,
                            ok=False,
                            error_kind="cancelled",
                            error="cancelled before start",
                            queued_s=time.monotonic() - task.submitted_at,
                        )
                    )
                )
                continue
            worker = self._idle_worker()
            if worker is None:
                return
            self._pending.popleft()
            worker.assign(task)

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers.values():
            if not worker.busy:
                return worker
        if len(self._workers) < self.jobs:
            worker = _Worker(
                self._ctx, self._next_worker_id, self._results, self._init
            )
            self._next_worker_id += 1
            self._workers[worker.worker_id] = worker
            event = "spawn"
            if self._dead_workers:
                self._dead_workers -= 1
                self.respawns += 1
                event = "respawn"
            self.recorder.record(
                f"pool.{event}", worker_id=worker.worker_id, pid=worker.proc.pid
            )
            if self.registry.enabled:
                declare(self.registry, "repro_pool_worker_events").labels(
                    event=event
                ).inc()
            return worker
        return None

    def _poll(self, timeout: float) -> List[TaskResult]:
        """Drain the result queue, then sweep deadlines and liveness."""
        out: List[TaskResult] = []
        if self._ready:
            out.extend(self._ready)
            self._ready.clear()
        try:
            message = self._results.get(timeout=timeout)
        except _queue_mod.Empty:
            message = None
        while message is not None:
            out.extend(self._absorb(message))
            try:
                message = self._results.get_nowait()
            except _queue_mod.Empty:
                message = None
        now = time.monotonic()
        for worker in list(self._workers.values()):
            task = worker.task
            if task is None:
                continue
            if task.timeout is not None and now - worker.started_at > task.timeout:
                out.append(
                    self._fail_worker_task(
                        worker, "timeout", f"no result within {task.timeout:g}s"
                    )
                )
            elif not worker.proc.is_alive():
                code = worker.proc.exitcode
                out.append(
                    self._fail_worker_task(
                        worker, "crash", f"worker exited with code {code}"
                    )
                )
        self._dispatch()
        self._gauge_depth()
        return out

    def _absorb(self, message) -> List[TaskResult]:
        worker_id, task_id, ok, value, error_kind, error, run_s, meta = message
        worker = self._workers.get(worker_id)
        if worker is None or worker.task is None or worker.task.task_id != task_id:
            # A terminated worker's last gasp (result raced the kill).
            return []
        task = worker.task
        worker.task = None
        queued_s = worker.started_at - task.submitted_at
        if meta:
            delta = meta.get("metrics")
            if delta and self.registry.enabled:
                self.registry.merge_snapshot(delta)
            spans = meta.get("spans")
            if spans:
                self.worker_spans.append(spans)
        return [
            self._finish(
                TaskResult(
                    task_id,
                    task.kind,
                    ok=ok,
                    value=value,
                    error_kind=error_kind,
                    error=error,
                    queued_s=queued_s,
                    run_s=run_s,
                    meta=meta,
                )
            )
        ]

    def _fail_worker_task(
        self, worker: _Worker, kind: str, message: str
    ) -> TaskResult:
        task = worker.task
        assert task is not None
        worker.task = None
        worker.kill()
        del self._workers[worker.worker_id]
        self._dead_workers += 1
        if kind == "timeout":
            self.timeouts += 1
        elif kind == "crash":
            self.crashes += 1
        event = "cancel" if kind == "cancelled" else kind
        self.recorder.record(
            f"pool.worker-{event}",
            worker_id=worker.worker_id,
            task_id=task.task_id,
            kind=task.kind,
            error=message,
        )
        if self.registry.enabled:
            declare(self.registry, "repro_pool_worker_events").labels(
                event=event
            ).inc()
        if kind == "crash" and self.flight_dir:
            # The post-mortem artifact: the recent event timeline plus
            # the crashed task's request, so the failure is reproducible
            # from the dump alone.
            self.flight_dumps.append(
                self.recorder.dump_to(
                    self.flight_dir,
                    "worker-crash",
                    extra={
                        "worker_id": worker.worker_id,
                        "task_id": task.task_id,
                        "task_kind": task.kind,
                        "payload": task.payload,
                        "error": message,
                        "trace": (task.trace or {}).get("trace_id"),
                    },
                )
            )
            if self.registry.enabled:
                declare(self.registry, "repro_flight_dumps").labels(
                    reason="worker-crash"
                ).inc()
        return self._finish(
            TaskResult(
                task.task_id,
                task.kind,
                ok=False,
                error_kind=kind,
                error=message,
                queued_s=worker.started_at - task.submitted_at,
                run_s=time.monotonic() - worker.started_at,
            )
        )

    def _finish(self, result: TaskResult) -> TaskResult:
        self._outstanding -= 1
        self.completed += 1
        if result.error_kind == "cancelled":
            self.cancelled_count += 1
            outcome = "cancelled"
        elif result.ok:
            self.ok_count += 1
            outcome = "ok"
        else:
            self.error_count += 1
            outcome = "error"
        total = result.queued_s + result.run_s
        self.latency_total_s += total
        self.latency_max_s = max(self.latency_max_s, total)
        if self.registry.enabled:
            declare(self.registry, "repro_pool_tasks").labels(
                outcome=outcome
            ).inc()
            declare(self.registry, "repro_pool_queued_seconds").observe(
                max(0.0, result.queued_s)
            )
            declare(self.registry, "repro_pool_run_seconds").observe(
                max(0.0, result.run_s)
            )
        self._gauge_depth()
        return result

    def _gauge_depth(self) -> None:
        if self.registry.enabled:
            declare(self.registry, "repro_pool_queue_depth").set(
                len(self._pending)
            )


def default_jobs() -> int:
    """A sensible default worker count for ``--jobs 0``: the CPUs this
    process may use."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
