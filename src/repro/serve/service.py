"""The batch compilation service.

One :class:`BatchService` executes many (program, config) requests —
compile-only or compile-and-run — against the compile cache, either
inline (``jobs=1``: no subprocesses, shared in-process cache) or over
the :class:`~repro.serve.pool.WorkerPool` (``jobs>1``: per-request
timeouts, instruction budgets, and crash isolation).

Requests and responses are plain dataclasses with dict forms, shared
with the JSON-lines protocols (``repro batch`` request files and the
``repro serve --stdio`` daemon; see :mod:`repro.serve.stdio` and
``docs/serving.md``).

Observability: when given a recording tracer the service wraps the
whole batch in a ``batch`` span, emits one ``request`` event per
completed request (id, op, ok, cached, queued/run seconds — events, not
spans, because requests complete concurrently and out of order), and
:meth:`BatchService.stats` exposes the cache hit/miss/evict counters
and the pool's queue-depth and latency metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.config import CompilerConfig
from repro.observe import NULL_TRACER
from repro.observe.catalog import declare
from repro.observe.metrics import get_registry
from repro.observe.recorder import get_flight_recorder
from repro.serve import work
from repro.serve.cache import CompileCache
from repro.serve.pool import TaskResult, WorkerPool

OPS = ("compile", "run")


@dataclass
class Request:
    """One unit of service work."""

    op: str
    source: str
    config: Optional[CompilerConfig] = None
    id: Optional[Any] = None
    prelude: bool = True
    max_instructions: Optional[int] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r} (expected one of {OPS})")

    def payload(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "config": (self.config or CompilerConfig()).as_dict(),
            "prelude": self.prelude,
            "max_instructions": self.max_instructions,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "Request":
        config = doc.get("config")
        return Request(
            op=doc.get("op", "run"),
            source=doc["source"],
            config=CompilerConfig.from_dict(config) if config else None,
            id=doc.get("id"),
            prelude=doc.get("prelude", True),
            max_instructions=doc.get("max_instructions"),
            timeout=doc.get("timeout"),
        )


@dataclass
class Response:
    """What the client sees for one request (see docs/serving.md for
    the failure-mode table)."""

    id: Any
    op: str
    ok: bool
    cached: bool = False
    value: Optional[str] = None
    output: str = ""
    counters: Optional[Dict[str, Any]] = None
    instructions: Optional[int] = None
    procedures: Optional[int] = None
    error_kind: Optional[str] = None
    error: Optional[str] = None
    queued_s: float = 0.0
    run_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"id": self.id, "op": self.op, "ok": self.ok}
        if self.ok:
            doc["cached"] = self.cached
            if self.op == "run":
                doc["value"] = self.value
                doc["output"] = self.output
                doc["counters"] = self.counters
            else:
                doc["instructions"] = self.instructions
                doc["procedures"] = self.procedures
        else:
            doc["error_kind"] = self.error_kind
            doc["error"] = self.error
        doc["queued_s"] = round(self.queued_s, 6)
        doc["run_s"] = round(self.run_s, 6)
        return doc


# -- response assembly ------------------------------------------------


def _ok_response(request: Request, index: int, value: Dict[str, Any]) -> Response:
    return Response(
        id=request.id if request.id is not None else index,
        op=request.op,
        ok=True,
        cached=bool(value.get("cached")),
        value=value.get("value"),
        output=value.get("output", ""),
        counters=value.get("counters"),
        instructions=value.get("instructions"),
        procedures=value.get("procedures"),
    )


def _error_response(request: Request, index: int, kind: str, message: str) -> Response:
    return Response(
        id=request.id if request.id is not None else index,
        op=request.op,
        ok=False,
        error_kind=kind,
        error=message,
    )


def response_from_task(request: Request, index: int, result: TaskResult) -> Response:
    """Translate a pool :class:`TaskResult` into the wire response."""
    if result.ok and result.value is not None:
        response = _ok_response(request, index, result.value)
    else:
        response = _error_response(
            request, index, result.error_kind or "error", result.error or ""
        )
    response.queued_s = result.queued_s
    response.run_s = result.run_s
    return response


class BatchService:
    """Execute request batches against the cache and (optionally) the
    worker pool."""

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[str] = None,
        disk_cache: bool = True,
        artifacts: bool = True,
        tracer=None,
        registry=None,
        recorder=None,
        flight_dir: Optional[str] = None,
        reqtracer=None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.tracer = tracer or NULL_TRACER
        #: Per-request tracer (repro.observe.reqtrace.ReqTracer) — when
        #: set, every batch request gets its own trace in the span
        #: store, exactly like a daemon request.
        self.reqtracer = reqtracer
        # The service layer is where telemetry is *on*: per-request
        # counting happens at request granularity, so enabling the
        # registry here costs nothing measurable on the compile path.
        self.registry = registry if registry is not None else get_registry()
        self.registry.enable()
        self.recorder = recorder if recorder is not None else get_flight_recorder()
        self.flight_dir = flight_dir
        #: Worker span payloads from pooled batches (chrome_trace input).
        self.worker_spans: List[Dict[str, Any]] = []
        #: Flight-recorder dump paths written during pooled batches.
        self.flight_dumps: List[str] = []
        self._cache_enabled = cache
        self._cache_dir = cache_dir
        self._disk_cache = disk_cache
        self._artifacts = artifacts
        # Inline-mode cache; pool workers each open their own (same
        # disk root, process-local memory tier).
        self.cache: Optional[CompileCache] = (
            CompileCache(
                root=cache_dir, disk=disk_cache, artifacts=artifacts,
                registry=self.registry,
            )
            if cache and self.jobs <= 1
            else None
        )
        self._pool: Optional[WorkerPool] = None
        self._responses = 0
        self._errors: Dict[str, int] = {}
        self._hits = 0
        self._misses = 0

    # -- execution ------------------------------------------------------

    def run(
        self,
        requests: List[Request],
        on_response: Optional[Callable[[Response], None]] = None,
    ) -> List[Response]:
        """Execute a batch; responses are returned in request order.
        ``on_response`` fires in *completion* order as results arrive."""
        with self.tracer.span("batch", requests=len(requests), jobs=self.jobs):
            if self.jobs <= 1:
                return self._run_inline(requests, on_response)
            return self._run_pool(requests, on_response)

    def _run_inline(self, requests, on_response) -> List[Response]:
        state = {"cache": self.cache} if self.cache is not None else {}
        responses = []
        for index, request in enumerate(requests):
            trace = None
            if self.reqtracer is not None:
                trace = self.reqtracer.start(op=request.op, id=request.id)
            if trace is not None:
                # An in-process tracer captures the compile passes; its
                # spans are absorbed under the request trace below.
                from repro.observe.tracer import Tracer, span_payload

                pass_tracer = Tracer(trace_id=trace.trace_id)
                state["tracer"] = pass_tracer
            started = time.perf_counter()
            try:
                fn = work.HANDLERS[request.op]
                value = fn(request.payload(), state)
                response = _ok_response(request, index, value)
            except Exception as exc:  # noqa: BLE001 - classified below
                response = _error_response(
                    request, index, work.error_kind(exc),
                    f"{type(exc).__name__}: {exc}",
                )
            response.run_s = time.perf_counter() - started
            self._record(response)
            if trace is not None:
                state.pop("tracer", None)
                if pass_tracer.spans:
                    trace.absorb_payload(
                        span_payload(pass_tracer, trace.context())
                    )
                status = (
                    "ok" if response.ok else (response.error_kind or "error")
                )
                trace.finish(status, cached=response.cached)
            if on_response is not None:
                on_response(response)
            responses.append(response)
        return responses

    def _run_pool(self, requests, on_response) -> List[Response]:
        by_task: Dict[int, int] = {}
        traces: Dict[int, Any] = {}
        responses: List[Optional[Response]] = [None] * len(requests)
        with WorkerPool(
            jobs=self.jobs,
            cache=self._cache_enabled,
            cache_dir=self._cache_dir,
            disk_cache=self._disk_cache,
            artifacts=self._artifacts,
            trace=self.tracer.context() if self.tracer.enabled else None,
            registry=self.registry,
            recorder=self.recorder,
            flight_dir=self.flight_dir,
        ) as pool:
            self._pool = pool
            for index, request in enumerate(requests):
                trace = None
                if self.reqtracer is not None:
                    trace = self.reqtracer.start(
                        op=request.op, id=request.id
                    )
                task_id = pool.submit(
                    request.op, request.payload(), timeout=request.timeout,
                    trace=trace.context() if trace is not None else None,
                )
                by_task[task_id] = index
                if trace is not None:
                    traces[task_id] = trace
            for result in pool.results():
                index = by_task[result.task_id]
                response = response_from_task(requests[index], index, result)
                self._record(response)
                trace = traces.pop(result.task_id, None)
                if trace is not None:
                    queued_ns = int(result.queued_s * 1e9)
                    run_ns = int(result.run_s * 1e9)
                    run_start = trace.now_ns() - run_ns
                    trace.record("queue", run_start - queued_ns, queued_ns)
                    run_id = trace.record("run", run_start, run_ns)
                    if result.meta:
                        trace.absorb_payload(
                            result.meta.get("spans"), parent=run_id
                        )
                    status = (
                        "ok" if response.ok
                        else (response.error_kind or "error")
                    )
                    trace.finish(status, cached=response.cached)
                if on_response is not None:
                    on_response(response)
                responses[index] = response
            self.pool_stats = pool.stats()
            self.worker_spans.extend(pool.worker_spans)
            self.flight_dumps.extend(pool.flight_dumps)
            self._pool = None
        return [r for r in responses if r is not None]

    def _record(self, response: Response) -> None:
        self._responses += 1
        if response.ok:
            if response.cached:
                self._hits += 1
            else:
                self._misses += 1
        else:
            kind = response.error_kind or "error"
            self._errors[kind] = self._errors.get(kind, 0) + 1
        status = "ok" if response.ok else (response.error_kind or "error")
        if self.registry.enabled:
            declare(self.registry, "repro_requests").labels(
                op=response.op, status=status
            ).inc()
            declare(self.registry, "repro_request_seconds").labels(
                op=response.op
            ).observe(max(0.0, response.queued_s + response.run_s))
        self.recorder.record(
            "request",
            id=response.id,
            op=response.op,
            status=status,
            cached=response.cached,
        )
        if self.tracer.enabled:
            self.tracer.event(
                "request",
                id=response.id,
                op=response.op,
                ok=response.ok,
                cached=response.cached,
                error_kind=response.error_kind,
                queued_s=response.queued_s,
                run_s=response.run_s,
            )

    # -- metrics --------------------------------------------------------

    pool_stats: Optional[Dict[str, Any]] = None

    def stats(self) -> Dict[str, Any]:
        """Service metrics: request/error tallies, cache counters (the
        inline cache's full stats when it exists, otherwise the
        hit/miss view aggregated from worker responses), and — after a
        pooled batch — the pool's queue/latency telemetry."""
        doc: Dict[str, Any] = {
            "requests": self._responses,
            "ok": self._responses - sum(self._errors.values()),
            "errors": dict(self._errors),
            "cache": {"hits": self._hits, "misses": self._misses},
        }
        if self.cache is not None:
            doc["cache"].update(self.cache.stats.as_dict())
        pool = self._pool.stats() if self._pool is not None else self.pool_stats
        if pool is not None:
            doc["pool"] = pool
        if self.flight_dumps:
            doc["flight_dumps"] = list(self.flight_dumps)
        return doc

    def write_metrics(self, path: str) -> None:
        """Persist the registry snapshot (the ``repro metrics`` input)."""
        self.registry.dump(path)


def summarize(responses: List[Response]) -> Dict[str, Any]:
    """A batch summary document (the ``repro batch --json`` output)."""
    errors: Dict[str, int] = {}
    hits = misses = 0
    for response in responses:
        if response.ok:
            hits += 1 if response.cached else 0
            misses += 0 if response.cached else 1
        else:
            kind = response.error_kind or "error"
            errors[kind] = errors.get(kind, 0) + 1
    return {
        "requests": len(responses),
        "ok": len(responses) - sum(errors.values()),
        "errors": errors,
        "cache_hits": hits,
        "cache_misses": misses,
    }
