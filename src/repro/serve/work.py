"""Task handlers executed inside pool workers.

Each task *kind* maps to a handler ``fn(payload, state) -> dict``.
``payload`` is the plain-data dict (or dataclass) the parent submitted;
``state`` is a per-worker scratch dict that outlives individual tasks —
it holds the worker's :class:`~repro.serve.cache.CompileCache` (the
disk tier is shared with every other worker through atomic writes; the
memory tier is process-local) and the fuzz generator.

Handlers raise freely: :func:`worker_main` converts any exception into
an error result classified by :func:`error_kind`, so one bad program
never takes down a worker, and a worker taken down anyway (hard crash)
fails only its own task (see :mod:`repro.serve.pool`).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional

from repro.config import CompilerConfig
from repro.errors import CompilerError
from repro.observe.metrics import get_registry
from repro.observe.recorder import set_active_trace
from repro.observe.tracer import Tracer, span_payload
from repro.pipeline import compile_source, run_compiled
from repro.runtime.values import SchemeError
from repro.sexp.reader import ReaderError
from repro.sexp.writer import write_datum
from repro.vm.machine import VMError

HANDLERS: Dict[str, Callable[[Any, Dict[str, Any]], Dict[str, Any]]] = {}


def handler(kind: str):
    def register(fn):
        HANDLERS[kind] = fn
        return fn

    return register


def error_kind(exc: BaseException) -> str:
    """Classify an exception for the service protocol."""
    if isinstance(exc, VMError) and "budget" in str(exc):
        return "budget"
    if isinstance(exc, ReaderError):
        return "read-error"
    if isinstance(exc, CompilerError):
        return "compile-error"
    if isinstance(exc, SchemeError):
        return "runtime-error"
    if isinstance(exc, VMError):
        return "vm-error"
    return "error"


def _config_of(payload: Dict[str, Any]) -> CompilerConfig:
    doc = payload.get("config")
    if doc is None:
        return CompilerConfig()
    if isinstance(doc, CompilerConfig):
        return doc
    return CompilerConfig.from_dict(doc)


def _compile(payload: Dict[str, Any], state: Dict[str, Any]):
    """Compile through the worker's cache (when it has one)."""
    source = payload["source"]
    config = _config_of(payload)
    prelude = payload.get("prelude", True)
    cache = state.get("cache")
    tracer = state.get("tracer")
    if cache is not None:
        return cache.compile(source, config, prelude=prelude, tracer=tracer)
    return (
        compile_source(source, config, prelude=prelude, tracer=tracer),
        False,
    )


@handler("compile")
def task_compile(payload: Dict[str, Any], state: Dict[str, Any]) -> Dict[str, Any]:
    compiled, hit = _compile(payload, state)
    return {
        "cached": hit,
        "instructions": compiled.total_instructions(),
        "procedures": len(compiled.codes),
    }


@handler("run")
def task_run(payload: Dict[str, Any], state: Dict[str, Any]) -> Dict[str, Any]:
    compiled, hit = _compile(payload, state)
    result = run_compiled(
        compiled, max_instructions=payload.get("max_instructions")
    )
    return {
        "cached": hit,
        "value": write_datum(result.value),
        "output": result.output,
        "counters": result.counters.as_dict(),
    }


@handler("fuzz")
def task_fuzz(payload: Dict[str, Any], state: Dict[str, Any]) -> Dict[str, Any]:
    """One fuzzing iteration: generate program (seed, i), run the full
    differential oracle.  Mirrors ``repro.fuzz.engine._check_iteration``
    but returns plain data for the result queue."""
    from repro.config import allocator_matrix, full_matrix, shuffle_matrix
    from repro.fuzz.genprog import ProgramGenerator
    from repro.fuzz.oracle import InvalidProgram, check_program

    seed = payload["seed"]
    gen_config = payload.get("gen_config")
    allocator = payload.get("allocator")
    shuffle = payload.get("shuffle")
    if state.get("fuzz_key") != (seed, gen_config, allocator, shuffle):
        state["fuzz_generator"] = ProgramGenerator(seed, gen_config)
        state["fuzz_key"] = (seed, gen_config, allocator, shuffle)
        if allocator:
            state["fuzz_configs"] = allocator_matrix(allocator)
        elif shuffle:
            state["fuzz_configs"] = shuffle_matrix(shuffle)
        else:
            state["fuzz_configs"] = full_matrix()
    program = state["fuzz_generator"].generate(payload["iteration"])
    out: Dict[str, Any] = {
        "source": program.source,
        "invalid": False,
        "configs_checked": 0,
        "shuffle_cycles": 0,
        "divergences": [],
        "failing_configs": [],
    }
    try:
        oracle = check_program(program.source, configs=state["fuzz_configs"])
    except InvalidProgram:
        out["invalid"] = True
        return out
    out["configs_checked"] = oracle.configs_checked
    out["shuffle_cycles"] = oracle.shuffle_cycles
    out["divergences"] = [d.as_dict() for d in oracle.divergences]
    out["failing_configs"] = [d.config.summary() for d in oracle.divergences]
    return out


@handler("selftest")
def task_selftest(payload: Dict[str, Any], state: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministic failure modes for the pool's own test suite."""
    action = payload.get("action", "echo")
    if action == "echo":
        return {"echo": payload.get("value"), "pid": os.getpid()}
    if action == "sleep":
        time.sleep(payload.get("seconds", 60.0))
        return {"slept": payload.get("seconds", 60.0)}
    if action == "raise":
        raise RuntimeError(payload.get("message", "selftest"))
    if action == "exit":
        os._exit(payload.get("code", 13))
    raise ValueError(f"unknown selftest action {action!r}")


def _task_meta(
    registry,
    base: Dict[str, Any],
    tracer: Optional[Tracer],
    trace_ctx: Optional[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The telemetry a worker ships with each result: the registry
    delta since the task started (so parent aggregation is exact
    summation — fork inheritance can never double count) plus the
    task's compiler-pass spans when a trace context was propagated."""
    meta: Dict[str, Any] = {}
    delta = registry.diff_snapshot(base)
    if delta.get("counters") or delta.get("histograms"):
        meta["metrics"] = delta
    if tracer is not None and tracer.spans:
        meta["spans"] = span_payload(tracer, trace_ctx)
    return meta or None


def worker_main(worker_id: int, inbox, outbox, init: Dict[str, Any]) -> None:
    """The worker process body: loop over the private inbox until the
    ``None`` sentinel, posting one result per task to the shared outbox.

    Every worker enables (and empties) the process-wide metrics
    registry at startup, then ships a per-task ``diff_snapshot`` with
    each result, so the parent's merged registry equals what a single
    process would have recorded.
    """
    registry = get_registry()
    registry.enable()
    registry.clear()  # drop anything inherited across a fork
    trace_ctx = init.get("trace")
    state: Dict[str, Any] = {}
    if init.get("cache", True):
        shards = init.get("cache_shards", 1) or 1
        if shards > 1:
            from repro.serve.cache import ShardedCompileCache

            state["cache"] = ShardedCompileCache(
                root=init.get("cache_dir"),
                shards=shards,
                disk=init.get("disk_cache", True),
                artifacts=init.get("artifacts", True),
                registry=registry,
            )
        else:
            from repro.serve.cache import CompileCache

            state["cache"] = CompileCache(
                root=init.get("cache_dir"),
                disk=init.get("disk_cache", True),
                artifacts=init.get("artifacts", True),
                registry=registry,
            )
    while True:
        try:
            message = inbox.get()
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        if message is None:
            return
        task_id, kind, payload, task_trace = message
        # Per-task request-trace context (front door / stdio daemon)
        # wins over the pool-static one (repro batch --trace).
        ctx = task_trace or trace_ctx
        base = registry.snapshot()
        tracer: Optional[Tracer] = None
        if ctx is not None:
            tracer = Tracer(trace_id=ctx.get("trace_id"))
            state["tracer"] = tracer
            set_active_trace(ctx.get("trace_id"))
        started = time.perf_counter()
        try:
            fn = HANDLERS[kind]
            value = fn(payload, state)
            outbox.put(
                (worker_id, task_id, True, value, None, None,
                 time.perf_counter() - started,
                 _task_meta(registry, base, tracer, ctx))
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive abort
            return
        except BaseException as exc:  # noqa: BLE001 - isolate every failure
            outbox.put(
                (
                    worker_id,
                    task_id,
                    False,
                    None,
                    error_kind(exc),
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - started,
                    _task_meta(registry, base, tracer, ctx),
                )
            )
        finally:
            state.pop("tracer", None)
            set_active_trace(None)
