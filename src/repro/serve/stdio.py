"""``repro serve --stdio`` — a long-lived JSON-lines compile daemon.

Protocol (one JSON document per line, in both directions):

* client → server, work requests::

    {"id": 1, "op": "compile", "source": "(+ 1 2)"}
    {"id": 2, "op": "run", "source": "(f 10)", "config": {...},
     "max_instructions": 500000, "timeout": 5.0}

* client → server, control requests::

    {"id": 3, "op": "ping"}
    {"id": 4, "op": "stats"}
    {"id": 5, "op": "cancel", "target": 2}
    {"id": 6, "op": "shutdown"}

* server → client: one ``{"event": "ready", ...}`` line at startup,
  then one response line per request, **in completion order** (match on
  ``id``).  Work responses are the :class:`repro.serve.service.Response`
  dict form; a request that cannot even be parsed gets
  ``{"ok": false, "error_kind": "protocol", ...}``.

A worked request/response transcript lives in ``docs/serving.md``.

Requests are dispatched to the worker pool immediately, so a slow
request does not block later ones, and a worker crash or timeout fails
only the request that caused it.  ``shutdown``, EOF on stdin, and a
broken stdout pipe all end the session through the same graceful
drain the TCP front door uses (finish in flight, flush metrics,
``bye``, exit 0); ``shutdown`` and a dead client additionally cancel
queued requests, plain EOF lets them finish.
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from typing import Any, Dict, Optional

from repro import __version__
from repro.observe.catalog import declare
from repro.observe.metrics import get_registry, render_openmetrics
from repro.observe.recorder import get_flight_recorder
from repro.serve.pool import WorkerPool
from repro.serve.service import Request, response_from_task

PROTOCOL_VERSION = 1

_CONTROL_OPS = ("ping", "stats", "cancel", "shutdown", "metrics", "health")

#: Seconds between periodic registry dumps when ``metrics_out`` is set.
_METRICS_DUMP_INTERVAL = 5.0


class _Session:
    """One daemon session over a pair of line streams."""

    def __init__(
        self,
        stdin,
        stdout,
        pool: WorkerPool,
        registry=None,
        recorder=None,
        flight_dir: Optional[str] = None,
        metrics_out: Optional[str] = None,
        reqtracer=None,
    ) -> None:
        self.stdin = stdin
        self.stdout = stdout
        self.pool = pool
        self.registry = registry if registry is not None else get_registry()
        self.registry.enable()
        self.recorder = recorder if recorder is not None else get_flight_recorder()
        self.flight_dir = flight_dir
        self.metrics_out = metrics_out
        self.reqtracer = reqtracer
        self.started_at = time.monotonic()
        self._last_dump = self.started_at
        self.tasks: Dict[int, Request] = {}  # task_id -> request
        self.received_at: Dict[int, float] = {}  # task_id -> monotonic intake
        self.traces: Dict[int, Any] = {}  # task_id -> RequestTrace
        self.task_of_id: Dict[Any, int] = {}  # client id -> newest task_id
        self.lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self.eof = False
        self.shutting_down = False
        self.client_gone = False
        self.dropped_responses = 0

    # -- I/O ------------------------------------------------------------

    def write(self, doc: Dict[str, Any]) -> None:
        if self.client_gone:
            self.dropped_responses += 1
            return
        try:
            self.stdout.write(json.dumps(doc) + "\n")
            self.stdout.flush()
        except (BrokenPipeError, ConnectionResetError, ValueError, OSError):
            # The client died mid-conversation (closed our stdout).
            # That must not crash the daemon out of its drain: keep
            # going — in-flight results still warm the shared cache and
            # the final metrics snapshot still lands — there is just
            # nobody left to write to.
            self.client_gone = True
            self.dropped_responses += 1
            self.recorder.record("stdio.client-gone")

    def _reader(self) -> None:
        # Read the raw fd when there is one.  A thread blocked inside
        # sys.stdin's buffered read holds the stream's lock; a worker
        # forked at that moment inherits the held lock and deadlocks in
        # multiprocessing's _close_stdin before it ever reaches
        # worker_main.  os.read holds no Python-level lock, so worker
        # spawns (including respawns after a crash) are safe while this
        # thread blocks here.
        try:
            fd: Optional[int] = self.stdin.fileno()
        except (AttributeError, OSError, ValueError):
            fd = None  # in-process streams (tests) have no fd
        if fd is None:
            for line in self.stdin:
                self.lines.put(line)
            self.lines.put(None)
            return
        buf = b""
        while True:
            try:
                chunk = os.read(fd, 65536)
            except OSError:
                break
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                self.lines.put(line.decode("utf-8", errors="replace"))
        if buf:
            self.lines.put(buf.decode("utf-8", errors="replace"))
        self.lines.put(None)

    # -- request handling ----------------------------------------------

    def handle_line(self, line: str) -> None:
        intake_started = time.perf_counter_ns()
        line = line.strip()
        if not line:
            return
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self._protocol_error(None, "?", f"unparseable request: {exc}")
            return
        op = doc.get("op")
        if op in _CONTROL_OPS:
            self.handle_control(doc)
            return
        try:
            request = Request.from_dict(doc)
        except (KeyError, ValueError, TypeError) as exc:
            self._protocol_error(
                doc.get("id"), str(op or "?"), f"bad request: {exc}"
            )
            return
        trace = None
        if self.reqtracer is not None:
            trace = self.reqtracer.start(
                traceparent=doc.get("traceparent"),
                op=request.op,
                id=request.id,
            )
        if trace is not None:
            intake_ns = time.perf_counter_ns() - intake_started
            trace.record(
                "intake", trace.now_ns() - intake_ns, intake_ns,
                bytes=len(line),
            )
        task_id = self.pool.submit(
            request.op, request.payload(), timeout=request.timeout,
            trace=trace.context() if trace is not None else None,
        )
        self.tasks[task_id] = request
        self.received_at[task_id] = time.monotonic()
        if trace is not None:
            self.traces[task_id] = trace
        if request.id is not None:
            self.task_of_id[request.id] = task_id

    def _protocol_error(self, rid: Any, op: str, message: str) -> None:
        self.recorder.record("stdio.protocol-error", id=rid, op=op, error=message)
        if self.registry.enabled:
            declare(self.registry, "repro_requests").labels(
                op=op, status="protocol"
            ).inc()
        self.write(
            {"id": rid, "ok": False, "error_kind": "protocol", "error": message}
        )

    def handle_control(self, doc: Dict[str, Any]) -> None:
        op = doc["op"]
        rid = doc.get("id")
        if op == "ping":
            self.write({"id": rid, "ok": True, "pong": True})
        elif op == "stats":
            stats = self.pool.stats()
            self.write({"id": rid, "ok": True, "stats": stats})
        elif op == "cancel":
            target = doc.get("target")
            task_id = self.task_of_id.get(target)
            cancelled = task_id is not None and self.pool.cancel(task_id)
            self.write(
                {"id": rid, "ok": True, "cancelled": bool(cancelled),
                 "target": target}
            )
        elif op == "shutdown":
            self.shutting_down = True
            self.pool.cancel_pending()
            self.write({"id": rid, "ok": True, "shutdown": True})
        elif op == "metrics":
            snapshot = self.registry.snapshot()
            if doc.get("format") == "openmetrics":
                self.write(
                    {"id": rid, "ok": True, "openmetrics": render_openmetrics(snapshot)}
                )
            else:
                self.write({"id": rid, "ok": True, "metrics": snapshot})
        elif op == "health":
            self.write(
                {
                    "id": rid,
                    "ok": True,
                    "health": {
                        "status": "ok",
                        "pid": os.getpid(),
                        "version": __version__,
                        "uptime_s": time.monotonic() - self.started_at,
                        "jobs": self.pool.jobs,
                        "queue_depth": self.pool.queue_depth,
                        "in_flight": self.pool.in_flight,
                        "flight_events": len(self.recorder),
                    },
                }
            )

    def drain_results(self, block: bool) -> None:
        timeout = 0.05 if block else 0.0
        for result in self.pool.poll(timeout):
            request = self.tasks.pop(result.task_id, None)
            received = self.received_at.pop(result.task_id, None)
            if request is None:  # pragma: no cover - cancelled unknown task
                continue
            if request.id is not None and self.task_of_id.get(request.id) == result.task_id:
                del self.task_of_id[request.id]
            trace = self.traces.pop(result.task_id, None)
            response = response_from_task(request, 0, result)
            status = "ok" if response.ok else (response.error_kind or "error")
            # Daemon-side end-to-end latency: intake to response.
            elapsed = (
                time.monotonic() - received
                if received is not None
                else response.queued_s + response.run_s
            )
            if self.registry.enabled:
                declare(self.registry, "repro_requests").labels(
                    op=response.op, status=status
                ).inc()
                declare(self.registry, "repro_request_seconds").labels(
                    op=response.op
                ).observe(max(0.0, elapsed))
            self.recorder.record(
                "stdio.response",
                id=response.id,
                op=response.op,
                status=status,
            )
            doc = response.as_dict()
            if trace is not None:
                # Re-time the pool's latency split onto the wall clock
                # (queue ends where the worker run began), then absorb
                # the worker's compile spans under the run span.
                queued_ns = int(result.queued_s * 1e9)
                run_ns = int(result.run_s * 1e9)
                run_start = trace.now_ns() - run_ns
                trace.record("queue", run_start - queued_ns, queued_ns)
                run_id = trace.record("run", run_start, run_ns)
                if result.meta:
                    trace.absorb_payload(
                        result.meta.get("spans"), parent=run_id
                    )
                doc["traceparent"] = trace.traceparent()
                respond_ns = trace.now_ns()
                self.write(doc)
                trace.record(
                    "respond", respond_ns, trace.now_ns() - respond_ns
                )
                keep, _ = trace.finish(status, cached=response.cached)
                if keep and self.reqtracer is not None:
                    self.reqtracer.exemplar(
                        "repro_request_seconds", ("op",), (response.op,),
                        max(0.0, elapsed), trace.trace_id,
                    )
            else:
                self.write(doc)

    def _maybe_dump_metrics(self, force: bool = False) -> None:
        if not self.metrics_out:
            return
        now = time.monotonic()
        if force or now - self._last_dump >= _METRICS_DUMP_INTERVAL:
            self._last_dump = now
            self.registry.dump(self.metrics_out)

    # -- main loop ------------------------------------------------------

    def run(self) -> int:
        try:
            return self._run()
        except Exception as exc:
            # The daemon itself failed (not a request): preserve the
            # recent event timeline as a post-mortem artifact.
            self.recorder.record(
                "stdio.daemon-error", error=f"{type(exc).__name__}: {exc}"
            )
            if self.flight_dir:
                self.recorder.dump_to(
                    self.flight_dir,
                    "daemon-error",
                    extra={"error": f"{type(exc).__name__}: {exc}"},
                )
                if self.registry.enabled:
                    declare(self.registry, "repro_flight_dumps").labels(
                        reason="daemon-error"
                    ).inc()
            raise

    def _run(self) -> int:
        self.write(
            {
                "event": "ready",
                "protocol": PROTOCOL_VERSION,
                "version": __version__,
                "jobs": self.pool.jobs,
            }
        )
        reader = threading.Thread(target=self._reader, daemon=True)
        reader.start()
        while True:
            try:
                line = self.lines.get(timeout=0.05)
            except queue.Empty:
                line = ""
            if line is None:
                self.eof = True
            elif line:
                self.handle_line(line)
            self.drain_results(block=False)
            self._maybe_dump_metrics()
            if self.shutting_down or self.eof or self.client_gone:
                break
        if self.shutting_down:
            reason = "shutdown-op"
        elif self.client_gone:
            reason = "client-gone"
        else:
            reason = "eof"
        self.graceful_drain(reason)
        return 0

    def graceful_drain(self, reason: str) -> None:
        """The drain sequence the TCP front door uses
        (:meth:`repro.serve.net.server.NetServer.drain`), for the stdio
        transport: intake has stopped (EOF, ``shutdown``, or a dead
        client pipe); cancel queued work when nobody will read the
        answers; finish what is in flight, writing every response a
        reader is still there for; flush the final metrics snapshot;
        say ``bye``.  On plain EOF queued tasks still run — closing
        stdin after a burst and reading all responses is a supported
        client pattern (see tests/serve/test_stdio.py)."""
        self.recorder.record(
            "stdio.draining", reason=reason, in_flight=len(self.tasks)
        )
        if self.shutting_down or self.client_gone:
            self.pool.cancel_pending()
        while self.tasks:
            self.drain_results(block=True)
        self._maybe_dump_metrics(force=True)
        self.write({"event": "bye"})


def serve_stdio(
    stdin=None,
    stdout=None,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    disk_cache: bool = True,
    artifacts: bool = True,
    metrics_out: Optional[str] = None,
    flight_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
    trace_sample: float = 1.0,
) -> int:
    """Run the daemon until ``shutdown`` or EOF; returns the exit code.

    Work always goes through the pool — even at ``jobs=1`` — so a
    crashing program can never take the daemon itself down.

    ``metrics_out`` (a JSON path) enables periodic registry snapshots —
    the file ``repro metrics`` and ``repro top`` read; ``flight_dir``
    enables flight-recorder dumps on worker crashes and daemon errors.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    # A daemon's metrics cover its own lifetime: start from a clean
    # registry (also keeps back-to-back in-process sessions independent).
    registry = get_registry()
    registry.clear()
    registry.enable()
    from repro.observe.reqtrace import build_reqtracer

    reqtracer = build_reqtracer(
        trace_dir, sample=trace_sample, registry=registry, service="stdio"
    )
    with WorkerPool(
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        disk_cache=disk_cache,
        artifacts=artifacts,
        registry=registry,
        flight_dir=flight_dir,
    ) as pool:
        return _Session(
            stdin,
            stdout,
            pool,
            registry=registry,
            flight_dir=flight_dir,
            metrics_out=metrics_out,
            reqtracer=reqtracer,
        ).run()
