"""Front end: expansion, assignment conversion, analysis, closure conversion."""

from repro.frontend.expand import expand_program, expand_expr
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.analyze import mark_tail_calls, check_scopes
from repro.frontend.closure import closure_convert

__all__ = [
    "expand_program",
    "expand_expr",
    "assignment_convert",
    "mark_tail_calls",
    "check_scopes",
    "closure_convert",
]
