"""Macro expansion and alpha renaming.

Translates the surface Scheme subset into the core language of
``repro.astnodes``.  The output is fully alpha-renamed (every binding is
a fresh :class:`Var`), all derived forms are gone, n-ary primitive
syntax is folded to the fixed-arity core primitives, and primitive names
used as values are eta-expanded into lambdas.

Supported forms: ``quote quasiquote if set! begin lambda let let*
letrec letrec* named-let cond case and or when unless not do define``
plus the quotation shorthands and internal defines at the head of
lambda/let bodies.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.astnodes import (
    Call,
    CallCC,
    Expr,
    Fix,
    If,
    Lambda,
    Let,
    PrimCall,
    Quote,
    Ref,
    Seq,
    SetBang,
    Var,
)
from repro.errors import CompilerError
from repro.runtime.primitives import PRIMITIVES, is_primitive
from repro.sexp.datum import (
    NIL,
    Pair,
    Symbol,
    UNSPECIFIED,
    list_to_pairs,
    pairs_to_list,
)

_QUOTE = Symbol("quote")
_QUASIQUOTE = Symbol("quasiquote")
_UNQUOTE = Symbol("unquote")
_UNQUOTE_SPLICING = Symbol("unquote-splicing")
_DEFINE = Symbol("define")
_LAMBDA = Symbol("lambda")
_ELSE = Symbol("else")
_ARROW = Symbol("=>")


class _Env:
    """Compile-time environment mapping symbol names to Vars.

    A name missing from every rib refers to a primitive (if one exists)
    or is unbound.
    """

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["_Env"] = None) -> None:
        self.bindings: Dict[str, Var] = {}
        self.parent = parent

    def bind(self, name: str) -> Var:
        var = Var(name)
        self.bindings[name] = var
        return var

    def bind_var(self, name: str, var: Var) -> None:
        self.bindings[name] = var

    def lookup(self, name: str) -> Optional[Var]:
        env: Optional[_Env] = self
        while env is not None:
            var = env.bindings.get(name)
            if var is not None:
                return var
            env = env.parent
        return None


# ---------------------------------------------------------------------------
# n-ary folding rules for primitives
# ---------------------------------------------------------------------------

# name -> (core op, identity-element | None, minimum arity)
_LEFT_FOLDS: Dict[str, Tuple[str, Optional[Any], int]] = {
    "+": ("+", 0, 0),
    "*": ("*", 1, 0),
    "append": ("append", NIL, 0),
    "string-append": ("string-append", None, 1),
    "max": ("max", None, 1),
    "min": ("min", None, 1),
    "gcd": ("gcd", 0, 0),
}

_CHAINED_COMPARISONS = {"=", "<", ">", "<=", ">=", "char=?", "char<?", "string=?", "string<?"}

# Aliases: Chez/Gabriel-style fixnum operators map onto the generic ones.
_PRIM_ALIASES = {
    "fx+": "+",
    "fx-": "-",
    "fx*": "*",
    "fx=": "=",
    "fx<": "<",
    "fx>": ">",
    "fx<=": "<=",
    "fx>=": ">=",
    "fxzero?": "zero?",
    "fxquotient": "quotient",
    "fxremainder": "remainder",
    "1+": "add1",
    "-1+": "sub1",
    "1-": "sub1",
    "fl+": "+",
    "fl-": "-",
    "fl*": "*",
    "fl/": "/",
    "fl<": "<",
    "fl>": ">",
    "fl=": "=",
}


def _is_cxr(name: str) -> bool:
    return (
        len(name) >= 3
        and name[0] == "c"
        and name[-1] == "r"
        and all(ch in "ad" for ch in name[1:-1])
        and len(name) > 3  # plain car/cdr are core primitives already
    )


class Expander:
    """Expands datums to core AST, threading the lexical environment."""

    def __init__(self) -> None:
        self._gensym_counter = 0

    # -- entry points ----------------------------------------------------

    def expand_program(self, forms: List[Any]) -> Expr:
        """Expand a top-level program: defines and expressions.

        The result behaves like ``letrec*`` over the defines with the
        remaining expressions as the body (see DESIGN.md for the
        grouping rule on mutual recursion).
        """
        env = _Env()
        return self._expand_body(forms, env, where="program")

    def expand_expr(self, datum: Any) -> Expr:
        """Expand a single expression with no top-level definitions."""
        return self._expand(datum, _Env())

    # -- core dispatch ----------------------------------------------------

    def _expand(self, datum: Any, env: _Env) -> Expr:
        if isinstance(datum, Symbol):
            return self._expand_variable(datum, env)
        if isinstance(datum, Pair):
            return self._expand_form(datum, env)
        if datum is NIL:
            raise CompilerError("illegal empty combination ()")
        # Self-evaluating: numbers, booleans, strings, chars, vectors.
        return Quote(datum)

    def _expand_variable(self, sym: Symbol, env: _Env) -> Expr:
        var = env.lookup(sym.name)
        if var is not None:
            var.referenced = True
            return Ref(var)
        prim = _PRIM_ALIASES.get(sym.name, sym.name)
        if _is_cxr(prim):
            param = self._fresh("p")
            param.referenced = True
            body: Expr = Ref(param)
            for op in reversed(prim[1:-1]):
                body = PrimCall("car" if op == "a" else "cdr", [body])
            return Lambda([param], body, name=prim)
        if is_primitive(prim) or prim in _LEFT_FOLDS or prim in ("list", "vector"):
            return self._eta_expand_primitive(prim)
        raise CompilerError(f"unbound variable: {sym.name}")

    def _expand_form(self, form: Pair, env: _Env) -> Expr:
        head = form.car
        if isinstance(head, Symbol) and env.lookup(head.name) is None:
            handler = _SPECIAL_FORMS.get(head.name)
            if handler is not None:
                return handler(self, form, env)
            return self._expand_application(form, env)
        return self._expand_application(form, env)

    # -- applications ------------------------------------------------------

    def _expand_application(self, form: Pair, env: _Env) -> Expr:
        items = pairs_to_list(form)
        rator = items[0]
        rands = items[1:]
        if isinstance(rator, Symbol) and env.lookup(rator.name) is None:
            name = _PRIM_ALIASES.get(rator.name, rator.name)
            if _is_cxr(name):
                return self._expand_cxr(name, rands, env)
            if name == "list":
                return self._expand_list_ctor(rands, env)
            if name == "vector":
                return self._expand_vector_ctor(rands, env)
            if name in _LEFT_FOLDS and (
                not is_primitive(name) or len(rands) != PRIMITIVES[name].arity
            ):
                return self._expand_fold(name, rands, env)
            if name == "-" and len(rands) == 1:
                return PrimCall("-", [Quote(0), self._expand(rands[0], env)])
            if name == "/" and len(rands) == 1:
                return PrimCall("/", [Quote(1), self._expand(rands[0], env)])
            if name in _CHAINED_COMPARISONS and len(rands) > 2:
                return self._expand_chained_comparison(name, rands, env)
            if name == "error" and len(rands) != 2:
                return self._expand_error(rands, env)
            if is_primitive(name):
                spec = PRIMITIVES[name]
                if len(rands) != spec.arity:
                    raise CompilerError(
                        f"{name}: expected {spec.arity} argument(s), got {len(rands)}"
                    )
                return PrimCall(name, [self._expand(r, env) for r in rands])
            raise CompilerError(f"unbound variable: {rator.name}")
        fn = self._expand(rator, env)
        args = [self._expand(r, env) for r in rands]
        return Call(fn, args)

    def _expand_cxr(self, name: str, rands: List[Any], env: _Env) -> Expr:
        if len(rands) != 1:
            raise CompilerError(f"{name}: expected 1 argument, got {len(rands)}")
        expr = self._expand(rands[0], env)
        for op in reversed(name[1:-1]):
            expr = PrimCall("car" if op == "a" else "cdr", [expr])
        return expr

    def _expand_list_ctor(self, rands: List[Any], env: _Env) -> Expr:
        result: Expr = Quote(NIL)
        for rand in reversed([self._expand(r, env) for r in rands]):
            result = PrimCall("cons", [rand, result])
        return result

    def _expand_vector_ctor(self, rands: List[Any], env: _Env) -> Expr:
        exprs = [self._expand(r, env) for r in rands]
        vec_var = self._fresh("v")
        body: List[Expr] = []
        for i, expr in enumerate(exprs):
            body.append(PrimCall("vector-set!", [Ref(vec_var), Quote(i), expr]))
        body.append(Ref(vec_var))
        return Let(
            vec_var,
            PrimCall("make-vector", [Quote(len(exprs)), Quote(0)]),
            Seq(body) if len(body) > 1 else body[0],
        )

    def _expand_fold(self, name: str, rands: List[Any], env: _Env) -> Expr:
        op, identity, min_arity = _LEFT_FOLDS[name]
        if len(rands) < min_arity:
            raise CompilerError(f"{name}: expected at least {min_arity} argument(s)")
        if not rands:
            return Quote(identity)
        exprs = [self._expand(r, env) for r in rands]
        result = exprs[0]
        for expr in exprs[1:]:
            result = PrimCall(op, [result, expr])
        return result

    def _expand_chained_comparison(self, name: str, rands: List[Any], env: _Env) -> Expr:
        """``(< a b c)`` becomes ``(let ([t1 a][t2 b][t3 c]) (if (< t1 t2) (< t2 t3) #f))``
        preserving single evaluation of each operand."""
        temps = [self._fresh("cmp") for _ in rands]
        comparisons: Expr = Quote(True)
        pairs = list(zip(temps, temps[1:]))
        comparisons = PrimCall(name, [Ref(pairs[-1][0]), Ref(pairs[-1][1])])
        for left, right in reversed(pairs[:-1]):
            comparisons = If(PrimCall(name, [Ref(left), Ref(right)]), comparisons, Quote(False))
        result = comparisons
        for temp, rand in reversed(list(zip(temps, rands))):
            result = Let(temp, self._expand(rand, env), result)
        return result

    def _expand_error(self, rands: List[Any], env: _Env) -> Expr:
        exprs = [self._expand(r, env) for r in rands]
        if not exprs:
            exprs = [Quote(Symbol("error"))]
        message = exprs[0]
        irritants: Expr = Quote(NIL)
        for expr in reversed(exprs[1:]):
            irritants = PrimCall("cons", [expr, irritants])
        return PrimCall("error", [message, irritants])

    def _expand_test(self, datum: Any, env: _Env) -> Expr:
        """Expand *datum* in boolean (test) context.

        Only truthiness matters here, so ``or`` needs no temporary:
        ``(or E1 E2)`` becomes ``(if E1 #t E2)``.  This keeps the
        revised save-placement algorithm's path sensitivity through
        short-circuit booleans nested in tests (§2.1.2 / Figure 1) —
        the value-preserving ``or`` expansion would hide ``E1``'s
        outcome behind a temporary.
        """
        if isinstance(datum, Pair) and isinstance(datum.car, Symbol):
            head = datum.car
            if env.lookup(head.name) is None:
                if head.name == "or":
                    items = _form_items(datum, "or", 1)
                    result: Expr = Quote(False)
                    for sub in reversed(items[1:]):
                        result = If(self._expand_test(sub, env), Quote(True), result)
                    return result
                if head.name == "and":
                    items = _form_items(datum, "and", 1)
                    result = Quote(True)
                    for sub in reversed(items[1:]):
                        result = If(self._expand_test(sub, env), result, Quote(False))
                    return result
                if head.name == "not":
                    items = _form_items(datum, "not", 2)
                    if len(items) != 2:
                        raise CompilerError("malformed not")
                    return PrimCall("not", [self._expand_test(items[1], env)])
        return self._expand(datum, env)

    def _eta_expand_primitive(self, name: str) -> Expr:
        """A primitive used as a value becomes a wrapper lambda."""
        if name == "list":
            # Variadic; give the common unary/binary uses via fixed arity 1.
            raise CompilerError("'list' cannot be used as a value in this subset")
        if not is_primitive(name):
            raise CompilerError(f"unbound variable: {name}")
        spec = PRIMITIVES[name]
        params = [self._fresh(f"x{i}") for i in range(spec.arity)]
        for param in params:
            param.referenced = True
        return Lambda(params, PrimCall(name, [Ref(p) for p in params]), name=name)

    # -- helpers ------------------------------------------------------------

    def _fresh(self, base: str) -> Var:
        self._gensym_counter += 1
        return Var(f"{base}%{self._gensym_counter}")

    # -- bodies with internal defines ---------------------------------------

    def _expand_body(self, forms: List[Any], env: _Env, where: str) -> Expr:
        """Expand a <body>: internal defines followed by expressions.

        Consecutive ``define``s of lambdas form mutually recursive
        :class:`Fix` groups; other defines become sequential ``Let``s.
        All defined names are visible throughout the body (alpha-level),
        but a value-define may not *evaluate* references to later groups
        (checked later by the scope checker).
        """
        if not forms:
            raise CompilerError(f"empty {where} body")
        defines: List[Tuple[Symbol, Any]] = []
        rest_index = len(forms)
        for i, form in enumerate(forms):
            if isinstance(form, Pair) and form.car is _DEFINE:
                defines.append(self._parse_define(form))
            else:
                rest_index = i
                break
        else:
            raise CompilerError(f"{where} body has definitions but no expressions")
        exprs = forms[rest_index:]
        for form in exprs:
            if isinstance(form, Pair) and form.car is _DEFINE:
                raise CompilerError("definition after expression in body")
        if not exprs:
            raise CompilerError(f"{where} body has definitions but no expressions")

        body_env = _Env(env)
        bound: List[Tuple[Var, Any]] = []
        for name, rhs_datum in defines:
            if name.name in body_env.bindings:
                raise CompilerError(f"duplicate definition: {name.name}")
            bound.append((body_env.bind(name.name), rhs_datum))

        body_exprs = [self._expand(e, body_env) for e in exprs]
        body: Expr = body_exprs[0] if len(body_exprs) == 1 else Seq(body_exprs)
        return self._wrap_definitions(bound, body, body_env)

    def _wrap_definitions(
        self, bound: List[Tuple[Var, Any]], body: Expr, env: _Env
    ) -> Expr:
        """Wrap *body* in Fix/Let groups for the given definitions."""
        groups: List[Tuple[str, List[Tuple[Var, Any]]]] = []
        for var, rhs in bound:
            is_lambda = isinstance(rhs, Pair) and rhs.car is _LAMBDA
            kind = "fix" if is_lambda else "let"
            if groups and groups[-1][0] == kind == "fix":
                groups[-1][1].append((var, rhs))
            else:
                groups.append((kind, [(var, rhs)]))
        result = body
        for kind, group in reversed(groups):
            if kind == "fix":
                lams = []
                for var, rhs in group:
                    lam = self._expand(rhs, env)
                    assert isinstance(lam, Lambda)
                    lam.name = var.name
                    lams.append(lam)
                result = Fix([v for v, _ in group], lams, result)
            else:
                (var, rhs) = group[0]
                result = Let(var, self._expand(rhs, env), result)
        return result

    def _parse_define(self, form: Pair) -> Tuple[Symbol, Any]:
        items = pairs_to_list(form)
        if len(items) < 2:
            raise CompilerError("malformed define")
        target = items[1]
        if isinstance(target, Symbol):
            if len(items) != 3:
                raise CompilerError(f"malformed define of {target.name}")
            return target, items[2]
        if isinstance(target, Pair):
            name = target.car
            if not isinstance(name, Symbol):
                raise CompilerError("malformed procedure define")
            params = target.cdr
            lambda_form = list_to_pairs([_LAMBDA, params, *items[2:]])
            return name, lambda_form
        raise CompilerError("malformed define")


# ---------------------------------------------------------------------------
# Special forms
# ---------------------------------------------------------------------------


def _form_items(form: Pair, name: str, minimum: int) -> List[Any]:
    try:
        items = pairs_to_list(form)
    except ValueError:
        raise CompilerError(f"malformed {name}: improper form") from None
    if len(items) < minimum:
        raise CompilerError(f"malformed {name}: too few subforms")
    return items


def _expand_quote(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "quote", 2)
    if len(items) != 2:
        raise CompilerError("malformed quote")
    return Quote(items[1])


def _expand_if(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "if", 3)
    if len(items) == 3:
        return If(
            exp._expand_test(items[1], env),
            exp._expand(items[2], env),
            Quote(UNSPECIFIED),
        )
    if len(items) == 4:
        return If(
            exp._expand_test(items[1], env),
            exp._expand(items[2], env),
            exp._expand(items[3], env),
        )
    raise CompilerError("malformed if")


def _expand_set(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "set!", 3)
    if len(items) != 3 or not isinstance(items[1], Symbol):
        raise CompilerError("malformed set!")
    var = env.lookup(items[1].name)
    if var is None:
        raise CompilerError(f"set!: unbound variable {items[1].name}")
    var.assigned = True
    return SetBang(var, exp._expand(items[2], env))


def _expand_begin(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "begin", 2)
    exprs = [exp._expand(e, env) for e in items[1:]]
    return exprs[0] if len(exprs) == 1 else Seq(exprs)


def _expand_lambda(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "lambda", 3)
    params_datum = items[1]
    if params_datum is not NIL and not isinstance(params_datum, Pair):
        raise CompilerError("lambda: variadic parameters are not supported in this subset")
    try:
        param_syms = pairs_to_list(params_datum) if params_datum is not NIL else []
    except ValueError:
        raise CompilerError(
            "lambda: rest parameters are not supported in this subset"
        ) from None
    inner = _Env(env)
    params = []
    for sym in param_syms:
        if not isinstance(sym, Symbol):
            raise CompilerError("lambda: parameter is not a symbol")
        if sym.name in inner.bindings:
            raise CompilerError(f"lambda: duplicate parameter {sym.name}")
        params.append(inner.bind(sym.name))
    body = exp._expand_body(items[2:], inner, where="lambda")
    return Lambda(params, body)


def _parse_bindings(exp: Expander, datum: Any, who: str) -> List[Tuple[Symbol, Any]]:
    try:
        binding_forms = pairs_to_list(datum) if datum is not NIL else []
    except ValueError:
        raise CompilerError(f"malformed {who} bindings") from None
    out = []
    for b in binding_forms:
        try:
            parts = pairs_to_list(b)
        except ValueError:
            raise CompilerError(f"malformed {who} binding") from None
        if len(parts) != 2 or not isinstance(parts[0], Symbol):
            raise CompilerError(f"malformed {who} binding")
        out.append((parts[0], parts[1]))
    return out


def _expand_let(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "let", 3)
    if isinstance(items[1], Symbol):
        return _expand_named_let(exp, items, env)
    bindings = _parse_bindings(exp, items[1], "let")
    rhss = [exp._expand(rhs, env) for _, rhs in bindings]
    inner = _Env(env)
    vars = []
    for (sym, _), _rhs in zip(bindings, rhss):
        if sym.name in inner.bindings:
            raise CompilerError(f"let: duplicate binding {sym.name}")
        vars.append(inner.bind(sym.name))
    body = exp._expand_body(items[2:], inner, where="let")
    for var, rhs in reversed(list(zip(vars, rhss))):
        body = Let(var, rhs, body)
    return body


def _expand_named_let(exp: Expander, items: List[Any], env: _Env) -> Expr:
    name = items[1]
    if len(items) < 4:
        raise CompilerError("malformed named let")
    bindings = _parse_bindings(exp, items[2], "named let")
    init_exprs = [exp._expand(rhs, env) for _, rhs in bindings]
    loop_env = _Env(env)
    loop_var = loop_env.bind(name.name)
    lam_env = _Env(loop_env)
    params = [lam_env.bind(sym.name) for sym, _ in bindings]
    body = exp._expand_body(items[3:], lam_env, where="named let")
    lam = Lambda(params, body, name=name.name)
    return Fix([loop_var], [lam], Call(Ref(_referenced(loop_var)), init_exprs))


def _referenced(var: Var) -> Var:
    var.referenced = True
    return var


def _expand_let_star(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "let*", 3)
    bindings = _parse_bindings(exp, items[1], "let*")
    envs = [env]
    vars: List[Var] = []
    rhss: List[Expr] = []
    current = env
    for sym, rhs in bindings:
        rhss.append(exp._expand(rhs, current))
        current = _Env(current)
        vars.append(current.bind(sym.name))
        envs.append(current)
    body = exp._expand_body(items[2:], current, where="let*")
    for var, rhs in reversed(list(zip(vars, rhss))):
        body = Let(var, rhs, body)
    return body


def _expand_letrec(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "letrec", 3)
    bindings = _parse_bindings(exp, items[1], "letrec")
    inner = _Env(env)
    bound: List[Tuple[Var, Any]] = []
    for sym, rhs in bindings:
        if sym.name in inner.bindings:
            raise CompilerError(f"letrec: duplicate binding {sym.name}")
        bound.append((inner.bind(sym.name), rhs))
    body = exp._expand_body(items[2:], inner, where="letrec")
    return exp._wrap_definitions(bound, body, inner)


def _expand_cond(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "cond", 2)
    clauses = items[1:]
    result: Expr = Quote(UNSPECIFIED)
    for clause in reversed(clauses):
        parts = pairs_to_list(clause)
        if not parts:
            raise CompilerError("malformed cond clause")
        if parts[0] is _ELSE:
            if clause is not clauses[-1]:
                raise CompilerError("cond: else clause must be last")
            exprs = [exp._expand(e, env) for e in parts[1:]]
            if not exprs:
                raise CompilerError("cond: empty else clause")
            result = exprs[0] if len(exprs) == 1 else Seq(exprs)
            continue
        test = exp._expand(parts[0], env)
        if len(parts) == 1:
            # (cond (test)) — value of test if true.
            tmp = exp._fresh("t")
            tmp.referenced = True
            result = Let(tmp, test, If(Ref(tmp), Ref(tmp), result))
        elif len(parts) >= 2 and parts[1] is _ARROW:
            if len(parts) != 3:
                raise CompilerError("malformed cond => clause")
            tmp = exp._fresh("t")
            tmp.referenced = True
            receiver = exp._expand(parts[2], env)
            result = Let(tmp, test, If(Ref(tmp), Call(receiver, [Ref(tmp)]), result))
        else:
            exprs = [exp._expand(e, env) for e in parts[1:]]
            then = exprs[0] if len(exprs) == 1 else Seq(exprs)
            result = If(exp._expand_test(parts[0], env), then, result)
    return result


def _expand_case(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "case", 3)
    key_var = exp._fresh("key")
    key_var.referenced = True
    result: Expr = Quote(UNSPECIFIED)
    for clause in reversed(items[2:]):
        parts = pairs_to_list(clause)
        if len(parts) < 2:
            raise CompilerError("malformed case clause")
        exprs = [exp._expand(e, env) for e in parts[1:]]
        body = exprs[0] if len(exprs) == 1 else Seq(exprs)
        if parts[0] is _ELSE:
            result = body
            continue
        try:
            datums = pairs_to_list(parts[0])
        except ValueError:
            raise CompilerError("malformed case clause datums") from None
        test: Expr = Quote(False)
        for datum in reversed(datums):
            test = If(
                PrimCall("eqv?", [Ref(key_var), Quote(datum)]),
                Quote(True),
                test,
            )
        result = If(test, body, result)
    return Let(key_var, exp._expand(items[1], env), result)


def _expand_and(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "and", 1)
    exprs = [exp._expand(e, env) for e in items[1:]]
    if not exprs:
        return Quote(True)
    result = exprs[-1]
    for expr in reversed(exprs[:-1]):
        result = If(expr, result, Quote(False))
    return result


def _expand_or(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "or", 1)
    exprs = [exp._expand(e, env) for e in items[1:]]
    if not exprs:
        return Quote(False)
    result = exprs[-1]
    for expr in reversed(exprs[:-1]):
        tmp = exp._fresh("t")
        tmp.referenced = True
        result = Let(tmp, expr, If(Ref(tmp), Ref(tmp), result))
    return result


def _expand_when(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "when", 3)
    test = exp._expand_test(items[1], env)
    exprs = [exp._expand(e, env) for e in items[2:]]
    body = exprs[0] if len(exprs) == 1 else Seq(exprs)
    return If(test, body, Quote(UNSPECIFIED))


def _expand_unless(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "unless", 3)
    test = exp._expand_test(items[1], env)
    exprs = [exp._expand(e, env) for e in items[2:]]
    body = exprs[0] if len(exprs) == 1 else Seq(exprs)
    return If(test, Quote(UNSPECIFIED), body)


def _expand_do(exp: Expander, form: Pair, env: _Env) -> Expr:
    """``(do ((var init step)...) (test result...) command...)`` expands
    to a named-let-style loop."""
    items = _form_items(form, "do", 3)
    specs = []
    for spec in pairs_to_list(items[1]) if items[1] is not NIL else []:
        parts = pairs_to_list(spec)
        if len(parts) == 2:
            parts.append(parts[0])  # step defaults to the variable itself
        if len(parts) != 3 or not isinstance(parts[0], Symbol):
            raise CompilerError("malformed do binding")
        specs.append(parts)
    exit_parts = pairs_to_list(items[2])
    if not exit_parts:
        raise CompilerError("malformed do exit clause")

    init_exprs = [exp._expand(init, env) for _, init, _ in specs]
    loop_env = _Env(env)
    loop_var = loop_env.bind("do-loop")
    lam_env = _Env(loop_env)
    params = [lam_env.bind(sym.name) for sym, _, _ in specs]

    test = exp._expand(exit_parts[0], lam_env)
    if len(exit_parts) > 1:
        result_exprs = [exp._expand(e, lam_env) for e in exit_parts[1:]]
        result = result_exprs[0] if len(result_exprs) == 1 else Seq(result_exprs)
    else:
        result = Quote(UNSPECIFIED)
    commands = [exp._expand(c, lam_env) for c in items[3:]]
    steps = [exp._expand(step, lam_env) for _, _, step in specs]
    recur = Call(Ref(_referenced(loop_var)), steps)
    loop_body: Expr = recur if not commands else Seq([*commands, recur])
    lam = Lambda(params, If(test, result, loop_body), name="do-loop")
    return Fix([loop_var], [lam], Call(Ref(_referenced(loop_var)), init_exprs))


def _expand_callcc(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "call/cc", 2)
    if len(items) != 2:
        raise CompilerError("malformed call/cc")
    return CallCC(exp._expand(items[1], env))


def _expand_not(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "not", 2)
    if len(items) != 2:
        raise CompilerError("malformed not")
    return PrimCall("not", [exp._expand(items[1], env)])


def _expand_quasiquote(exp: Expander, form: Pair, env: _Env) -> Expr:
    items = _form_items(form, "quasiquote", 2)
    if len(items) != 2:
        raise CompilerError("malformed quasiquote")
    return _qq(exp, items[1], env, depth=1)


def _qq(exp: Expander, datum: Any, env: _Env, depth: int) -> Expr:
    if isinstance(datum, Pair):
        head = datum.car
        if head is _UNQUOTE:
            items = pairs_to_list(datum)
            if depth == 1:
                return exp._expand(items[1], env)
            inner = _qq(exp, items[1], env, depth - 1)
            return PrimCall(
                "cons", [Quote(_UNQUOTE), PrimCall("cons", [inner, Quote(NIL)])]
            )
        if head is _QUASIQUOTE:
            items = pairs_to_list(datum)
            inner = _qq(exp, items[1], env, depth + 1)
            return PrimCall(
                "cons", [Quote(_QUASIQUOTE), PrimCall("cons", [inner, Quote(NIL)])]
            )
        if (
            isinstance(head, Pair)
            and head.car is _UNQUOTE_SPLICING
            and depth == 1
        ):
            spliced = exp._expand(pairs_to_list(head)[1], env)
            rest = _qq(exp, datum.cdr, env, depth)
            return PrimCall("append", [spliced, rest])
        return PrimCall(
            "cons", [_qq(exp, head, env, depth), _qq(exp, datum.cdr, env, depth)]
        )
    return Quote(datum)


_SPECIAL_FORMS: Dict[str, Callable[[Expander, Pair, _Env], Expr]] = {
    "quote": _expand_quote,
    "quasiquote": _expand_quasiquote,
    "if": _expand_if,
    "set!": _expand_set,
    "begin": _expand_begin,
    "lambda": _expand_lambda,
    "let": _expand_let,
    "let*": _expand_let_star,
    "letrec": _expand_letrec,
    "letrec*": _expand_letrec,
    "cond": _expand_cond,
    "case": _expand_case,
    "and": _expand_and,
    "or": _expand_or,
    "when": _expand_when,
    "unless": _expand_unless,
    "do": _expand_do,
    "not": _expand_not,
    "call/cc": _expand_callcc,
    "call-with-current-continuation": _expand_callcc,
    "define": None,  # handled by body expansion; appearing elsewhere is an error
}


def _define_out_of_context(exp: Expander, form: Pair, env: _Env) -> Expr:
    raise CompilerError("define in expression context")


_SPECIAL_FORMS["define"] = _define_out_of_context


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def expand_program(forms: List[Any]) -> Expr:
    """Expand a whole program (list of top-level datums) to a core
    expression."""
    return Expander().expand_program(forms)


def expand_expr(datum: Any) -> Expr:
    """Expand a single closed expression."""
    return Expander().expand_expr(datum)
