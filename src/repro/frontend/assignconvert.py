"""Assignment conversion.

Every variable that is the target of a ``set!`` is rewritten to hold a
heap-allocated box; references become ``unbox`` and assignments become
``set-box!``.  Afterwards no variable is ever mutated, which is the
property the paper relies on: "Because of assignment conversion,
variables need to be saved only once" (section 2.1) — a saved register
value can never go stale.
"""

from __future__ import annotations


from repro.astnodes import (
    Call,
    Expr,
    Fix,
    If,
    Lambda,
    Let,
    PrimCall,
    Quote,
    Ref,
    Seq,
    SetBang,
    Var,
)
from repro.errors import CompilerError
from repro.sexp.datum import UNSPECIFIED


def assignment_convert(expr: Expr) -> Expr:
    """Return an equivalent expression with no ``SetBang`` nodes."""
    return _convert(expr)


def _convert(expr: Expr) -> Expr:
    if isinstance(expr, Quote):
        return expr
    if isinstance(expr, Ref):
        if expr.var.boxed:
            return PrimCall("unbox", [expr])
        return expr
    if isinstance(expr, SetBang):
        var = expr.var
        if not var.boxed:
            raise CompilerError(f"set! of unboxed variable {var!r}")
        var.referenced = True
        return PrimCall("set-box!", [Ref(var), _convert(expr.value)])
    if isinstance(expr, PrimCall):
        return PrimCall(expr.op, [_convert(a) for a in expr.args])
    if isinstance(expr, If):
        return If(_convert(expr.test), _convert(expr.then), _convert(expr.otherwise))
    if isinstance(expr, Seq):
        return Seq([_convert(e) for e in expr.exprs])
    if isinstance(expr, Let):
        rhs = _convert(expr.rhs)
        if expr.var.assigned:
            expr.var.boxed = True
            rhs = PrimCall("box", [rhs])
        return Let(expr.var, rhs, _convert(expr.body))
    if isinstance(expr, Lambda):
        return _convert_lambda(expr)
    if isinstance(expr, Fix):
        return _convert_fix(expr)
    if isinstance(expr, Call):
        # type(expr) preserves the CallCC subclass.
        return type(expr)(_convert(expr.fn), [_convert(a) for a in expr.args], expr.tail)
    raise CompilerError(
        f"assignment conversion: unexpected node {type(expr).__name__}"
    )


def _convert_lambda(lam: Lambda) -> Lambda:
    """Boxed parameters are rebound: ``(lambda (x) ...)`` with assigned
    ``x`` becomes ``(lambda (x*) (let ([x (box x*)]) ...))``."""
    new_params = []
    rebinds = []
    for param in lam.params:
        if param.assigned:
            fresh = Var(param.name + "*")
            fresh.referenced = True
            param.boxed = True
            new_params.append(fresh)
            rebinds.append((param, fresh))
        else:
            new_params.append(param)
    body = _convert(lam.body)
    for param, fresh in reversed(rebinds):
        body = Let(param, PrimCall("box", [Ref(fresh)]), body)
    return Lambda(new_params, body, lam.name)


def _convert_fix(fix: Fix) -> Expr:
    """A ``Fix`` whose bound variables are assigned degrades to boxes."""
    if not any(v.assigned for v in fix.vars):
        return Fix(fix.vars, [_convert_lambda(l) for l in fix.lambdas], _convert(fix.body))
    # General letrec with assignment: bind boxes, then fill them.
    for var in fix.vars:
        var.boxed = True
        var.referenced = True
    fills = [
        PrimCall("set-box!", [Ref(var), _convert_lambda(lam)])
        for var, lam in zip(fix.vars, fix.lambdas)
    ]
    body: Expr = Seq([*fills, _convert(fix.body)])
    for var in reversed(fix.vars):
        body = Let(var, PrimCall("box", [Quote(UNSPECIFIED)]), body)
    return body
