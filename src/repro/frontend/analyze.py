"""Post-expansion analyses: tail-call marking and scope checking.

Tail calls matter to the paper: footnote 1 — "Because tail calls in
Scheme are essentially jumps, they are not considered calls" for the
purposes of leaf-ness or save placement.  The allocator and the VM both
rely on ``Call.tail``.
"""

from __future__ import annotations

from typing import Set

from repro.astnodes import (
    Call,
    CallCC,
    Expr,
    Fix,
    If,
    Lambda,
    Let,
    PrimCall,
    Quote,
    Ref,
    Seq,
    SetBang,
    Var,
)
from repro.errors import CompilerError


def mark_tail_calls(expr: Expr, tail: bool = True) -> None:
    """Annotate every ``Call`` with whether it is in tail position.

    The top-level body is treated as a procedure body (its last call is
    a tail call).
    """
    if isinstance(expr, (Quote, Ref)):
        return
    if isinstance(expr, PrimCall):
        for arg in expr.args:
            mark_tail_calls(arg, False)
        return
    if isinstance(expr, If):
        mark_tail_calls(expr.test, False)
        mark_tail_calls(expr.then, tail)
        mark_tail_calls(expr.otherwise, tail)
        return
    if isinstance(expr, Seq):
        for sub in expr.exprs[:-1]:
            mark_tail_calls(sub, False)
        mark_tail_calls(expr.exprs[-1], tail)
        return
    if isinstance(expr, Let):
        mark_tail_calls(expr.rhs, False)
        mark_tail_calls(expr.body, tail)
        return
    if isinstance(expr, Lambda):
        mark_tail_calls(expr.body, True)
        return
    if isinstance(expr, Fix):
        for lam in expr.lambdas:
            mark_tail_calls(lam, True)
        mark_tail_calls(expr.body, tail)
        return
    if isinstance(expr, CallCC):
        # call/cc is compiled as an ordinary (capturing) call followed
        # by a return, so it is never a tail jump.
        expr.tail = False
        mark_tail_calls(expr.fn, False)
        return
    if isinstance(expr, Call):
        expr.tail = tail
        mark_tail_calls(expr.fn, False)
        for arg in expr.args:
            mark_tail_calls(arg, False)
        return
    if isinstance(expr, SetBang):
        mark_tail_calls(expr.value, False)
        return
    raise CompilerError(f"tail marking: unexpected node {type(expr).__name__}")


def check_scopes(expr: Expr) -> None:
    """Verify every ``Ref`` is in the scope of its binder.

    The expander's grouping of top-level defines (see DESIGN.md) can in
    principle produce out-of-scope forward references; this pass turns
    that into a clear error instead of a downstream crash.
    """
    _check(expr, set())


def _check(expr: Expr, bound: Set[Var]) -> None:
    if isinstance(expr, Quote):
        return
    if isinstance(expr, Ref):
        if expr.var not in bound:
            raise CompilerError(f"variable used out of scope: {expr.var!r}")
        return
    if isinstance(expr, PrimCall):
        for arg in expr.args:
            _check(arg, bound)
        return
    if isinstance(expr, If):
        _check(expr.test, bound)
        _check(expr.then, bound)
        _check(expr.otherwise, bound)
        return
    if isinstance(expr, Seq):
        for sub in expr.exprs:
            _check(sub, bound)
        return
    if isinstance(expr, Let):
        _check(expr.rhs, bound)
        _check(expr.body, bound | {expr.var})
        return
    if isinstance(expr, Lambda):
        _check(expr.body, bound | set(expr.params))
        return
    if isinstance(expr, Fix):
        extended = bound | set(expr.vars)
        for lam in expr.lambdas:
            _check(lam, extended)
        _check(expr.body, extended)
        return
    if isinstance(expr, Call):
        _check(expr.fn, bound)
        for arg in expr.args:
            _check(arg, bound)
        return
    if isinstance(expr, SetBang):
        if expr.var not in bound:
            raise CompilerError(f"variable assigned out of scope: {expr.var!r}")
        _check(expr.value, bound)
        return
    raise CompilerError(f"scope check: unexpected node {type(expr).__name__}")
