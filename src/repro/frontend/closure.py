"""Closure conversion.

Lifts every ``Lambda`` to a top-level :class:`CodeObject` whose body
refers to captured variables through explicit closure slots
(:class:`ClosureRef`).  Lambda expressions become :class:`MakeClosure`.
``Fix`` (letrec of lambdas) survives as a special form whose right-hand
sides are ``MakeClosure``s; the back end allocates all the closures
first and then fills their slots, which is what makes mutual recursion
work without boxes.

This mirrors the paper's run-time model: the current closure lives in
the dedicated ``cp`` register and free-variable access is "fast access
to free variables" through it (section 4).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.astnodes import (
    Call,
    ClosureRef,
    CodeObject,
    Expr,
    Fix,
    If,
    Lambda,
    Let,
    MakeClosure,
    PrimCall,
    Program,
    Quote,
    Ref,
    Seq,
    Var,
    walk,
)
from repro.errors import CompilerError


def closure_convert(expr: Expr) -> Program:
    """Convert a closed, assignment-converted expression to a Program."""
    converter = _Converter()
    body = converter.convert(expr, {})
    entry = CodeObject("main", [], [], body)
    converter.codes.append(entry)
    for code in converter.codes:
        code.syntactic_leaf = _is_syntactic_leaf(code)
    return Program(converter.codes, entry)


class _Converter:
    def __init__(self) -> None:
        self.codes: List[CodeObject] = []

    def convert(self, expr: Expr, env: Dict[Var, Expr]) -> Expr:
        """Rewrite *expr*; *env* maps captured variables to their access
        expression inside the current code body."""
        if isinstance(expr, Quote):
            return expr
        if isinstance(expr, Ref):
            access = env.get(expr.var)
            return access if access is not None else expr
        if isinstance(expr, PrimCall):
            return PrimCall(expr.op, [self.convert(a, env) for a in expr.args])
        if isinstance(expr, If):
            return If(
                self.convert(expr.test, env),
                self.convert(expr.then, env),
                self.convert(expr.otherwise, env),
            )
        if isinstance(expr, Seq):
            return Seq([self.convert(e, env) for e in expr.exprs])
        if isinstance(expr, Let):
            return Let(
                expr.var, self.convert(expr.rhs, env), self.convert(expr.body, env)
            )
        if isinstance(expr, Lambda):
            return self._convert_lambda(expr, env)
        if isinstance(expr, Fix):
            closures = [self._convert_lambda(lam, env) for lam in expr.lambdas]
            return Fix(expr.vars, closures, self.convert(expr.body, env))
        if isinstance(expr, Call):
            # type(expr) preserves the CallCC subclass.
            return type(expr)(
                self.convert(expr.fn, env),
                [self.convert(a, env) for a in expr.args],
                expr.tail,
            )
        raise CompilerError(
            f"closure conversion: unexpected node {type(expr).__name__}"
        )

    def _convert_lambda(self, lam: Lambda, env: Dict[Var, Expr]) -> MakeClosure:
        free = sorted(free_variables(lam), key=lambda v: v.uid)
        inner_env: Dict[Var, Expr] = {
            var: ClosureRef(var, i) for i, var in enumerate(free)
        }
        body = self.convert(lam.body, inner_env)
        code = CodeObject(lam.name, lam.params, free, body)
        self.codes.append(code)
        free_exprs = [self.convert(Ref(var), env) for var in free]
        return MakeClosure(code, free_exprs)


def free_variables(expr: Expr) -> Set[Var]:
    """Free variables of a (pre-closure-conversion) expression."""
    if isinstance(expr, Quote):
        return set()
    if isinstance(expr, Ref):
        return {expr.var}
    if isinstance(expr, PrimCall):
        out: Set[Var] = set()
        for arg in expr.args:
            out |= free_variables(arg)
        return out
    if isinstance(expr, If):
        return (
            free_variables(expr.test)
            | free_variables(expr.then)
            | free_variables(expr.otherwise)
        )
    if isinstance(expr, Seq):
        out = set()
        for sub in expr.exprs:
            out |= free_variables(sub)
        return out
    if isinstance(expr, Let):
        return free_variables(expr.rhs) | (free_variables(expr.body) - {expr.var})
    if isinstance(expr, Lambda):
        return free_variables(expr.body) - set(expr.params)
    if isinstance(expr, Fix):
        out = free_variables(expr.body)
        for lam in expr.lambdas:
            out |= free_variables(lam)
        return out - set(expr.vars)
    if isinstance(expr, Call):
        out = free_variables(expr.fn)
        for arg in expr.args:
            out |= free_variables(arg)
        return out
    raise CompilerError(f"free variables: unexpected node {type(expr).__name__}")


def _is_syntactic_leaf(code: CodeObject) -> bool:
    """A syntactic leaf contains no non-tail call sites (footnote 1:
    tail calls are jumps, not calls)."""
    for node in walk(code.body):
        if isinstance(node, Call) and not node.tail:
            return False
    return True
