"""Lambda lifting (the paper's §6 future work).

"Other researchers have investigated the use of lambda lifting to
increase the number of arguments available for placement in registers
[13, 9].  While lambda lifting can easily result in net performance
decreases, it is worth investigating whether lambda lifting with an
appropriate set of heuristics can indeed increase the effectiveness of
our register allocator."

This pass lifts *known* procedures — ``fix``-bound procedures whose
every occurrence is in operator position — by turning their free
variables into extra parameters and rewriting every call site.  Free
variable access then flows through argument registers (subject to the
paper's allocator) instead of closure slots.

Heuristics (the "appropriate set"):

* only known, never-escaping procedures are lifted (an escaping
  procedure's closure must exist anyway);
* a procedure is lifted only when its total parameter count stays
  within ``max_params`` (extra parameters beyond the argument
  registers would trade cheap closure-slot reads for stack traffic —
  the paper's "net performance decrease");
* mutual recursion is handled by iterating the group's free-variable
  sets to a fixpoint before deciding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.astnodes import (
    Call,
    Expr,
    Fix,
    If,
    Lambda,
    Let,
    PrimCall,
    Quote,
    Ref,
    Seq,
    Var,
)
from repro.errors import CompilerError
from repro.frontend.closure import free_variables


class LiftReport:
    """What the pass did (for tests and the ablation benchmark)."""

    def __init__(self) -> None:
        self.lifted: List[str] = []
        self.rejected_escaping: List[str] = []
        self.rejected_arity: List[str] = []

    def __repr__(self) -> str:
        return (
            f"<LiftReport lifted={len(self.lifted)} "
            f"escaping={len(self.rejected_escaping)} "
            f"arity={len(self.rejected_arity)}>"
        )


def lambda_lift(expr: Expr, max_params: int = 6) -> "tuple[Expr, LiftReport]":
    """Lift known fix-bound procedures in *expr* (mutates in place).

    Returns the rewritten expression and a report of decisions.
    """
    report = LiftReport()
    escaping = _escaping_vars(expr)
    known = _known_procedures(expr, escaping)
    _lift(expr, escaping, known, max_params, report)
    return expr, report


def _known_procedures(expr: Expr, escaping: Set[Var]) -> Set[Var]:
    """Fix-bound variables that never escape: they are procedures
    called directly.  Lifting must never turn one into a passed value
    (that would create an escape and break its own call sites), so
    they are excluded from the free-variables-become-parameters set —
    they stay reachable through the closure."""
    known: Set[Var] = set()

    def visit(node: Expr) -> None:
        if isinstance(node, Fix):
            for v in node.vars:
                if v not in escaping:
                    known.add(v)
        for child in _children(node):
            visit(child)

    visit(expr)
    return known


# ---------------------------------------------------------------------------
# Escape analysis: which variables are ever used as values?
# ---------------------------------------------------------------------------


def _escaping_vars(expr: Expr) -> Set[Var]:
    """Variables referenced anywhere other than directly as a call's
    operator."""
    escaping: Set[Var] = set()

    def visit(node: Expr) -> None:
        if isinstance(node, Ref):
            escaping.add(node.var)
        elif isinstance(node, Call):
            # The operator position does not count as an escape.
            if not isinstance(node.fn, Ref):
                visit(node.fn)
            for arg in node.args:
                visit(arg)
        elif isinstance(node, PrimCall):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, If):
            visit(node.test)
            visit(node.then)
            visit(node.otherwise)
        elif isinstance(node, Seq):
            for sub in node.exprs:
                visit(sub)
        elif isinstance(node, Let):
            visit(node.rhs)
            visit(node.body)
        elif isinstance(node, Lambda):
            visit(node.body)
        elif isinstance(node, Fix):
            for lam in node.lambdas:
                visit(lam)
            visit(node.body)
        elif isinstance(node, Quote):
            pass
        else:
            raise CompilerError(
                f"lambda lifting: unexpected node {type(node).__name__}"
            )

    visit(expr)
    return escaping


# ---------------------------------------------------------------------------
# The lift
# ---------------------------------------------------------------------------


def _lift(
    expr: Expr,
    escaping: Set[Var],
    known: Set[Var],
    max_params: int,
    report: LiftReport,
) -> None:
    """Recursively process Fix groups, innermost first."""
    for child in _children(expr):
        _lift(child, escaping, known, max_params, report)
    if isinstance(expr, Fix):
        _lift_group(expr, escaping, known, max_params, report)


def _children(expr: Expr) -> List[Expr]:
    from repro.astnodes import children

    return children(expr)


def _lift_group(
    fix: Fix,
    escaping: Set[Var],
    known: Set[Var],
    max_params: int,
    report: LiftReport,
) -> None:
    # Fixpoint of the group's free-variable sets: calling a lifted
    # sibling means inheriting its extra parameters.
    group = dict(zip(fix.vars, fix.lambdas))
    fv: Dict[Var, Set[Var]] = {}
    candidates = []
    for var, lam in group.items():
        if var in escaping:
            report.rejected_escaping.append(var.name)
            continue
        candidates.append(var)
        fv[var] = set(free_variables(lam)) - set(fix.vars) - known

    changed = True
    while changed:
        changed = False
        for var in candidates:
            lam = group[var]
            for callee in _called_siblings(lam, fix.vars):
                if callee in fv:
                    extra = fv[callee] - fv[var]
                    if extra:
                        fv[var] |= extra
                        changed = True

    lift_set: Set[Var] = set()
    for var in candidates:
        lam = group[var]
        if not fv[var]:
            continue  # already closed; nothing to lift
        if len(lam.params) + len(fv[var]) > max_params:
            report.rejected_arity.append(var.name)
            continue
        lift_set.add(var)

    # Mutual recursion constraint: a lifted procedure calling an
    # unlifted sibling is fine, but an unlifted (or rejected) sibling
    # calling a *lifted* one would need the extra arguments too — it
    # can supply them (the free variables are in scope), so no
    # constraint is actually violated.  Escaping procedures, however,
    # must keep their calling convention, so any candidate that a
    # rejected/escaping sibling calls... also works: the call site is
    # rewritten wherever it appears.  No further pruning needed.

    if not lift_set:
        return
    # Phase 1: give every lifted procedure its new parameters and
    # rewrite its body to use them.
    fresh_maps: Dict[Lambda, Dict[Var, Var]] = {}
    free_lists: Dict[Var, List[Var]] = {}
    for var in sorted(lift_set, key=lambda v: v.uid):
        lam = group[var]
        free = sorted(fv[var], key=lambda v: v.uid)
        fresh = {f: _fresh_like(f) for f in free}
        _substitute(lam.body, fresh)
        lam.params.extend(fresh[f] for f in free)
        fresh_maps[lam] = fresh
        free_lists[var] = free
        report.lifted.append(var.name)
    # Phase 2: extend every call site.  Inside a lifted lambda the
    # extra arguments are that lambda's own parameters (its free-set is
    # a superset by the fixpoint); elsewhere they are the original
    # variables, still in scope.
    lifted_by_lambda = {group[var]: var for var in lift_set}

    def visit(node: Expr, enclosing: Optional[Lambda]) -> None:
        if (
            isinstance(node, Call)
            and isinstance(node.fn, Ref)
            and node.fn.var in lift_set
        ):
            mapping = fresh_maps.get(enclosing, {})
            for f in free_lists[node.fn.var]:
                source = mapping.get(f, f)
                source.referenced = True
                node.args.append(Ref(source))
        if isinstance(node, Lambda):
            visit(node.body, node if node in lifted_by_lambda else enclosing)
            return
        if isinstance(node, Fix):
            for lam in node.lambdas:
                visit(lam, lam if lam in lifted_by_lambda else enclosing)
            visit(node.body, enclosing)
            return
        for child in _children(node):
            visit(child, enclosing)

    visit(fix, None)


def _called_siblings(lam: Lambda, siblings: List[Var]) -> List[Var]:
    sibs = set(siblings)
    out = []

    def visit(node: Expr) -> None:
        if isinstance(node, Call) and isinstance(node.fn, Ref) and node.fn.var in sibs:
            out.append(node.fn.var)
        for child in _children(node):
            visit(child)

    visit(lam.body)
    return out


def _lift_one(fix: Fix, var: Var, lam: Lambda, free: List[Var]) -> None:
    """Add *free* as parameters of *lam* and extend every call site.

    Call sites inside the lifted procedure's own body refer to the new
    parameters; call sites elsewhere refer to the original outer
    variables (still in scope there).
    """
    fresh = {fv: _fresh_like(fv) for fv in free}
    _substitute(lam.body, fresh)
    lam.params.extend(fresh[fv] for fv in free)
    _extend_call_sites(fix, var, free, fresh, inside=None)


def _fresh_like(var: Var) -> Var:
    fresh = Var(var.name + "^")
    fresh.referenced = True
    return fresh


def _substitute(expr: Expr, mapping: Dict[Var, Var]) -> None:
    """Replace references to mapped variables (in place)."""
    if isinstance(expr, Ref):
        if expr.var in mapping:
            expr.var = mapping[expr.var]
        return
    for child in _children(expr):
        _substitute(child, mapping)


def _extend_call_sites(
    root: Expr,
    target: Var,
    free: List[Var],
    fresh: Dict[Var, Var],
    inside: Optional[Lambda],
) -> None:
    """Append the lifted arguments at every direct call of *target*.

    Within the lifted lambda itself the extra arguments are its own new
    parameters; everywhere else they are the original variables."""
    lifted_lambda = None
    if isinstance(root, Fix):
        for v, lam in zip(root.vars, root.lambdas):
            if v is target:
                lifted_lambda = lam

    def visit(node: Expr, in_lifted: bool) -> None:
        if isinstance(node, Call) and isinstance(node.fn, Ref) and node.fn.var is target:
            for fv in free:
                source = fresh[fv] if in_lifted else fv
                source.referenced = True
                node.args.append(Ref(source))
        if isinstance(node, Lambda):
            visit(node.body, in_lifted or node is lifted_lambda)
            return
        if isinstance(node, Fix):
            for lam in node.lambdas:
                visit(lam, in_lifted or lam is lifted_lambda)
            visit(node.body, in_lifted)
            return
        for child in _children(node):
            visit(child, in_lifted)

    visit(root, False)
