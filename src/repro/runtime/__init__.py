"""Run-time support shared by the VM and the reference interpreter."""

from repro.runtime.values import Box, SchemeError, OutputPort
from repro.runtime.primitives import PRIMITIVES, PrimSpec, is_primitive, prim_spec

__all__ = [
    "Box",
    "SchemeError",
    "OutputPort",
    "PRIMITIVES",
    "PrimSpec",
    "is_primitive",
    "prim_spec",
]
