"""Run-time value types that are not also reader datums."""

from __future__ import annotations

from typing import Any, List


class SchemeError(Exception):
    """Raised by the ``error`` primitive and by run-time type errors."""

    def __init__(self, message: str, irritant: Any = None) -> None:
        super().__init__(message)
        self.message = message
        self.irritant = irritant


class Box:
    """A mutable cell.

    Assignment conversion turns every ``set!``-assigned variable into a
    box so that, as the paper notes, "variables need to be saved only
    once": the register holds an immutable pointer to the box.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"#<box {self.value!r}>"


class OutputPort:
    """An in-memory output sink for ``display``/``write``/``newline``.

    The paper's ``fprint``/``tprint`` benchmarks print to files; we
    collect the characters in memory, which exercises the same printer
    recursion without OS I/O (see DESIGN.md substitutions).
    """

    __slots__ = ("chunks",)

    def __init__(self) -> None:
        self.chunks: List[str] = []

    def emit(self, text: str) -> None:
        self.chunks.append(text)

    def contents(self) -> str:
        return "".join(self.chunks)

    def clear(self) -> None:
        self.chunks.clear()
