"""The primitive operation table.

Every primitive has a fixed arity in the *core* language; the expander
folds n-ary surface syntax (``(+ a b c)``, ``(list ...)``) into nested
binary applications of these core primitives (see
``repro.frontend.expand``).

Each primitive is implemented as a Python callable ``fn(args, port)``
where *args* is a list of Scheme values and *port* is the current
:class:`~repro.runtime.values.OutputPort`.  The same implementations are
used by the reference interpreter and by the VM's ``prim`` instruction,
which guarantees the two agree — the foundation of our differential
tests.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List

from repro.sexp.datum import (
    Char,
    MutableString,
    NIL,
    Pair,
    Symbol,
    UNSPECIFIED,
    is_list,
    scheme_equal,
    scheme_eqv,
)
from repro.sexp.writer import display_datum, write_datum
from repro.runtime.values import Box, OutputPort, SchemeError


class PrimSpec:
    """Description of one core primitive."""

    __slots__ = ("name", "arity", "fn", "pure", "returns_bool")

    def __init__(
        self,
        name: str,
        arity: int,
        fn: Callable[[List[Any], OutputPort], Any],
        pure: bool = True,
        returns_bool: bool = False,
    ) -> None:
        self.name = name
        self.arity = arity
        self.fn = fn
        self.pure = pure
        self.returns_bool = returns_bool

    def __repr__(self) -> str:
        return f"<prim {self.name}/{self.arity}>"


PRIMITIVES: Dict[str, PrimSpec] = {}


def _define(name: str, arity: int, pure: bool = True, returns_bool: bool = False):
    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        def invoke(args: List[Any], port: OutputPort) -> Any:
            return fn(*args)

        PRIMITIVES[name] = PrimSpec(name, arity, invoke, pure, returns_bool)
        return fn

    return wrap


def _define_port(name: str, arity: int):
    """Primitives that need the output port."""

    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        def invoke(args: List[Any], port: OutputPort) -> Any:
            return fn(port, *args)

        PRIMITIVES[name] = PrimSpec(name, arity, invoke, pure=False)
        return fn

    return wrap


def is_primitive(name: str) -> bool:
    return name in PRIMITIVES


def prim_spec(name: str) -> PrimSpec:
    return PRIMITIVES[name]


# ---------------------------------------------------------------------------
# Type-checking helpers
# ---------------------------------------------------------------------------


def _want_pair(x: Any, who: str) -> Pair:
    if not isinstance(x, Pair):
        raise SchemeError(f"{who}: not a pair", x)
    return x


def _want_int(x: Any, who: str) -> int:
    if isinstance(x, bool) or not isinstance(x, int):
        raise SchemeError(f"{who}: not a fixnum", x)
    return x


def _want_number(x: Any, who: str):
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        raise SchemeError(f"{who}: not a number", x)
    return x


def _want_vector(x: Any, who: str) -> list:
    if not isinstance(x, list):
        raise SchemeError(f"{who}: not a vector", x)
    return x


def _want_string(x: Any, who: str) -> MutableString:
    if not isinstance(x, MutableString):
        raise SchemeError(f"{who}: not a string", x)
    return x


def _want_char(x: Any, who: str) -> Char:
    if not isinstance(x, Char):
        raise SchemeError(f"{who}: not a character", x)
    return x


def _want_symbol(x: Any, who: str) -> Symbol:
    if not isinstance(x, Symbol):
        raise SchemeError(f"{who}: not a symbol", x)
    return x


# ---------------------------------------------------------------------------
# Pairs and lists
# ---------------------------------------------------------------------------


@_define("cons", 2)
def _cons(a, d):
    return Pair(a, d)


@_define("car", 1)
def _car(p):
    return _want_pair(p, "car").car


@_define("cdr", 1)
def _cdr(p):
    return _want_pair(p, "cdr").cdr


@_define("set-car!", 2, pure=False)
def _set_car(p, v):
    _want_pair(p, "set-car!").car = v
    return UNSPECIFIED


@_define("set-cdr!", 2, pure=False)
def _set_cdr(p, v):
    _want_pair(p, "set-cdr!").cdr = v
    return UNSPECIFIED


@_define("pair?", 1, returns_bool=True)
def _pair_p(x):
    return isinstance(x, Pair)


@_define("null?", 1, returns_bool=True)
def _null_p(x):
    return x is NIL


@_define("list?", 1, returns_bool=True)
def _list_p(x):
    return is_list(x)


@_define("atom?", 1, returns_bool=True)
def _atom_p(x):
    return not isinstance(x, Pair)


@_define("length", 1)
def _length(ls):
    n = 0
    while isinstance(ls, Pair):
        n += 1
        ls = ls.cdr
    if ls is not NIL:
        raise SchemeError("length: improper list", ls)
    return n


@_define("append", 2)
def _append(a, b):
    items = []
    while isinstance(a, Pair):
        items.append(a.car)
        a = a.cdr
    if a is not NIL:
        raise SchemeError("append: improper list", a)
    result = b
    for item in reversed(items):
        result = Pair(item, result)
    return result


@_define("reverse", 1)
def _reverse(ls):
    result: Any = NIL
    while isinstance(ls, Pair):
        result = Pair(ls.car, result)
        ls = ls.cdr
    if ls is not NIL:
        raise SchemeError("reverse: improper list", ls)
    return result


def _eq_semantics(a: Any, b: Any) -> bool:
    """``eq?`` as our runtime defines it: identity, with fixnums immediate."""
    if a is b:
        return True
    if (
        isinstance(a, int)
        and isinstance(b, int)
        and not isinstance(a, bool)
        and not isinstance(b, bool)
    ):
        return a == b
    return False


def _mem(pred, x, ls, who):
    while isinstance(ls, Pair):
        if pred(x, ls.car):
            return ls
        ls = ls.cdr
    if ls is not NIL:
        raise SchemeError(f"{who}: improper list", ls)
    return False


@_define("memq", 2)
def _memq(x, ls):
    return _mem(_eq_semantics, x, ls, "memq")


@_define("memv", 2)
def _memv(x, ls):
    return _mem(scheme_eqv, x, ls, "memv")


@_define("member", 2)
def _member(x, ls):
    return _mem(scheme_equal, x, ls, "member")


def _ass(pred, x, ls, who):
    while isinstance(ls, Pair):
        entry = ls.car
        if isinstance(entry, Pair) and pred(x, entry.car):
            return entry
        ls = ls.cdr
    if ls is not NIL:
        raise SchemeError(f"{who}: improper list", ls)
    return False


@_define("assq", 2)
def _assq(x, ls):
    return _ass(_eq_semantics, x, ls, "assq")


@_define("assv", 2)
def _assv(x, ls):
    return _ass(scheme_eqv, x, ls, "assv")


@_define("assoc", 2)
def _assoc(x, ls):
    return _ass(scheme_equal, x, ls, "assoc")


@_define("list-tail", 2)
def _list_tail(ls, n):
    n = _want_int(n, "list-tail")
    for _ in range(n):
        ls = _want_pair(ls, "list-tail").cdr
    return ls


@_define("list-ref", 2)
def _list_ref(ls, n):
    n = _want_int(n, "list-ref")
    for _ in range(n):
        ls = _want_pair(ls, "list-ref").cdr
    return _want_pair(ls, "list-ref").car


@_define("last-pair", 1)
def _last_pair(ls):
    p = _want_pair(ls, "last-pair")
    while isinstance(p.cdr, Pair):
        p = p.cdr
    return p


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


@_define("+", 2)
def _add(a, b):
    return _want_number(a, "+") + _want_number(b, "+")


@_define("-", 2)
def _sub(a, b):
    return _want_number(a, "-") - _want_number(b, "-")


@_define("*", 2)
def _mul(a, b):
    return _want_number(a, "*") * _want_number(b, "*")


@_define("/", 2)
def _div(a, b):
    a = _want_number(a, "/")
    b = _want_number(b, "/")
    if b == 0:
        raise SchemeError("/: division by zero", a)
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return a / b


@_define("quotient", 2)
def _quotient(a, b):
    a = _want_int(a, "quotient")
    b = _want_int(b, "quotient")
    if b == 0:
        raise SchemeError("quotient: division by zero", a)
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


@_define("remainder", 2)
def _remainder(a, b):
    a = _want_int(a, "remainder")
    b = _want_int(b, "remainder")
    if b == 0:
        raise SchemeError("remainder: division by zero", a)
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


@_define("modulo", 2)
def _modulo(a, b):
    a = _want_int(a, "modulo")
    b = _want_int(b, "modulo")
    if b == 0:
        raise SchemeError("modulo: division by zero", a)
    return a % b


@_define("abs", 1)
def _abs(a):
    return abs(_want_number(a, "abs"))


@_define("min", 2)
def _min(a, b):
    return min(_want_number(a, "min"), _want_number(b, "min"))


@_define("max", 2)
def _max(a, b):
    return max(_want_number(a, "max"), _want_number(b, "max"))


@_define("expt", 2)
def _expt(a, b):
    return _want_number(a, "expt") ** _want_number(b, "expt")


@_define("gcd", 2)
def _gcd(a, b):
    return math.gcd(_want_int(a, "gcd"), _want_int(b, "gcd"))


@_define("sqrt", 1)
def _sqrt(a):
    a = _want_number(a, "sqrt")
    if isinstance(a, int) and a >= 0:
        root = math.isqrt(a)
        if root * root == a:
            return root
    return math.sqrt(a)


@_define("sin", 1)
def _sin(a):
    return math.sin(_want_number(a, "sin"))


@_define("cos", 1)
def _cos(a):
    return math.cos(_want_number(a, "cos"))


@_define("floor", 1)
def _floor(a):
    a = _want_number(a, "floor")
    return a if isinstance(a, int) else float(math.floor(a))


@_define("exact->inexact", 1)
def _exact_to_inexact(a):
    return float(_want_number(a, "exact->inexact"))


@_define("inexact->exact", 1)
def _inexact_to_exact(a):
    a = _want_number(a, "inexact->exact")
    return int(a)


@_define("=", 2, returns_bool=True)
def _num_eq(a, b):
    return _want_number(a, "=") == _want_number(b, "=")


@_define("<", 2, returns_bool=True)
def _num_lt(a, b):
    return _want_number(a, "<") < _want_number(b, "<")


@_define(">", 2, returns_bool=True)
def _num_gt(a, b):
    return _want_number(a, ">") > _want_number(b, ">")


@_define("<=", 2, returns_bool=True)
def _num_le(a, b):
    return _want_number(a, "<=") <= _want_number(b, "<=")


@_define(">=", 2, returns_bool=True)
def _num_ge(a, b):
    return _want_number(a, ">=") >= _want_number(b, ">=")


@_define("zero?", 1, returns_bool=True)
def _zero_p(a):
    return _want_number(a, "zero?") == 0


@_define("positive?", 1, returns_bool=True)
def _positive_p(a):
    return _want_number(a, "positive?") > 0


@_define("negative?", 1, returns_bool=True)
def _negative_p(a):
    return _want_number(a, "negative?") < 0


@_define("even?", 1, returns_bool=True)
def _even_p(a):
    return _want_int(a, "even?") % 2 == 0


@_define("odd?", 1, returns_bool=True)
def _odd_p(a):
    return _want_int(a, "odd?") % 2 == 1


@_define("add1", 1)
def _add1(a):
    return _want_number(a, "add1") + 1


@_define("sub1", 1)
def _sub1(a):
    return _want_number(a, "sub1") - 1


# ---------------------------------------------------------------------------
# Predicates and equality
# ---------------------------------------------------------------------------


@_define("eq?", 2, returns_bool=True)
def _eq_p(a, b):
    if a is b:
        return True
    # Small fixnums behave like immediates in a real Scheme system.
    if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool) and not isinstance(b, bool):
        return a == b
    return False


@_define("eqv?", 2, returns_bool=True)
def _eqv_p(a, b):
    return scheme_eqv(a, b)


@_define("equal?", 2, returns_bool=True)
def _equal_p(a, b):
    return scheme_equal(a, b)


@_define("not", 1, returns_bool=True)
def _not(a):
    return a is False


@_define("boolean?", 1, returns_bool=True)
def _boolean_p(a):
    return isinstance(a, bool)


@_define("symbol?", 1, returns_bool=True)
def _symbol_p(a):
    return isinstance(a, Symbol)


@_define("number?", 1, returns_bool=True)
def _number_p(a):
    return not isinstance(a, bool) and isinstance(a, (int, float))


@_define("integer?", 1, returns_bool=True)
def _integer_p(a):
    return not isinstance(a, bool) and (
        isinstance(a, int) or (isinstance(a, float) and a.is_integer())
    )


@_define("real?", 1, returns_bool=True)
def _real_p(a):
    return not isinstance(a, bool) and isinstance(a, (int, float))


@_define("string?", 1, returns_bool=True)
def _string_p(a):
    return isinstance(a, MutableString)


@_define("char?", 1, returns_bool=True)
def _char_p(a):
    return isinstance(a, Char)


@_define("vector?", 1, returns_bool=True)
def _vector_p(a):
    return isinstance(a, list)


@_define("box?", 1, returns_bool=True)
def _box_p(a):
    return isinstance(a, Box)


@_define("procedure?", 1, returns_bool=True)
def _procedure_p(a):
    # Both the interpreter's and the VM's closure types define
    # ``scheme_procedure = True``.
    return getattr(a, "scheme_procedure", False)


# ---------------------------------------------------------------------------
# Vectors
# ---------------------------------------------------------------------------


@_define("make-vector", 2)
def _make_vector(n, fill):
    n = _want_int(n, "make-vector")
    if n < 0:
        raise SchemeError("make-vector: negative length", n)
    return [fill] * n


@_define("vector-ref", 2)
def _vector_ref(v, i):
    v = _want_vector(v, "vector-ref")
    i = _want_int(i, "vector-ref")
    if not 0 <= i < len(v):
        raise SchemeError("vector-ref: index out of range", i)
    return v[i]


@_define("vector-set!", 3, pure=False)
def _vector_set(v, i, x):
    v = _want_vector(v, "vector-set!")
    i = _want_int(i, "vector-set!")
    if not 0 <= i < len(v):
        raise SchemeError("vector-set!: index out of range", i)
    v[i] = x
    return UNSPECIFIED


@_define("vector-length", 1)
def _vector_length(v):
    return len(_want_vector(v, "vector-length"))


@_define("vector-fill!", 2, pure=False)
def _vector_fill(v, x):
    v = _want_vector(v, "vector-fill!")
    for i in range(len(v)):
        v[i] = x
    return UNSPECIFIED


# ---------------------------------------------------------------------------
# Strings, symbols, characters
# ---------------------------------------------------------------------------


@_define("string-length", 1)
def _string_length(s):
    return len(_want_string(s, "string-length"))


@_define("string-ref", 2)
def _string_ref(s, i):
    s = _want_string(s, "string-ref")
    i = _want_int(i, "string-ref")
    if not 0 <= i < len(s.chars):
        raise SchemeError("string-ref: index out of range", i)
    return Char(s.chars[i])


@_define("string-set!", 3, pure=False)
def _string_set(s, i, c):
    s = _want_string(s, "string-set!")
    i = _want_int(i, "string-set!")
    c = _want_char(c, "string-set!")
    if not 0 <= i < len(s.chars):
        raise SchemeError("string-set!: index out of range", i)
    s.chars[i] = c.value
    return UNSPECIFIED


@_define("make-string", 2)
def _make_string(n, c):
    n = _want_int(n, "make-string")
    c = _want_char(c, "make-string")
    return MutableString(c.value * n)


@_define("string-append", 2)
def _string_append(a, b):
    a = _want_string(a, "string-append")
    b = _want_string(b, "string-append")
    return MutableString(a.text + b.text)


@_define("string=?", 2, returns_bool=True)
def _string_eq(a, b):
    return _want_string(a, "string=?").chars == _want_string(b, "string=?").chars


@_define("string<?", 2, returns_bool=True)
def _string_lt(a, b):
    return _want_string(a, "string<?").text < _want_string(b, "string<?").text


@_define("substring", 3)
def _substring(s, start, end):
    s = _want_string(s, "substring")
    start = _want_int(start, "substring")
    end = _want_int(end, "substring")
    if not 0 <= start <= end <= len(s.chars):
        raise SchemeError("substring: bad range", (start, end))
    return MutableString("".join(s.chars[start:end]))


@_define("string->symbol", 1)
def _string_to_symbol(s):
    return Symbol(_want_string(s, "string->symbol").text)


@_define("symbol->string", 1)
def _symbol_to_string(s):
    return MutableString(_want_symbol(s, "symbol->string").name)


@_define("number->string", 1)
def _number_to_string(n):
    return MutableString(write_datum(_want_number(n, "number->string")))


@_define("string->list", 1)
def _string_to_list(s):
    s = _want_string(s, "string->list")
    result: Any = NIL
    for ch in reversed(s.chars):
        result = Pair(Char(ch), result)
    return result


@_define("char->integer", 1)
def _char_to_integer(c):
    return ord(_want_char(c, "char->integer").value)


@_define("integer->char", 1)
def _integer_to_char(n):
    n = _want_int(n, "integer->char")
    if not 0 <= n < 0x110000:
        raise SchemeError("integer->char: out of range", n)
    return Char(chr(n))


@_define("char=?", 2, returns_bool=True)
def _char_eq(a, b):
    return _want_char(a, "char=?") is _want_char(b, "char=?")


@_define("char<?", 2, returns_bool=True)
def _char_lt(a, b):
    return _want_char(a, "char<?").value < _want_char(b, "char<?").value


@_define("char-upcase", 1)
def _char_upcase(c):
    return Char(_want_char(c, "char-upcase").value.upper())


@_define("char-downcase", 1)
def _char_downcase(c):
    return Char(_want_char(c, "char-downcase").value.lower())


@_define("char-alphabetic?", 1, returns_bool=True)
def _char_alphabetic(c):
    return _want_char(c, "char-alphabetic?").value.isalpha()


@_define("char-numeric?", 1, returns_bool=True)
def _char_numeric(c):
    return _want_char(c, "char-numeric?").value.isdigit()


# ---------------------------------------------------------------------------
# Boxes (assignment conversion) and misc
# ---------------------------------------------------------------------------


@_define("box", 1)
def _box(x):
    return Box(x)


@_define("unbox", 1)
def _unbox(b):
    if not isinstance(b, Box):
        raise SchemeError("unbox: not a box", b)
    return b.value


@_define("set-box!", 2, pure=False)
def _set_box(b, x):
    if not isinstance(b, Box):
        raise SchemeError("set-box!: not a box", b)
    b.value = x
    return UNSPECIFIED


@_define("void", 0)
def _void():
    return UNSPECIFIED


@_define("error", 2, pure=False)
def _error(message, irritant):
    if isinstance(message, MutableString):
        text = message.text
    else:
        text = display_datum(message)
    raise SchemeError(text, irritant)


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------


@_define_port("display", 1)
def _display(port, x):
    port.emit(display_datum(x))
    return UNSPECIFIED


@_define_port("write", 1)
def _write(port, x):
    port.emit(write_datum(x))
    return UNSPECIFIED


@_define_port("newline", 0)
def _newline(port):
    port.emit("\n")
    return UNSPECIFIED
