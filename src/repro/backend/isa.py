"""The virtual machine's instruction set.

A deliberately RISC-like, load/store ISA: stack traffic is visible as
explicit ``ld``/``st`` instructions (each tagged with *why* it
happened), which is how the paper's "reduction in stack references"
metric is measured exactly.

Instructions are Python lists ``[op, ...operands]`` (lists, not tuples,
so the code generator can patch frame sizes after layout is final).
Registers are integer indices into the register file.

============  =========================================  =============
op            operands                                   effect
============  =========================================  =============
``li``        dst, value                                 dst <- constant
``mov``       dst, src                                   dst <- src
``swap``      ra, rb                                     ra <-> rb
``permi``     (r0, ..., rk-1)                            left-rotate registers
``ld``        dst, slot, kind                            dst <- stack[sp+slot]
``st``        slot, src, kind                            stack[sp+slot] <- src
``st_out``    offset, src, kind                          stack[sp+frame+offset] <- src
``prim``      dst, name, srcs                            dst <- prim(srcs); a src is a
                                                         register index or ``("imm", v)``
``closure``   dst, code, srcs                            dst <- closure(code, values)
``clo_alloc`` dst, code, nslots                          dst <- empty closure
``clo_set``   clo_src, index, src                        closure slot write
``clo_ref``   dst, index                                 dst <- cp-closure slot
``jmp``       pc                                         goto pc
``brf``       src, pc, prediction                        if src is #f goto pc
``call``      nargs, frame_size                          call closure in cp
``tailcall``  nargs                                      jump to closure in cp
``callcc``    frame_size                                 capture; call closure in cp
``return``    —                                          jump through ret
``halt``      —                                          stop; result in rv
============  =========================================  =============
"""

from __future__ import annotations

from typing import Any, List

OPCODES = (
    "li",
    "mov",
    "swap",
    "permi",
    "ld",
    "st",
    "st_out",
    "prim",
    "closure",
    "clo_alloc",
    "clo_set",
    "clo_ref",
    "jmp",
    "brf",
    "brt",
    "call",
    "tailcall",
    "callcc",
    "return",
    "halt",
)

#: Widest register list one ``permi`` accepts.  Longer cycles are
#: decomposed into overlap-by-one rotations (a k-cycle needs
#: ceil((k-1)/(PERMI_MAX-1)) permutation instructions).
PERMI_MAX = 4

# Stack-reference kinds, for the Table 3 accounting.
STACK_KINDS = (
    "save",      # register save (the paper's save expressions)
    "restore",   # register restore after a call
    "spill",     # variable without a register: its every access
    "arg",       # argument passed/read on the stack
    "temp",      # shuffle/complex-argument temporaries
)

# ---------------------------------------------------------------------------
# Structured ISA reference
# ---------------------------------------------------------------------------
#
# One entry per opcode, machine-readable: ``docs/isa.md`` is generated
# from this table (``python -m repro isa --markdown``; CI diffs the
# committed file against the generator's output), and the entries
# double as the authoritative statement of each opcode's cycle cost and
# counter effects.  Costs reference ``CostModel`` fields symbolically:
# every instruction charges 1 issue cycle, plus whatever its entry
# says.
ISA_SPEC = (
    {
        "op": "li",
        "operands": "dst, value",
        "effect": "dst ← constant",
        "cycles": "1",
        "counters": "—",
        "fused": "—",
    },
    {
        "op": "mov",
        "operands": "dst, src",
        "effect": "dst ← src",
        "cycles": "1",
        "counters": "moves +1",
        "fused": "movm (move chain)",
    },
    {
        "op": "swap",
        "operands": "ra, rb",
        "effect": "ra ↔ rb",
        "cycles": "1",
        "counters": "swaps +1",
        "fused": "—",
    },
    {
        "op": "permi",
        "operands": "(r0, ..., rk-1)",
        "effect": "left-rotate: r_i ← old r_(i+1), r_(k-1) ← old r_0",
        "cycles": "1",
        "counters": "swaps +1",
        "fused": "—",
    },
    {
        "op": "ld",
        "operands": "dst, slot, kind",
        "effect": "dst ← stack[sp+slot]",
        "cycles": "1 issue; dst ready after load_latency (readers stall)",
        "counters": "stack_reads[kind] +1",
        "fused": "ldm (load run), ldbrf/ldbrt (load-then-branch)",
    },
    {
        "op": "ld_out",
        "operands": "dst, offset, kind",
        "effect": "dst ← stack[sp+frame+offset]",
        "cycles": "1 issue; dst ready after load_latency (readers stall)",
        "counters": "stack_reads[kind] +1",
        "fused": "—",
    },
    {
        "op": "st",
        "operands": "slot, src, kind",
        "effect": "stack[sp+slot] ← src",
        "cycles": "store_cost",
        "counters": "stack_writes[kind] +1",
        "fused": "stm (store run)",
    },
    {
        "op": "st_out",
        "operands": "offset, src, kind",
        "effect": "stack[sp+frame+offset] ← src",
        "cycles": "store_cost",
        "counters": "stack_writes[kind] +1",
        "fused": "—",
    },
    {
        "op": "prim",
        "operands": "dst, name, srcs",
        "effect": "dst ← prim(srcs); a src is a register or (\"imm\", v)",
        "cycles": "1",
        "counters": "prim_calls +1",
        "fused": "—",
    },
    {
        "op": "closure",
        "operands": "dst, code, srcs",
        "effect": "dst ← closure(code, values)",
        "cycles": "1",
        "counters": "closure_allocs +1",
        "fused": "—",
    },
    {
        "op": "clo_alloc",
        "operands": "dst, code, nslots",
        "effect": "dst ← closure with empty slots (letrec cycles)",
        "cycles": "1",
        "counters": "closure_allocs +1",
        "fused": "—",
    },
    {
        "op": "clo_set",
        "operands": "clo_src, index, src",
        "effect": "closure slot write (letrec back-patching)",
        "cycles": "1",
        "counters": "—",
        "fused": "—",
    },
    {
        "op": "clo_ref",
        "operands": "dst, index",
        "effect": "dst ← cp-closure free-variable slot",
        "cycles": "1",
        "counters": "—",
        "fused": "—",
    },
    {
        "op": "jmp",
        "operands": "pc",
        "effect": "goto pc",
        "cycles": "1",
        "counters": "—",
        "fused": "—",
    },
    {
        "op": "brf",
        "operands": "src, pc, prediction",
        "effect": "if src is #f goto pc",
        "cycles": "1; +branch_mispredict_penalty when predicted wrong",
        "counters": "branches +1; mispredicts +1 on mispredict",
        "fused": "ldbrf (load-then-branch)",
    },
    {
        "op": "brt",
        "operands": "src, pc, prediction",
        "effect": "if src is not #f goto pc",
        "cycles": "1; +branch_mispredict_penalty when predicted wrong",
        "counters": "branches +1; mispredicts +1 on mispredict",
        "fused": "ldbrt (load-then-branch)",
    },
    {
        "op": "call",
        "operands": "nargs, frame_size",
        "effect": "push frame, call closure in cp; ret ← return address",
        "cycles": "1 + call_overhead",
        "counters": "calls +1 (continuations_invoked +1 when cp is a continuation)",
        "fused": "—",
    },
    {
        "op": "tailcall",
        "operands": "nargs",
        "effect": "jump to closure in cp, reusing the frame",
        "cycles": "1 + call_overhead",
        "counters": "tail_calls +1 (continuations_invoked +1 for continuations)",
        "fused": "—",
    },
    {
        "op": "callcc",
        "operands": "frame_size",
        "effect": "capture continuation, call closure in cp with it",
        "cycles": "1 + call_overhead",
        "counters": "calls +1, continuations_captured +1",
        "fused": "—",
    },
    {
        "op": "return",
        "operands": "—",
        "effect": "pop frame, jump through ret; result in rv",
        "cycles": "1",
        "counters": "—",
        "fused": "—",
    },
    {
        "op": "halt",
        "operands": "—",
        "effect": "stop; result in rv",
        "cycles": "1",
        "counters": "—",
        "fused": "—",
    },
)

# The peephole pass's superinstructions (repro.backend.peephole).  Each
# executes as its exact component sequence: cycle and counter effects
# are the sum of the parts, so fusion is invisible to every metric.
FUSED_SPEC = (
    {
        "op": "movm",
        "operands": "((dst, src), ...)",
        "components": "mov × n",
        "origin": "register shuffle sequences at call sites",
    },
    {
        "op": "stm",
        "operands": "((slot, src, kind), ...)",
        "components": "st × n",
        "origin": "save runs (the paper's lazy save expressions)",
    },
    {
        "op": "ldm",
        "operands": "((dst, slot, kind), ...)",
        "components": "ld × n",
        "origin": "restore runs (eager restores after a call)",
    },
    {
        "op": "ldbrf / ldbrt",
        "operands": "dst, slot, kind, src, pc, prediction",
        "components": "ld ; brf/brt",
        "origin": "a restore immediately tested by a branch",
    },
)


def isa_markdown() -> str:
    """Render the ISA reference as the ``docs/isa.md`` document.

    CI regenerates this and diffs it against the committed file, so the
    doc cannot drift from :data:`ISA_SPEC`.
    """
    lines = [
        "# VM instruction set",
        "",
        "<!-- Generated by `python -m repro isa --markdown` from",
        "     src/repro/backend/isa.py (ISA_SPEC).  Do not edit by hand:",
        "     CI regenerates this file and fails on any difference. -->",
        "",
        "A load/store ISA in which stack traffic is explicit: every",
        "`ld`/`st` is tagged with *why* it happened (`"
        + "`, `".join(STACK_KINDS)
        + "`),",
        "which is how the paper's stack-reference metric is measured",
        "exactly.  Every instruction charges one issue cycle; the",
        "**cycles** column lists any extra cost, in terms of the",
        "`CostModel` fields (`load_latency`, `store_cost`,",
        "`call_overhead`, `branch_mispredict_penalty`).",
        "",
        "## Opcodes",
        "",
        "| op | operands | effect | cycles | counter effects | fused variants |",
        "|---|---|---|---|---|---|",
    ]
    for entry in ISA_SPEC:
        lines.append(
            "| `{op}` | {operands} | {effect} | {cycles} | {counters} | {fused} |".format(
                **entry
            )
        )
    lines += [
        "",
        "## Superinstructions",
        "",
        "The peephole pass (`repro.backend.peephole.fuse_superinstructions`)",
        "collapses common sequences into *superinstructions* consumed by the",
        "fast path's pre-decoder.  Each executes as its exact component",
        "sequence — cycles, counters, and profiles are the sum of the parts,",
        "so fusion is invisible to every metric (asserted by",
        "`tests/vm/test_predecode_equiv.py`).",
        "",
        "| op | operands | components | typical origin |",
        "|---|---|---|---|",
    ]
    for entry in FUSED_SPEC:
        lines.append(
            "| `{op}` | {operands} | {components} | {origin} |".format(**entry)
        )
    lines += [
        "",
        "## Stack-reference kinds",
        "",
        "| kind | meaning |",
        "|---|---|",
        "| `save` | register save (the paper's save expressions) |",
        "| `restore` | register restore after a call |",
        "| `spill` | variable without a register: its every access |",
        "| `arg` | argument passed/read on the stack |",
        "| `temp` | shuffle/complex-argument temporaries |",
        "",
    ]
    return "\n".join(lines)


def format_instruction(instr: List[Any], regnames: List[str]) -> str:
    """Human-readable rendering of one instruction (for tests/docs)."""
    op = instr[0]
    def reg(i: int) -> str:
        return "%" + regnames[i]

    if op == "li":
        return f"li {reg(instr[1])}, {instr[2]!r}"
    if op == "mov":
        return f"mov {reg(instr[1])}, {reg(instr[2])}"
    if op == "swap":
        return f"swap {reg(instr[1])}, {reg(instr[2])}"
    if op == "permi":
        return "permi (" + ", ".join(reg(r) for r in instr[1]) + ")"
    if op == "ld":
        return f"ld {reg(instr[1])}, fv{instr[2]}  ; {instr[3]}"
    if op == "st":
        return f"st fv{instr[1]}, {reg(instr[2])}  ; {instr[3]}"
    if op == "st_out":
        return f"st out+{instr[1]}, {reg(instr[2])}  ; {instr[3]}"
    if op == "prim":
        srcs = ", ".join(
            repr(s[1]) if isinstance(s, tuple) else reg(s) for s in instr[3]
        )
        return f"prim {reg(instr[1])}, {instr[2]}({srcs})"
    if op == "closure":
        srcs = ", ".join(reg(s) for s in instr[3])
        return f"closure {reg(instr[1])}, {instr[2].label}({srcs})"
    if op == "clo_alloc":
        return f"clo_alloc {reg(instr[1])}, {instr[2].label}, {instr[3]}"
    if op == "clo_set":
        return f"clo_set {reg(instr[1])}[{instr[2]}], {reg(instr[3])}"
    if op == "clo_ref":
        return f"clo_ref {reg(instr[1])}, cp[{instr[2]}]"
    if op == "jmp":
        return f"jmp {instr[1]}"
    if op in ("brf", "brt"):
        pred = f"  ; predict {instr[3]}" if instr[3] else ""
        return f"{op} {reg(instr[1])}, {instr[2]}{pred}"
    if op == "call":
        return f"call nargs={instr[1]}"
    if op == "tailcall":
        return f"tailcall nargs={instr[1]}"
    if op == "callcc":
        return "callcc"
    if op in ("return", "halt"):
        return op
    return repr(instr)


def format_code(code, regnames: List[str]) -> str:
    """Disassemble a compiled code object."""
    lines = [f"{code.label}: params={len(code.params)} frame={code.frame_size}"]
    for pc, instr in enumerate(code.instructions or []):
        lines.append(f"  {pc:4d}  {format_instruction(instr, regnames)}")
    return "\n".join(lines)
