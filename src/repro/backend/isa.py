"""The virtual machine's instruction set.

A deliberately RISC-like, load/store ISA: stack traffic is visible as
explicit ``ld``/``st`` instructions (each tagged with *why* it
happened), which is how the paper's "reduction in stack references"
metric is measured exactly.

Instructions are Python lists ``[op, ...operands]`` (lists, not tuples,
so the code generator can patch frame sizes after layout is final).
Registers are integer indices into the register file.

============  =========================================  =============
op            operands                                   effect
============  =========================================  =============
``li``        dst, value                                 dst <- constant
``mov``       dst, src                                   dst <- src
``ld``        dst, slot, kind                            dst <- stack[sp+slot]
``st``        slot, src, kind                            stack[sp+slot] <- src
``st_out``    offset, src, kind                          stack[sp+frame+offset] <- src
``prim``      dst, name, srcs                            dst <- prim(srcs); a src is a
                                                         register index or ``("imm", v)``
``closure``   dst, code, srcs                            dst <- closure(code, values)
``clo_alloc`` dst, code, nslots                          dst <- empty closure
``clo_set``   clo_src, index, src                        closure slot write
``clo_ref``   dst, index                                 dst <- cp-closure slot
``jmp``       pc                                         goto pc
``brf``       src, pc, prediction                        if src is #f goto pc
``call``      nargs, frame_size                          call closure in cp
``tailcall``  nargs                                      jump to closure in cp
``callcc``    frame_size                                 capture; call closure in cp
``return``    —                                          jump through ret
``halt``      —                                          stop; result in rv
============  =========================================  =============
"""

from __future__ import annotations

from typing import Any, List

OPCODES = (
    "li",
    "mov",
    "ld",
    "st",
    "st_out",
    "prim",
    "closure",
    "clo_alloc",
    "clo_set",
    "clo_ref",
    "jmp",
    "brf",
    "brt",
    "call",
    "tailcall",
    "callcc",
    "return",
    "halt",
)

# Stack-reference kinds, for the Table 3 accounting.
STACK_KINDS = (
    "save",      # register save (the paper's save expressions)
    "restore",   # register restore after a call
    "spill",     # variable without a register: its every access
    "arg",       # argument passed/read on the stack
    "temp",      # shuffle/complex-argument temporaries
)


def format_instruction(instr: List[Any], regnames: List[str]) -> str:
    """Human-readable rendering of one instruction (for tests/docs)."""
    op = instr[0]
    def reg(i: int) -> str:
        return "%" + regnames[i]

    if op == "li":
        return f"li {reg(instr[1])}, {instr[2]!r}"
    if op == "mov":
        return f"mov {reg(instr[1])}, {reg(instr[2])}"
    if op == "ld":
        return f"ld {reg(instr[1])}, fv{instr[2]}  ; {instr[3]}"
    if op == "st":
        return f"st fv{instr[1]}, {reg(instr[2])}  ; {instr[3]}"
    if op == "st_out":
        return f"st out+{instr[1]}, {reg(instr[2])}  ; {instr[3]}"
    if op == "prim":
        srcs = ", ".join(
            repr(s[1]) if isinstance(s, tuple) else reg(s) for s in instr[3]
        )
        return f"prim {reg(instr[1])}, {instr[2]}({srcs})"
    if op == "closure":
        srcs = ", ".join(reg(s) for s in instr[3])
        return f"closure {reg(instr[1])}, {instr[2].label}({srcs})"
    if op == "clo_alloc":
        return f"clo_alloc {reg(instr[1])}, {instr[2].label}, {instr[3]}"
    if op == "clo_set":
        return f"clo_set {reg(instr[1])}[{instr[2]}], {reg(instr[3])}"
    if op == "clo_ref":
        return f"clo_ref {reg(instr[1])}, cp[{instr[2]}]"
    if op == "jmp":
        return f"jmp {instr[1]}"
    if op in ("brf", "brt"):
        pred = f"  ; predict {instr[3]}" if instr[3] else ""
        return f"{op} {reg(instr[1])}, {instr[2]}{pred}"
    if op == "call":
        return f"call nargs={instr[1]}"
    if op == "tailcall":
        return f"tailcall nargs={instr[1]}"
    if op == "callcc":
        return "callcc"
    if op in ("return", "halt"):
        return op
    return repr(instr)


def format_code(code, regnames: List[str]) -> str:
    """Disassemble a compiled code object."""
    lines = [f"{code.label}: params={len(code.params)} frame={code.frame_size}"]
    for pc, instr in enumerate(code.instructions or []):
        lines.append(f"  {pc:4d}  {format_instruction(instr, regnames)}")
    return "\n".join(lines)
