"""Peephole optimization over the linear instruction stream.

Run after code generation (the paper's backend similarly cleans up the
straightforward translation).  Three rewrites, iterated to fixpoint:

* **jump threading** — a branch or jump whose target is a ``jmp``
  follows it to the final destination;
* **jump-to-next elimination** — ``jmp`` to the fall-through address is
  deleted;
* **return threading** — a ``jmp`` to a ``return`` becomes the
  ``return`` itself (saves the indirection on branchy epilogues).

None of these touch stack references, so the Table 3 metric is
unaffected; they shave pure control-flow overhead.

A fourth, separate rewrite — :func:`fuse_superinstructions` — collapses
the idioms this allocator emits in bulk (move chains from greedy
shuffling, save/restore runs around calls, load-then-branch) into
*superinstructions*.  Fusion is a pure function over the instruction
list: it never mutates its input, and a fused op is executed as the
exact sequence of its components (same instruction count, cycles, and
stack-reference counters), so every paper metric is bit-identical.  It
is applied by the pre-decoder (``repro.vm.predecode``) on the VM fast
path, not to ``code.instructions`` itself — the symbolic stream stays
canonical for the disassembler and the legacy dispatch loop.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from repro.astnodes import CodeObject

_BRANCH_OPS = {"jmp": 1, "brf": 2, "brt": 2}

# Superinstruction forms produced by fuse_superinstructions:
#   ["movm", ((dst, src), ...)]          — a register move chain
#   ["stm",  ((slot, src, kind), ...)]   — a store run (e.g. lazy saves)
#   ["ldm",  ((dst, slot, kind), ...)]   — a load run (e.g. eager restores)
#   ["ldbr", dst, slot, kind, brop, pc]  — load immediately tested by a branch
FUSED_OPS = ("movm", "stm", "ldm", "ldbr")

# Ops whose consecutive runs are collapsed into one superinstruction.
_RUN_OPS = {"mov": "movm", "st": "stm", "ld": "ldm"}


def peephole_code(code: CodeObject) -> int:
    """Optimize one code object in place; returns instructions removed."""
    instrs = code.instructions
    if not instrs:
        return 0
    before = len(instrs)
    changed = True
    while changed:
        changed = False
        changed |= _thread_jumps(instrs)
        changed |= _drop_dead_jumps(instrs)
    code.instructions = instrs
    return before - len(code.instructions)


def _final_target(instrs: List[List[Any]], pc: int, fuel: int = 64) -> int:
    """Follow chains of unconditional jumps from *pc*."""
    while fuel > 0 and pc < len(instrs) and instrs[pc][0] == "jmp":
        nxt = instrs[pc][1]
        if nxt == pc:  # pragma: no cover - self loop, leave alone
            break
        pc = nxt
        fuel -= 1
    return pc


def _thread_jumps(instrs: List[List[Any]]) -> bool:
    changed = False
    for pc, instr in enumerate(instrs):
        op = instr[0]
        slot = _BRANCH_OPS.get(op)
        if slot is None:
            continue
        target = instr[slot]
        final = _final_target(instrs, target)
        if final != target:
            instr[slot] = final
            changed = True
        # jmp -> return becomes return
        if (
            op == "jmp"
            and instr[1] < len(instrs)
            and instrs[instr[1]][0] == "return"
        ):
            instrs[pc] = ["return"]
            changed = True
    return changed


def _drop_dead_jumps(instrs: List[List[Any]]) -> bool:
    """Delete ``jmp`` instructions to the immediately following pc and
    renumber every branch target."""
    dead = [
        pc
        for pc, instr in enumerate(instrs)
        if instr[0] == "jmp" and instr[1] == pc + 1
    ]
    if not dead:
        return False
    remap: Dict[int, int] = {}
    removed = 0
    dead_set = set(dead)
    for pc in range(len(instrs) + 1):
        remap[pc] = pc - removed
        if pc in dead_set:
            removed += 1
    new_instrs = [
        instr for pc, instr in enumerate(instrs) if pc not in dead_set
    ]
    for instr in new_instrs:
        slot = _BRANCH_OPS.get(instr[0])
        if slot is not None:
            instr[slot] = remap[instr[slot]]
    instrs[:] = new_instrs
    return True


def peephole_program(codes: List[CodeObject]) -> int:
    """Optimize every code object; returns total instructions removed."""
    return sum(peephole_code(code) for code in codes)


# ---------------------------------------------------------------------------
# Superinstruction fusion (the VM fast path's second layer)
# ---------------------------------------------------------------------------


def branch_targets(instrs: List[List[Any]]) -> Set[int]:
    """Every pc that a ``jmp``/``brf``/``brt`` can transfer to.

    Return addresses (the pc after a ``call``/``callcc``) need no entry:
    the preceding instruction is the call itself, which is never part of
    a fusable run, so a fused run can only *start* at such a pc — and
    starting at a join point is always safe.
    """
    targets: Set[int] = set()
    for instr in instrs:
        slot = _BRANCH_OPS.get(instr[0])
        if slot is not None:
            targets.add(instr[slot])
    return targets


def fuse_superinstructions(instrs: List[List[Any]]) -> List[List[Any]]:
    """Collapse fusable idioms into superinstructions.

    Returns a *new* instruction list (the input is not mutated) in which

    * runs of ≥2 consecutive ``mov``/``st``/``ld`` become one
      ``movm``/``stm``/``ldm`` carrying the component operand tuples, and
    * a lone ``ld`` whose value is immediately tested by the following
      ``brf``/``brt`` becomes one ``ldbr``.

    A run never extends *through* a branch target (a jump may not land
    inside a superinstruction); branch targets are renumbered for the
    shorter stream.  Executing a fused op is defined as executing its
    components in sequence, so ``instructions``, ``cycles`` and every
    stack-reference counter are conserved exactly.
    """
    n = len(instrs)
    if n == 0:
        return []
    targets = branch_targets(instrs)
    fused: List[List[Any]] = []
    new_pc: Dict[int, int] = {}
    pc = 0
    while pc < n:
        new_pc[pc] = len(fused)
        instr = instrs[pc]
        op = instr[0]
        fused_name = _RUN_OPS.get(op)
        if fused_name is not None:
            end = pc + 1
            while end < n and instrs[end][0] == op and end not in targets:
                end += 1
            if end - pc >= 2:
                if op == "mov":
                    items = tuple((i[1], i[2]) for i in instrs[pc:end])
                else:  # st: (slot, src, kind); ld: (dst, slot, kind)
                    items = tuple((i[1], i[2], i[3]) for i in instrs[pc:end])
                fused.append([fused_name, items])
                pc = end
                continue
            if op == "ld" and pc + 1 < n and pc + 1 not in targets:
                nxt = instrs[pc + 1]
                if nxt[0] in ("brf", "brt") and nxt[1] == instr[1]:
                    fused.append(
                        ["ldbr", instr[1], instr[2], instr[3], nxt[0], nxt[2]]
                    )
                    pc += 2
                    continue
        fused.append(instr)
        pc += 1
    new_pc[n] = len(fused)

    renumbered: List[List[Any]] = []
    for instr in fused:
        op = instr[0]
        slot = _BRANCH_OPS.get(op)
        if slot is not None:
            instr = list(instr)
            instr[slot] = new_pc[instr[slot]]
        elif op == "ldbr":
            instr = list(instr)
            instr[5] = new_pc[instr[5]]
        renumbered.append(instr)
    return renumbered
