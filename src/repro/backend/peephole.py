"""Peephole optimization over the linear instruction stream.

Run after code generation (the paper's backend similarly cleans up the
straightforward translation).  Three rewrites, iterated to fixpoint:

* **jump threading** — a branch or jump whose target is a ``jmp``
  follows it to the final destination;
* **jump-to-next elimination** — ``jmp`` to the fall-through address is
  deleted;
* **return threading** — a ``jmp`` to a ``return`` becomes the
  ``return`` itself (saves the indirection on branchy epilogues).

None of these touch stack references, so the Table 3 metric is
unaffected; they shave pure control-flow overhead.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.astnodes import CodeObject

_BRANCH_OPS = {"jmp": 1, "brf": 2, "brt": 2}


def peephole_code(code: CodeObject) -> int:
    """Optimize one code object in place; returns instructions removed."""
    instrs = code.instructions
    if not instrs:
        return 0
    before = len(instrs)
    changed = True
    while changed:
        changed = False
        changed |= _thread_jumps(instrs)
        changed |= _drop_dead_jumps(instrs)
    code.instructions = instrs
    return before - len(code.instructions)


def _final_target(instrs: List[List[Any]], pc: int, fuel: int = 64) -> int:
    """Follow chains of unconditional jumps from *pc*."""
    while fuel > 0 and pc < len(instrs) and instrs[pc][0] == "jmp":
        nxt = instrs[pc][1]
        if nxt == pc:  # pragma: no cover - self loop, leave alone
            break
        pc = nxt
        fuel -= 1
    return pc


def _thread_jumps(instrs: List[List[Any]]) -> bool:
    changed = False
    for pc, instr in enumerate(instrs):
        op = instr[0]
        slot = _BRANCH_OPS.get(op)
        if slot is None:
            continue
        target = instr[slot]
        final = _final_target(instrs, target)
        if final != target:
            instr[slot] = final
            changed = True
        # jmp -> return becomes return
        if (
            op == "jmp"
            and instr[1] < len(instrs)
            and instrs[instr[1]][0] == "return"
        ):
            instrs[pc] = ["return"]
            changed = True
    return changed


def _drop_dead_jumps(instrs: List[List[Any]]) -> bool:
    """Delete ``jmp`` instructions to the immediately following pc and
    renumber every branch target."""
    dead = [
        pc
        for pc, instr in enumerate(instrs)
        if instr[0] == "jmp" and instr[1] == pc + 1
    ]
    if not dead:
        return False
    remap: Dict[int, int] = {}
    removed = 0
    dead_set = set(dead)
    for pc in range(len(instrs) + 1):
        remap[pc] = pc - removed
        if pc in dead_set:
            removed += 1
    new_instrs = [
        instr for pc, instr in enumerate(instrs) if pc not in dead_set
    ]
    for instr in new_instrs:
        slot = _BRANCH_OPS.get(instr[0])
        if slot is not None:
            instr[slot] = remap[instr[slot]]
    instrs[:] = new_instrs
    return True


def peephole_program(codes: List[CodeObject]) -> int:
    """Optimize every code object; returns total instructions removed."""
    return sum(peephole_code(code) for code in codes)
