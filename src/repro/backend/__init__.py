"""Back end: linear ISA and the code generator."""

from repro.backend.isa import OPCODES, format_instruction, format_code
from repro.backend.codegen import generate_program, CompiledProgram

__all__ = [
    "OPCODES",
    "format_instruction",
    "format_code",
    "generate_program",
    "CompiledProgram",
]
