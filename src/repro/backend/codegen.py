"""Code generation from the allocated AST to VM instructions.

Responsibilities beyond straightforward translation:

* **Local register allocation** (the paper's baseline includes "local
  register allocation performed by the code generator"): expression
  temporaries use registers not claimed by variables, spilling to frame
  temp slots only when the pool runs dry or a value must survive a call.
* **Executing shuffle plans** at each call site, including temporaries
  for complex operands and cycle evictions.
* **Restore discipline**: eager mode emits the pass-2 restore sets
  right after each call; lazy mode tracks per-path register staleness
  and reloads at first use and at save-region exits (Figure 2c).
* **Callee-save regions** (§2.4): saving at region entry, restoring at
  every frame exit (returns and tail calls).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.astnodes import (
    Call,
    CallCC,
    ClosureRef,
    CodeObject,
    Expr,
    Fix,
    If,
    Let,
    MakeClosure,
    PrimCall,
    Program,
    Quote,
    Ref,
    Save,
    Seq,
    Var,
)
from repro.backend.isa import PERMI_MAX
from repro.config import CompilerConfig
from repro.core.allocator import ProgramAllocation
from repro.core.liveness import CodeAllocation
from repro.core.locations import FrameSlot
from repro.core.registers import Register
from repro.core.shuffle import ShuffleItem, ShufflePlan, contains_call
from repro.errors import CompilerError


class CompiledProgram:
    """A fully compiled program, ready for the VM."""

    def __init__(
        self,
        program: Program,
        allocation: ProgramAllocation,
        config: CompilerConfig,
    ) -> None:
        self.program = program
        self.allocation = allocation
        self.config = config
        self.regfile = allocation.regfile
        self.entry = program.entry
        # Instructions removed by the peephole pass (set by
        # generate_program; a per-pass stat for repro.observe).
        self.peephole_removed = 0

    @property
    def codes(self) -> List[CodeObject]:
        return self.program.codes

    def total_instructions(self) -> int:
        return sum(len(c.instructions or ()) for c in self.codes)


def generate_program(
    program: Program, allocation: ProgramAllocation, config: CompilerConfig
) -> CompiledProgram:
    for code in program.codes:
        _CodeGenerator(code, allocation.alloc_for(code), config).generate()
    removed = 0
    if config.peephole:
        from repro.backend.peephole import peephole_program

        removed = peephole_program(program.codes)
    compiled = CompiledProgram(program, allocation, config)
    compiled.peephole_removed = removed
    return compiled


class _TempSlots:
    """A reusable pool of frame temp slots."""

    def __init__(self, alloc: CodeAllocation) -> None:
        self.alloc = alloc
        self.free: List[FrameSlot] = []

    def acquire(self) -> FrameSlot:
        if self.free:
            return self.free.pop()
        return self.alloc.layout.alloc("temp")

    def release(self, slot: FrameSlot) -> None:
        self.free.append(slot)


class _Scratch:
    """Expression-temporary registers: the registers no variable owns."""

    def __init__(self, pool: Sequence[Register]) -> None:
        self.pool = list(pool)
        self.in_use: Set[Register] = set()

    def acquire(
        self, reserved: Set[Register], keep_free: int = 0
    ) -> Optional[Register]:
        available = [
            reg
            for reg in self.pool
            if reg not in self.in_use and reg not in reserved
        ]
        if len(available) <= keep_free:
            return None
        reg = available[0]
        self.in_use.add(reg)
        return reg

    def release(self, reg: Register) -> None:
        self.in_use.discard(reg)


class _CodeGenerator:
    def __init__(
        self, code: CodeObject, alloc: CodeAllocation, config: CompilerConfig
    ) -> None:
        self.code = code
        self.alloc = alloc
        self.config = config
        self.regfile = alloc.regfile
        self.instrs: List[List[Any]] = []
        self.temp_slots = _TempSlots(alloc)
        owned = {
            v.location
            for v in alloc.register_vars
            if isinstance(v.location, Register)
        }
        # rv is deliberately NOT pooled: it is the emergency conduit
        # register every transient use can fall back on (its value is
        # always consumed by the immediately following instruction).
        # Callee-save registers never enter the pool: save placement
        # only wraps callee regions around *variable* homes, so a
        # scratch write to one would silently clobber a caller's
        # variable that the callee convention promises to preserve.
        pool = [
            r
            for r in (
                *self.regfile.scratch_regs,
                *self.regfile.temp_regs,
                *self.regfile.arg_regs,
            )
            if r not in owned and not r.callee_save
        ]
        self.scratch = _Scratch(pool)
        self.reserved: Set[Register] = set()
        self.active_callee: List[List[Tuple[Register, FrameSlot]]] = []
        # Variables whose register contents are stale on some path.
        self.invalid: Set[Var] = set()
        self.lazy_restores = config.restore_strategy == "lazy"

    # ------------------------------------------------------------------

    def generate(self) -> None:
        self.gen_tail(self.code.body)
        self.code.frame_size = self.alloc.layout.size
        self.code.instructions = self.instrs

    def emit(self, *instr: Any) -> int:
        self.instrs.append(list(instr))
        return len(self.instrs) - 1

    @property
    def pc(self) -> int:
        return len(self.instrs)

    # -- variable access ----------------------------------------------------

    def use_var(self, var: Var) -> int:
        """Register index of *var*, reloading its home first if its
        register may be stale."""
        loc = var.location
        if not isinstance(loc, Register):
            raise CompilerError(f"use_var on non-register variable {var!r}")
        if var in self.invalid:
            if var.home is None:
                raise CompilerError(
                    f"{var!r} is stale but was never saved — allocator bug"
                )
            self.emit("ld", loc.index, var.home.index, "restore")
            self.invalid.discard(var)
        return loc.index

    def _slot_kind(self, slot: FrameSlot) -> str:
        return "arg" if slot.index < self.alloc.layout.incoming_stack_args else "spill"

    # -- generic value generation -------------------------------------------

    def gen_into(self, expr: Expr, dst: Register) -> None:
        """Emit code leaving the value of *expr* in register *dst*."""
        if isinstance(expr, Quote):
            self.emit("li", dst.index, expr.value)
        elif isinstance(expr, Ref):
            var = expr.var
            if isinstance(var.location, Register):
                src = self.use_var(var)
                if src != dst.index:
                    self.emit("mov", dst.index, src)
            else:
                self.emit("ld", dst.index, var.location.index, self._slot_kind(var.location))
        elif isinstance(expr, ClosureRef):
            self.use_var(self.alloc.cp_var)
            self.emit("clo_ref", dst.index, expr.index)
        elif isinstance(expr, PrimCall):
            self.gen_primcall(expr, dst)
        elif isinstance(expr, If):
            self.gen_if(expr, tail=False, dst=dst)
        elif isinstance(expr, Seq):
            for sub in expr.exprs[:-1]:
                self.gen_effect(sub)
            self.gen_into(expr.exprs[-1], dst)
        elif isinstance(expr, Let):
            self.gen_let_binding(expr)
            self.gen_into(expr.body, dst)
        elif isinstance(expr, Save):
            self.gen_save_entry(expr, tail=False)
            if self.lazy_restores and self._save_exit_may_reload(expr, dst):
                # The Figure 2c region-exit flush may reload a variable
                # whose register is *dst* — it must not clobber the
                # region's value, so the value waits in rv until the
                # flush has run.
                rv = self.regfile.rv
                self.gen_into(expr.body, rv)
                self.gen_save_exit(expr, tail=False)
                if dst is not rv:
                    self.emit("mov", dst.index, rv.index)
            else:
                self.gen_into(expr.body, dst)
                self.gen_save_exit(expr, tail=False)
        elif isinstance(expr, Fix):
            self.gen_fix_bindings(expr)
            self.gen_into(expr.body, dst)
        elif isinstance(expr, Call):
            self.gen_call(expr)
            if dst is not self.regfile.rv:
                self.emit("mov", dst.index, self.regfile.rv.index)
        elif isinstance(expr, MakeClosure):
            self.gen_make_closure(expr, dst)
        else:
            raise CompilerError(f"codegen: unexpected node {type(expr).__name__}")

    def gen_effect(self, expr: Expr) -> None:
        """Evaluate *expr* for effect only."""
        if isinstance(expr, (Quote, Ref, ClosureRef)):
            return
        if isinstance(expr, Seq):
            for sub in expr.exprs:
                self.gen_effect(sub)
            return
        if isinstance(expr, Let):
            self.gen_let_binding(expr)
            self.gen_effect(expr.body)
            return
        if isinstance(expr, Save):
            self.gen_save_entry(expr, tail=False)
            self.gen_effect(expr.body)
            self.gen_save_exit(expr, tail=False)
            return
        if isinstance(expr, Call):
            self.gen_call(expr)
            return
        with self._scratch_reg() as reg:
            self.gen_into(expr, reg)

    # -- tail positions -------------------------------------------------------

    def gen_tail(self, expr: Expr) -> None:
        """Emit code for *expr* in tail position, ending with a frame
        exit (return or tail call) on every path."""
        if isinstance(expr, Call) and expr.tail:
            self.gen_tailcall(expr)
            return
        if isinstance(expr, If):
            self.gen_if(expr, tail=True, dst=None)
            return
        if isinstance(expr, Seq):
            for sub in expr.exprs[:-1]:
                self.gen_effect(sub)
            self.gen_tail(expr.exprs[-1])
            return
        if isinstance(expr, Let):
            self.gen_let_binding(expr)
            self.gen_tail(expr.body)
            return
        if isinstance(expr, Save):
            self.gen_save_entry(expr, tail=True)
            self.gen_tail(expr.body)
            self.gen_save_exit(expr, tail=True)
            return
        if isinstance(expr, Fix):
            self.gen_fix_bindings(expr)
            self.gen_tail(expr.body)
            return
        # Value-producing expression: compute into rv and return.
        self.gen_into(expr, self.regfile.rv)
        self.gen_return()

    def gen_return(self) -> None:
        self._emit_callee_exit_restores()
        if self.config.save_convention != "callee":
            self.use_var(self.alloc.ret_var)
        self.emit("return")

    def _emit_callee_exit_restores(self) -> None:
        for region in reversed(self.active_callee):
            for reg, slot in reversed(region):
                self.emit("ld", reg.index, slot.index, "restore")

    # -- binding forms --------------------------------------------------------

    def gen_let_binding(self, expr: Let) -> None:
        var = expr.var
        if isinstance(var.location, Register):
            self.gen_into(expr.rhs, var.location)
            self.invalid.discard(var)
        else:
            with self._scratch_reg() as reg:
                self.gen_into(expr.rhs, reg)
                self.emit("st", var.location.index, reg.index, "spill")

    def gen_fix_bindings(self, expr: Fix) -> None:
        """Allocate all closures, then fill their slots (cycles OK)."""
        for var, mc in zip(expr.vars, expr.lambdas):
            assert isinstance(mc, MakeClosure)
            if isinstance(var.location, Register):
                self.emit("clo_alloc", var.location.index, mc.code, len(mc.free_exprs))
                self.invalid.discard(var)
            else:
                with self._scratch_reg() as reg:
                    self.emit("clo_alloc", reg.index, mc.code, len(mc.free_exprs))
                    self.emit("st", var.location.index, reg.index, "spill")
        for var, mc in zip(expr.vars, expr.lambdas):
            if not mc.free_exprs:
                continue
            with self._scratch_reg() as clo_reg_h:
                if isinstance(var.location, Register):
                    clo_reg = self.use_var(var)
                else:
                    self.emit(
                        "ld", clo_reg_h.index, var.location.index, "spill"
                    )
                    clo_reg = clo_reg_h.index
                for idx, fe in enumerate(mc.free_exprs):
                    src, release = self._operand_register(fe)
                    self.emit("clo_set", clo_reg, idx, src)
                    if release is not None:
                        self.scratch.release(release)

    def gen_make_closure(self, expr: MakeClosure, dst: Register) -> None:
        """Allocate a closure.  The one-shot ``closure`` instruction
        needs every captured value in a register simultaneously; under
        register pressure we fall back to ``clo_alloc`` + per-slot
        ``clo_set`` (one value at a time)."""
        needs = sum(
            1
            for fe in expr.free_exprs
            if not (isinstance(fe, Ref) and isinstance(fe.var.location, Register))
        )
        free_now = len(
            [
                r
                for r in self.scratch.pool
                if r not in self.scratch.in_use and r not in self.reserved
            ]
        )
        if needs > free_now:
            # Build through rv: the captured values may be read through
            # cp (ClosureRef) or live in dst itself, so dst must not be
            # written until every slot value has been fetched.
            rv = self.regfile.rv
            self.emit("clo_alloc", rv.index, expr.code, len(expr.free_exprs))
            for idx, fe in enumerate(expr.free_exprs):
                src, release = self._operand_register(fe)
                self.emit("clo_set", rv.index, idx, src)
                if release is not None:
                    self.scratch.release(release)
            if dst is not rv:
                self.emit("mov", dst.index, rv.index)
            return
        srcs: List[int] = []
        releases: List[Register] = []
        for fe in expr.free_exprs:
            src, release = self._operand_register(fe)
            srcs.append(src)
            if release is not None:
                releases.append(release)
        self.emit("closure", dst.index, expr.code, srcs)
        for reg in releases:
            self.scratch.release(reg)

    def _operand_register(self, expr: Expr) -> Tuple[int, Optional[Register]]:
        """Materialize a Ref/ClosureRef into a register; returns the
        register index and a scratch register to release, if any."""
        if isinstance(expr, Ref):
            var = expr.var
            if isinstance(var.location, Register):
                return self.use_var(var), None
            reg = self._acquire_scratch()
            self.emit("ld", reg.index, var.location.index, self._slot_kind(var.location))
            return reg.index, reg
        if isinstance(expr, ClosureRef):
            self.use_var(self.alloc.cp_var)
            reg = self._acquire_scratch()
            self.emit("clo_ref", reg.index, expr.index)
            return reg.index, reg
        raise CompilerError(
            f"closure operand must be a variable access, got {type(expr).__name__}"
        )

    # -- conditionals -----------------------------------------------------------

    def gen_if(self, expr: If, tail: bool, dst: Optional[Register]) -> None:
        test_src, release = self._gen_test(
            expr, fallback=dst if dst is not None else self.regfile.rv
        )
        # §6 static branch prediction: lay the likely (call-free)
        # branch on the fall-through path.  The prediction annotation
        # says which branch is UNlikely to be needed cheaply; when the
        # else-branch is the likely one, swap the layout with brt.
        swap = expr.prediction == "else"
        first, second = (
            (expr.otherwise, expr.then) if swap else (expr.then, expr.otherwise)
        )
        br_pc = self.emit(
            "brt" if swap else "brf", test_src, None, expr.prediction
        )
        if release is not None:
            self.scratch.release(release)
        invalid_before = set(self.invalid)

        if tail:
            self.gen_tail(first)
            invalid_first = set(self.invalid)
            self.instrs[br_pc][2] = self.pc
            self.invalid = set(invalid_before)
            self.gen_tail(second)
            self.invalid |= invalid_first
            return

        self.gen_into(first, dst)
        invalid_first = set(self.invalid)
        jmp_pc = self.emit("jmp", None)
        self.instrs[br_pc][2] = self.pc
        self.invalid = set(invalid_before)
        self.gen_into(second, dst)
        self.instrs[jmp_pc][1] = self.pc
        self.invalid |= invalid_first

    def _gen_test(
        self, if_expr: If, fallback: Register
    ) -> Tuple[int, Optional[Register]]:
        """The branch condition: trivial variables are read in place;
        under scratch pressure the value flows through *fallback* (the
        destination register, dead until a branch writes it — unless
        some part of the conditional still reads a variable living
        there)."""
        test = if_expr.test
        if isinstance(test, Ref) and isinstance(test.var.location, Register):
            return self.use_var(test.var), None
        reg = self.scratch.acquire(self.reserved, keep_free=2)
        if reg is None:
            from repro.core.liveness import _referenced_vars

            reads_fallback = any(
                var.location is fallback
                for var in _referenced_vars(if_expr, self.alloc)
            )
            if not reads_fallback:
                self.gen_into(test, fallback)
                return fallback.index, None
            reg = self._acquire_scratch()  # last resort; may raise
        self.gen_into(test, reg)
        return reg.index, reg

    # -- save regions -------------------------------------------------------------

    def gen_save_entry(self, save: Save, tail: bool) -> None:
        for var in save.vars:
            # The store is sound even when the variable is statically
            # "maybe stale": a save region reads its variables (pass 2
            # treats the save as a reference), so on every path where
            # the variable is still live its register was restored
            # before this point; a variable that is stale here is
            # conservatively live only — its home value is never used —
            # and storing keeps the home slot initialized for the
            # equally conservative restores downstream.
            loc = var.location
            assert isinstance(loc, Register) and var.home is not None
            self.emit("st", var.home.index, loc.index, "save")
        if save.callee_regs:
            if not tail:
                raise CompilerError("callee-save region outside tail position")
            region: List[Tuple[Register, FrameSlot]] = []
            for reg in save.callee_regs:
                slot = self.alloc.layout.alloc(f"callee:{reg.name}")
                self.emit("st", slot.index, reg.index, "save")
                region.append((reg, slot))
            self.active_callee.append(region)

    def _save_exit_may_reload(self, save: Save, dst: Register) -> bool:
        """Whether the lazy region-exit flush for *save* could write
        *dst* (a variable referenced beyond the region lives there)."""
        return any(var.location is dst for var in save.refs_after or ())

    def gen_save_exit(self, save: Save, tail: bool) -> None:
        if save.callee_regs:
            self.active_callee.pop()
            return
        if self.lazy_restores:
            # Figure 2c: variables referenced beyond the region must be
            # valid at the join with paths that never saved them.
            for var in sorted(save.refs_after, key=lambda v: v.uid):
                if var in self.invalid:
                    self.use_var(var)

    # -- primitive calls -----------------------------------------------------------

    def gen_primcall(self, expr: PrimCall, dst: Register) -> None:
        args = expr.args
        call_positions = [i for i, a in enumerate(args) if contains_call(a)]
        last_call = call_positions[-1] if call_positions else -1
        # dst may serve as an evaluation conduit unless some sibling
        # argument reads the variable living in dst — anywhere inside
        # it, not just at the top: a nested operand's reference is just
        # as clobbered by a conduit write.
        from repro.core.liveness import _referenced_vars

        dst_conduit_ok = not any(
            var.location is dst
            for a in args
            for var in _referenced_vars(a, self.alloc)
        )

        staged: List[Tuple[str, Any]] = []
        releases: List[Register] = []
        slots: List[FrameSlot] = []
        for i, arg in enumerate(args):
            if isinstance(arg, Quote):
                staged.append(("imm", arg.value))
            elif isinstance(arg, Ref) and isinstance(arg.var.location, Register):
                staged.append(("var", arg.var))
            elif isinstance(arg, Ref):
                staged.append(("slot-var", arg.var))
            elif isinstance(arg, ClosureRef):
                staged.append(("cloref", arg.index))
            elif i < last_call:
                # An embedded call follows: park this value in the frame.
                with self._scratch_reg() as reg:
                    self.gen_into(arg, reg)
                    slot = self.temp_slots.acquire()
                    self.emit("st", slot.index, reg.index, "temp")
                staged.append(("slot", slot))
                slots.append(slot)
            else:
                # Keep registers free for deeper evaluation; when the
                # pool runs low, evaluate through *dst* (dead until the
                # primitive issues) and park in the frame — this holds
                # no scratch register across the recursion, so nesting
                # depth is unbounded.
                reg = self.scratch.acquire(self.reserved, keep_free=2)
                if reg is None and not dst_conduit_ok:
                    reg = self.scratch.acquire(self.reserved)  # last resort
                if reg is None:
                    # rv is the conduit of last resort: produce-then-
                    # consume (the store follows immediately), and no
                    # variable ever lives there.
                    conduit = dst if dst_conduit_ok else self.regfile.rv
                    self.gen_into(arg, conduit)
                    slot = self.temp_slots.acquire()
                    self.emit("st", slot.index, conduit.index, "temp")
                    staged.append(("slot", slot))
                    slots.append(slot)
                else:
                    self.gen_into(arg, reg)
                    staged.append(("reg", reg))
                    releases.append(reg)

        srcs: List[Any] = []
        # dst may carry a memory-staged source only if no variable
        # source lives in dst (the prim reads registers at issue time).
        dst_used = not dst_conduit_ok or any(
            kind == "var" and payload.location is dst
            for kind, payload in staged
        )

        rv = self.regfile.rv
        rv_used = False

        # Registers the issue sequence must not clobber: dst, rv, every
        # register a staged source reads at prim time, and (as they are
        # chosen) the materialized targets themselves.  Anything else in
        # the pool can be *borrowed* around the prim under total
        # exhaustion — spilled to a frame temp, used as a load target,
        # and restored immediately after the prim, before any outer
        # holder can look at it again.
        pinned = {dst.index, rv.index}
        for kind, payload in staged:
            if kind == "var" and isinstance(payload.location, Register):
                pinned.add(payload.location.index)
            elif kind == "reg":
                pinned.add(payload.index)
        borrowed: List[Tuple[Register, Any]] = []

        def materialize_target() -> int:
            # One memory-staged source may flow through dst itself (its
            # old value is dead and the prim writes it last), which
            # bounds the registers resolution needs.  Under total
            # exhaustion one more source may flow through rv: nothing
            # between here and the prim writes it.
            nonlocal dst_used, rv_used
            if not dst_used:
                dst_used = True
                if dst is rv:
                    rv_used = True
                return dst.index
            reg = self.scratch.acquire(self.reserved)
            if reg is not None:
                releases.append(reg)
                pinned.add(reg.index)
                return reg.index
            if not rv_used and dst is not rv:
                rv_used = True
                return rv.index
            # Every conduit is spent (deep nesting can consume both dst
            # and rv before this prim issues): borrow a live register
            # for the duration of the issue sequence.
            for victim in self.scratch.pool:
                if victim.index in pinned:
                    continue
                slot = self.temp_slots.acquire()
                self.emit("st", slot.index, victim.index, "temp")
                borrowed.append((victim, slot))
                pinned.add(victim.index)
                return victim.index
            raise CompilerError(
                "scratch register pool exhausted — expression too deep "
                "for register-free evaluation (frame-temp fallback not "
                "reached)"
            )

        for kind, payload in staged:
            if kind == "imm":
                srcs.append(("imm", payload))
            elif kind == "var":
                srcs.append(self.use_var(payload))
            elif kind == "slot-var":
                target = materialize_target()
                self.emit(
                    "ld", target, payload.location.index, self._slot_kind(payload.location)
                )
                srcs.append(target)
            elif kind == "cloref":
                self.use_var(self.alloc.cp_var)
                target = materialize_target()
                self.emit("clo_ref", target, payload)
                srcs.append(target)
            elif kind == "slot":
                target = materialize_target()
                self.emit("ld", target, payload.index, "temp")
                srcs.append(target)
            else:  # "reg"
                srcs.append(payload.index)
        self.emit("prim", dst.index, expr.op, srcs)
        for victim, slot in reversed(borrowed):
            self.emit("ld", victim.index, slot.index, "temp")
            self.temp_slots.release(slot)
        for reg in releases:
            self.scratch.release(reg)
        for slot in slots:
            self.temp_slots.release(slot)

    # -- calls ------------------------------------------------------------------

    def gen_call(self, call: Call) -> None:
        """A non-tail call: run the shuffle plan, emit the call, then
        the restore discipline."""
        self._run_shuffle(call, tail=False)
        if isinstance(call, CallCC):
            self.emit("callcc")
        else:
            self.emit("call", len(call.args))
        self._after_call(call)

    def gen_tailcall(self, call: Call) -> None:
        self._run_shuffle(call, tail=True)
        self._emit_callee_exit_restores()
        if self.config.save_convention != "callee":
            self.use_var(self.alloc.ret_var)
        if isinstance(call, CallCC):
            raise CompilerError("call/cc is never a tail jump")
        self.emit("tailcall", len(call.args))

    def _after_call(self, call: Call) -> None:
        # The call destroyed every caller-save register.
        for var in self.alloc.register_vars:
            loc = var.location
            if isinstance(loc, Register) and not loc.callee_save:
                self.invalid.add(var)
        if not self.lazy_restores:
            for var in call.restores or ():
                self.use_var(var)

    def _run_shuffle(self, call: Call, tail: bool) -> None:
        plan: ShufflePlan = call.shuffle_plan
        if plan is None:
            raise CompilerError("call without a shuffle plan")
        regfile = self.regfile
        slots: Dict[int, FrameSlot] = {}
        evict_locs: Dict[int, Union[Register, FrameSlot]] = {}
        free_regs = [
            r for r in plan.free_temp_regs if r not in self.scratch.in_use
        ]
        targets = {
            it.target for it in plan.register_items if isinstance(it.target, Register)
        }
        outer_reserved = set(self.reserved)
        written: Set[Register] = set()

        def mark_written(reg: Register) -> None:
            written.add(reg)
            # Any variable living in this register is now unreadable
            # from it; use_var falls back to its home slot.
            for var in self.alloc.register_vars:
                if var.location is reg:
                    if var in (call.live_before or ()) or var in (
                        call.live_after or ()
                    ):
                        self.invalid.add(var)

        stack_arg_count = 0
        for kind, item in plan.steps:
            if kind in ("temp-stack-arg", "temp-complex"):
                slot = self.temp_slots.acquire()
                with self._scratch_reg() as reg:
                    self.gen_into(item.expr, reg)
                    self.emit("st", slot.index, reg.index, "temp")
                slots[item.index] = slot
            elif kind == "direct-complex":
                self.gen_into(item.expr, item.target)
                mark_written(item.target)
                self.reserved = outer_reserved | targets
            elif kind == "stack-arg":
                stack_arg_count += 1
                if tail and self._tail_stack_arg_in_place(item):
                    continue
                with self._scratch_reg() as reg:
                    self.gen_into(item.expr, reg)
                    self.emit("st_out", item.target, reg.index, "arg")
            elif kind == "flush-stack-temp":
                stack_arg_count += 1
                with self._scratch_reg() as reg:
                    self.emit("ld", reg.index, slots[item.index].index, "temp")
                    self.emit("st_out", item.target, reg.index, "arg")
                    self.temp_slots.release(slots.pop(item.index))
            elif kind == "direct":
                self.reserved = outer_reserved | targets
                self.gen_into(item.expr, item.target)
                mark_written(item.target)
            elif kind == "evict":
                self.reserved = outer_reserved | targets
                loc: Union[Register, FrameSlot, None] = None
                for reg in free_regs:
                    if reg not in written and reg not in self.scratch.in_use:
                        loc = reg
                        free_regs.remove(reg)
                        break
                if isinstance(loc, Register):
                    self.gen_into(item.expr, loc)
                    mark_written(loc)
                    # The evicted value must survive until its flush:
                    # keep the register away from the scratch allocator.
                    self.scratch.in_use.add(loc)
                else:
                    loc = self.temp_slots.acquire()
                    with self._scratch_reg() as reg:
                        self.gen_into(item.expr, reg)
                        self.emit("st", loc.index, reg.index, "temp")
                evict_locs[item.index] = loc
            elif kind == "flush-evict":
                loc = evict_locs.pop(item.index)
                if isinstance(loc, Register):
                    self.emit("mov", item.target.index, loc.index)
                    self.scratch.in_use.discard(loc)
                else:
                    self.emit("ld", item.target.index, loc.index, "temp")
                    self.temp_slots.release(loc)
                mark_written(item.target)
            elif kind == "flush-complex-temp":
                self.emit("ld", item.target.index, slots[item.index].index, "temp")
                self.temp_slots.release(slots.pop(item.index))
                mark_written(item.target)
            elif kind == "permute":
                # item is the tuple of cycle items in chain order: each
                # one's value is the old content of the next one's
                # target, so listing the targets in this order makes
                # the whole cycle one left-rotation (permopt only).
                self.reserved = outer_reserved | targets
                for it in item:
                    # Reload any stale participant into its home
                    # register: the permutation rearranges current
                    # register contents.
                    self.use_var(it.expr.var)
                cycle_regs = [it.target.index for it in item]
                i = 0
                while i < len(cycle_regs) - 1:
                    group = cycle_regs[i : i + PERMI_MAX]
                    if len(group) == 2:
                        self.emit("swap", group[0], group[1])
                    else:
                        self.emit("permi", list(group))
                    i += len(group) - 1
                for it in item:
                    mark_written(it.target)
            else:  # pragma: no cover - plan kinds are closed
                raise CompilerError(f"unknown shuffle step {kind}")
        self.reserved = outer_reserved
        if tail:
            self._relocate_tail_stack_args(plan)

    def _tail_stack_arg_in_place(self, item: ShuffleItem) -> bool:
        """A tail-call stack argument that is already in its incoming
        slot needs no code at all (common in self-recursive loops)."""
        expr = item.expr
        return (
            isinstance(expr, Ref)
            and isinstance(expr.var.location, FrameSlot)
            and expr.var.location.index == item.target
        )

    def _relocate_tail_stack_args(self, plan: ShufflePlan) -> None:
        """Move outgoing stack arguments from the out-area down into
        this frame's incoming slots before the tail jump."""
        for it in plan.items:
            if isinstance(it.target, Register):
                continue
            if self._tail_stack_arg_in_place(it):
                continue
            with self._scratch_reg() as reg:
                self.emit("ld_out", reg.index, it.target, "temp")
                self.emit("st", it.target, reg.index, "arg")

    # -- scratch helpers ---------------------------------------------------------

    def _acquire_scratch(self) -> Register:
        reg = self.scratch.acquire(self.reserved)
        if reg is None:
            raise CompilerError(
                "scratch register pool exhausted — expression too deep for "
                "register-free evaluation (frame-temp fallback not reached)"
            )
        return reg

    def _scratch_reg(self):
        return _ScratchContext(self)


class _ScratchContext:
    """``with self._scratch_reg() as reg`` — the produce-then-consume
    conduit register.

    Every user of this context computes a value whose final write is
    immediately followed by its single consuming instruction (a store,
    usually), so ``rv`` can serve all of them at any nesting depth: an
    inner conduit use always completes before the outer value is
    produced.  Keeping these off the scratch pool guarantees the pool
    invariant (at least two registers free wherever simultaneous
    operands must be materialized)."""

    def __init__(self, gen: _CodeGenerator) -> None:
        self.gen = gen
        self.reg: Optional[Register] = None

    def __enter__(self) -> Register:
        self.reg = self.gen.regfile.rv
        return self.reg

    def __exit__(self, *exc) -> None:
        self.reg = None
