"""Observability primitives: spans and events.

A :class:`Span` is a named, timed, possibly-nested interval (a compiler
pass, the VM execution, a benchmark compile).  An :class:`Event` is a
point-in-time occurrence with a typed payload (a per-procedure profile
row, a pass statistic).  Both carry timestamps in **nanoseconds since
the owning tracer's epoch** so exporters can convert losslessly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Event:
    """A point-in-time occurrence with an attribute payload."""

    __slots__ = ("name", "ts", "args")

    def __init__(self, name: str, ts: int, args: Dict[str, Any]) -> None:
        self.name = name
        self.ts = ts
        self.args = args

    def __repr__(self) -> str:
        return f"<Event {self.name!r} ts={self.ts} {self.args!r}>"


class Span:
    """A named interval, used as a context manager by the tracer.

    ``start`` is set on ``__enter__``; ``dur`` on ``__exit__`` (both in
    nanoseconds relative to the tracer epoch).  ``depth`` is the
    nesting level at entry and ``parent`` the enclosing span's name,
    so exporters can reconstruct the tree.
    """

    __slots__ = ("name", "args", "start", "dur", "depth", "parent", "_tracer")

    def __init__(self, tracer, name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.start: int = 0
        self.dur: Optional[int] = None
        self.depth: int = 0
        self.parent: Optional[str] = None

    @property
    def dur_s(self) -> float:
        """Duration in seconds (0.0 while still open)."""
        return (self.dur or 0) / 1e9

    def set(self, **args: Any) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._exit(self)
        return False

    def __repr__(self) -> str:
        return f"<Span {self.name!r} start={self.start} dur={self.dur}>"
