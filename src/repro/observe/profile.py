"""Per-procedure VM profiles.

The VM's :class:`~repro.vm.counters.Counters` report whole-run totals;
this module attributes them to individual code objects.  Attribution is
**delta-based**: the machine calls :meth:`VMProfiler.switch` at every
procedure transition (call, tail call, return, continuation invoke,
call/cc), and the profiler charges everything the counters accumulated
since the previous transition to the procedure that was running.  The
per-instruction dispatch path is untouched, and the deltas sum to the
run totals *exactly* — conservation is by construction, and the
integration tests assert it.

Stall cycles from a load issued in one procedure but consumed after a
return are charged to the consumer — the same accounting the paper uses
when it credits eager restores with hiding memory latency behind the
caller's continuation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

# Scalar counter attributes attributed per procedure (besides cycles
# and instructions, which the machine passes explicitly).
_SCALARS = (
    "calls",
    "tail_calls",
    "prim_calls",
    "closure_allocs",
    "branches",
    "mispredicts",
    "moves",
    "swaps",
)


class ProcProfile:
    """Accumulated costs for one code object."""

    __slots__ = (
        "name",
        "label",
        "cycles",
        "instructions",
        "activations",
        "stack_reads",
        "stack_writes",
        "calls",
        "tail_calls",
        "prim_calls",
        "closure_allocs",
        "branches",
        "mispredicts",
        "moves",
        "swaps",
    )

    def __init__(self, name: str, label: str) -> None:
        self.name = name
        self.label = label
        self.cycles = 0
        self.instructions = 0
        self.activations = 0
        self.stack_reads: Dict[str, int] = {}
        self.stack_writes: Dict[str, int] = {}
        self.calls = 0
        self.tail_calls = 0
        self.prim_calls = 0
        self.closure_allocs = 0
        self.branches = 0
        self.mispredicts = 0
        self.moves = 0
        self.swaps = 0

    @property
    def saves(self) -> int:
        return self.stack_writes.get("save", 0)

    @property
    def restores(self) -> int:
        return self.stack_reads.get("restore", 0)

    @property
    def total_stack_refs(self) -> int:
        return sum(self.stack_reads.values()) + sum(self.stack_writes.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "label": self.label,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "activations": self.activations,
            "stack_refs": self.total_stack_refs,
            "stack_reads": {k: self.stack_reads[k] for k in sorted(self.stack_reads)},
            "stack_writes": {k: self.stack_writes[k] for k in sorted(self.stack_writes)},
            "saves": self.saves,
            "restores": self.restores,
            "calls": self.calls,
            "tail_calls": self.tail_calls,
            "prim_calls": self.prim_calls,
            "closure_allocs": self.closure_allocs,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "moves": self.moves,
            "swaps": self.swaps,
        }

    def __repr__(self) -> str:
        return (
            f"<ProcProfile {self.label} cycles={self.cycles} "
            f"refs={self.total_stack_refs}>"
        )


class VMProfiler:
    """Aggregates per-procedure profiles for one machine run.

    The machine calls :meth:`start` once with the entry code object,
    :meth:`switch` at every transition, and :meth:`finish` when the run
    halts.  Cost when profiling is *off* is a single ``is not None``
    test at each transition; the dispatch path never sees the profiler.
    """

    def __init__(self, counters=None) -> None:
        # Rebound by the Machine to its own Counters instance.
        self.counters = counters
        self.profiles: Dict[int, ProcProfile] = {}
        self._current: Optional[ProcProfile] = None
        self._last_cycle = 0
        self._last_executed = 0
        self._last_reads: Dict[str, int] = {}
        self._last_writes: Dict[str, int] = {}
        self._last_scalars = {name: 0 for name in _SCALARS}

    def _profile_for(self, code) -> ProcProfile:
        prof = self.profiles.get(code.uid)
        if prof is None:
            prof = ProcProfile(code.name, code.label)
            self.profiles[code.uid] = prof
        return prof

    def start(self, code) -> None:
        self._current = self._profile_for(code)
        self._current.activations += 1

    def switch(self, code, cycle: int, executed: int) -> None:
        """Transition into a *new* activation of *code* (call paths)."""
        self._flush(cycle, executed)
        self._current = self._profile_for(code)
        self._current.activations += 1

    def resume(self, code, cycle: int, executed: int) -> None:
        """Transition back into an *existing* activation of *code*
        (returns and continuation invocations)."""
        self._flush(cycle, executed)
        self._current = self._profile_for(code)

    def finish(self, cycle: int, executed: int) -> None:
        self._flush(cycle, executed)
        self._current = None

    def _flush(self, cycle: int, executed: int) -> None:
        prof = self._current
        if prof is None:  # pragma: no cover - machine always starts first
            return
        counters = self.counters
        prof.cycles += cycle - self._last_cycle
        prof.instructions += executed - self._last_executed
        self._last_cycle = cycle
        self._last_executed = executed

        reads = counters.stack_reads
        if reads != self._last_reads:
            last = self._last_reads
            dst = prof.stack_reads
            for kind, total in reads.items():
                delta = total - last.get(kind, 0)
                if delta:
                    dst[kind] = dst.get(kind, 0) + delta
            self._last_reads = dict(reads)
        writes = counters.stack_writes
        if writes != self._last_writes:
            last = self._last_writes
            dst = prof.stack_writes
            for kind, total in writes.items():
                delta = total - last.get(kind, 0)
                if delta:
                    dst[kind] = dst.get(kind, 0) + delta
            self._last_writes = dict(writes)

        scalars = self._last_scalars
        for name in _SCALARS:
            total = getattr(counters, name)
            delta = total - scalars[name]
            if delta:
                setattr(prof, name, getattr(prof, name) + delta)
                scalars[name] = total

    # -- queries --------------------------------------------------------

    def hot(self, n: Optional[int] = None) -> List[ProcProfile]:
        """Procedures ranked by attributed cycles, hottest first."""
        ranked = sorted(
            self.profiles.values(), key=lambda p: p.cycles, reverse=True
        )
        return ranked[:n] if n is not None else ranked

    def totals(self) -> Dict[str, Any]:
        """Sums across all procedures (equal to the run's counters)."""
        cycles = instructions = 0
        reads: Dict[str, int] = {}
        writes: Dict[str, int] = {}
        scalars = {name: 0 for name in _SCALARS}
        for prof in self.profiles.values():
            cycles += prof.cycles
            instructions += prof.instructions
            for kind, v in prof.stack_reads.items():
                reads[kind] = reads.get(kind, 0) + v
            for kind, v in prof.stack_writes.items():
                writes[kind] = writes.get(kind, 0) + v
            for name in _SCALARS:
                scalars[name] += getattr(prof, name)
        return {
            "cycles": cycles,
            "instructions": instructions,
            "stack_reads": reads,
            "stack_writes": writes,
            **scalars,
        }

    def as_rows(self) -> List[Dict[str, Any]]:
        return [p.as_dict() for p in self.hot()]
