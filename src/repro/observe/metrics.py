"""``repro.observe.metrics`` — a process-wide metrics registry.

Three metric types, modelled on the Prometheus data model but with no
external dependency:

* :class:`Counter` — a monotonically increasing count (cache hits,
  worker crashes, requests served);
* :class:`Gauge` — a value that goes up and down (pool queue depth);
* :class:`Histogram` — a distribution over **fixed, log-scaled bucket
  bounds**.  Because every process derives the same bounds from the
  same literals, merging two processes' histograms is *exact* —
  element-wise summation of bucket counts — and quantile estimates
  (p50/p90/p99) are derived from the buckets with linear interpolation,
  so they are within one bucket width of the true value.

A :class:`MetricsRegistry` owns one family per metric name; families
with labels hand out children per label-value tuple.  The module-level
default registry (:func:`get_registry`) starts **disabled**: every
instrumentation point short-circuits on ``registry.enabled``, so code
that never turns metrics on pays a single attribute test.  The serve
layer (:mod:`repro.serve`) and the metrics-producing CLI subcommands
enable it.

Cross-process aggregation is delta-based, like the VM profiler: a pool
worker snapshots the registry before a task and ships
``diff_snapshot`` with its result; the parent ``merge_snapshot``\\ s the
delta, so parent-side totals are exact by conservation (asserted in
``tests/serve/test_telemetry.py``).

Exposition formats: :meth:`MetricsRegistry.snapshot` (JSON),
:func:`render_openmetrics` (Prometheus/OpenMetrics text), and
:func:`lint_openmetrics` — an in-repo format checker used by CI in
place of ``promtool``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

SNAPSHOT_VERSION = 1

#: Valid metric / label name (the OpenMetrics grammar, minus colons for
#: label names — checked by the lint too).
_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _valid_name(name: str, label: bool = False) -> bool:
    if not name or name[0].isdigit():
        return False
    allowed = _NAME_OK - {":"} if label else _NAME_OK
    return all(ch in allowed for ch in name)


# ---------------------------------------------------------------------------
# Bucket bounds
# ---------------------------------------------------------------------------


def log_buckets(
    lo_exp: int, hi_exp: int, mantissas: Sequence[float] = (1.0, 2.0, 5.0)
) -> Tuple[float, ...]:
    """Log-scaled bounds: ``m * 10**e`` for every mantissa and decade.

    The bounds are a pure function of literal inputs, so every process
    (and every PR against the same code) derives bit-identical floats —
    the property that makes cross-process histogram merge exact.
    """
    out: List[float] = []
    for e in range(lo_exp, hi_exp + 1):
        for m in mantissas:
            # Divide for negative decades: 5 / 1e6 rounds to the double
            # spelled "5e-06", where 5 * 1e-06 would not.
            out.append(m * 10.0 ** e if e >= 0 else m / 10.0 ** -e)
    return tuple(out)


#: Latency distributions (seconds): 1 µs up to 500 s in a 1-2-5 series.
LATENCY_BUCKETS = log_buckets(-6, 2)
#: Event-count distributions (saves, restores, instructions): 1 .. 5e9.
COUNT_BUCKETS = log_buckets(0, 9)
#: Small-size distributions (shuffle sizes, register counts).
SIZE_BUCKETS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 24.0, 32.0)
#: Byte-size distributions: 1 B up to 5 GB.
BYTES_BUCKETS = log_buckets(0, 9)


# ---------------------------------------------------------------------------
# Metric children (one per label-value tuple)
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """A distribution over fixed bucket bounds.

    ``counts[i]`` counts observations ``<= bounds[i]`` (exclusive of
    earlier buckets); ``counts[-1]`` is the overflow (+Inf) bucket.
    Rendering uses the *cumulative* convention Prometheus expects.
    """

    __slots__ = ("bounds", "counts", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left: bucket i holds values <= bounds[i] (le semantics).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value

    @property
    def count(self) -> int:
        return sum(self.counts)

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate.

        Exact to within one bucket width: the target observation is
        located in its bucket by cumulative count, and the estimate
        interpolates linearly across that bucket's bounds.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        total = self.count
        if total == 0:
            return 0.0
        target = q * total
        cum = 0
        for i, n in enumerate(self.counts):
            cum += n
            if cum >= target and n:
                hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):
                    return hi  # overflow bucket: clamp to the last bound
                frac = (target - (cum - n)) / n
                return lo + (hi - lo) * frac
        return self.bounds[-1]

    def merge(self, counts: Sequence[int], total: float) -> None:
        """Exact merge: element-wise summation (bounds must be equal —
        they are, by construction, for same-named metrics)."""
        if len(counts) != len(self.counts):
            raise ValueError("histogram shape mismatch")
        for i, n in enumerate(counts):
            self.counts[i] += n
        self.sum += total

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric plus its per-label-value children.

    A family declared without labels has exactly one child, and the
    family proxies the child's methods (``inc``/``set``/``observe``)
    directly.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if not _valid_name(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _valid_name(label, label=True):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self.children: Dict[Tuple[str, ...], Any] = {}
        if not self.label_names:
            self._default = self._new_child()
            self.children[()] = self._default
        else:
            self._default = None

    def _new_child(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        """The child for one label-value assignment (created on first
        use).  Label *names* must match the declaration exactly."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self.children.get(key)
        if child is None:
            child = self._new_child()
            self.children[key] = child
        return child

    # Label-less convenience proxies.
    def inc(self, amount: float = 1) -> None:
        self._default.inc(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def dec(self, amount: float = 1) -> None:
        self._default.dec(amount)

    def observe(self, value: float) -> None:
        self._default.observe(value)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _child_key(name: str, label_names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not label_names:
        return name
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in zip(label_names, values)
    )
    return f"{name}{{{inner}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class MetricsRegistry:
    """All metric families of one process.

    ``enabled`` is the global on/off switch: instrumentation points in
    hot code guard on it (one attribute test when off), and ``inc`` /
    ``observe`` on a disabled registry's families still work — the flag
    is advisory for the *callers*, which is what keeps the null path
    free.  Registries are independent; tests build private ones.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.families: Dict[str, MetricFamily] = {}
        #: Latency exemplars: child key → bucket ``le`` → the last
        #: ``{"trace": <id>, "value": <seconds>}`` observed in that
        #: bucket.  Kept beside the histograms (whose ``__slots__`` are
        #: fixed) so dashboards can name a concrete trace per bucket.
        self.exemplars: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self.created_s = time.time()

    # -- declaration ----------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self.families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} re-declared as {kind} (was {family.kind})"
                )
            return family
        family = MetricFamily(name, kind, help, labels, buckets)
        self.families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets)

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def clear(self) -> None:
        """Drop every family (tests, and worker startup hygiene)."""
        self.families.clear()
        self.exemplars.clear()
        self.created_s = time.time()

    # -- exemplars ------------------------------------------------------

    def record_exemplar(
        self,
        name: str,
        label_names: Tuple[str, ...],
        label_values: Tuple[str, ...],
        value: float,
        trace: str,
    ) -> None:
        """Remember *trace* as the exemplar for the histogram bucket
        *value* falls into (OpenMetrics exemplar semantics, last write
        wins).  The histogram itself is observed separately — exemplars
        are a parallel, bounded annotation (one per bucket per child)."""
        family = self.families.get(name)
        bounds = (
            family.buckets
            if family is not None and family.buckets
            else LATENCY_BUCKETS
        )
        key = _child_key(
            name, tuple(label_names), tuple(str(v) for v in label_values)
        )
        idx = bisect_left(bounds, value)
        le = _format_value(bounds[idx]) if idx < len(bounds) else "+Inf"
        self.exemplars.setdefault(key, {})[le] = {
            "trace": trace,
            "value": value,
        }

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The registry as plain JSON-able data (stable key order)."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        meta: Dict[str, Dict[str, str]] = {}
        for name in sorted(self.families):
            family = self.families[name]
            meta[name] = {"type": family.kind, "help": family.help}
            if family.label_names:
                meta[name]["labels"] = ",".join(family.label_names)
            for values in sorted(family.children):
                child = family.children[values]
                key = _child_key(name, family.label_names, values)
                if family.kind == "counter":
                    counters[key] = child.value
                elif family.kind == "gauge":
                    gauges[key] = child.value
                else:
                    histograms[key] = {
                        "bounds": list(child.bounds),
                        "counts": list(child.counts),
                        "sum": child.sum,
                    }
        doc = {
            "version": SNAPSHOT_VERSION,
            "pid": os.getpid(),
            "created_s": self.created_s,
            "updated_s": time.time(),
            "meta": meta,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        if self.exemplars:
            doc["exemplars"] = {
                key: dict(per_bucket)
                for key, per_bucket in sorted(self.exemplars.items())
            }
        return doc

    def diff_snapshot(self, base: Dict[str, Any]) -> Dict[str, Any]:
        """The delta between now and an earlier :meth:`snapshot`.

        Counters and histogram buckets subtract exactly; gauges are
        excluded (a gauge level is not additive across processes).
        Zero entries are dropped, so an idle interval diffs to an
        (almost) empty document.
        """
        now = self.snapshot()
        counters = {}
        for key, value in now["counters"].items():
            delta = value - base.get("counters", {}).get(key, 0)
            if delta:
                counters[key] = delta
        histograms = {}
        for key, doc in now["histograms"].items():
            old = base.get("histograms", {}).get(key)
            if old is None:
                if sum(doc["counts"]):
                    histograms[key] = doc
                continue
            counts = [n - m for n, m in zip(doc["counts"], old["counts"])]
            if any(counts):
                histograms[key] = {
                    "bounds": doc["bounds"],
                    "counts": counts,
                    "sum": doc["sum"] - old["sum"],
                }
        return {
            "version": SNAPSHOT_VERSION,
            "meta": now["meta"],
            "counters": counters,
            "gauges": {},
            "histograms": histograms,
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a snapshot (typically a worker delta) into this
        registry: counters and histogram buckets sum exactly; gauges
        take the incoming value (last write wins)."""
        meta = snap.get("meta", {})

        def family_for(key: str, kind: str) -> Tuple[MetricFamily, Tuple[str, ...]]:
            name, values = _parse_child_key(key)
            declared = meta.get(name, {})
            labels = tuple(
                label for label in declared.get("labels", "").split(",") if label
            )
            if kind == "histogram":
                family = self.histogram(
                    name, declared.get("help", ""), labels,
                    buckets=snap["histograms"][key]["bounds"],
                )
            elif kind == "counter":
                family = self.counter(name, declared.get("help", ""), labels)
            else:
                family = self.gauge(name, declared.get("help", ""), labels)
            return family, values

        for key, value in snap.get("counters", {}).items():
            family, values = family_for(key, "counter")
            child = family.labels(**dict(zip(family.label_names, values))) if values else family._default
            child.inc(value)
        for key, value in snap.get("gauges", {}).items():
            family, values = family_for(key, "gauge")
            child = family.labels(**dict(zip(family.label_names, values))) if values else family._default
            child.set(value)
        for key, doc in snap.get("histograms", {}).items():
            family, values = family_for(key, "histogram")
            child = family.labels(**dict(zip(family.label_names, values))) if values else family._default
            if list(child.bounds) != [float(b) for b in doc["bounds"]]:
                raise ValueError(f"histogram {key!r}: bucket bounds mismatch")
            child.merge(doc["counts"], doc["sum"])
        for key, per_bucket in snap.get("exemplars", {}).items():
            self.exemplars.setdefault(key, {}).update(per_bucket)

    # -- persistence ----------------------------------------------------

    def dump(self, path: str) -> None:
        """Atomically write :meth:`snapshot` as JSON (the artifact
        ``repro metrics`` and ``repro top`` read)."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        payload = json.dumps(self.snapshot())
        fd, tmp = tempfile.mkstemp(dir=parent, prefix=".metrics-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise


def _parse_child_key(key: str) -> Tuple[str, Tuple[str, ...]]:
    if "{" not in key:
        return key, ()
    name, _, rest = key.partition("{")
    rest = rest.rstrip("}")
    values = []
    for part in _split_labels(rest):
        _, _, raw = part.partition("=")
        values.append(_unescape_label(raw.strip('"')))
    return name, tuple(values)


def _split_labels(text: str) -> List[str]:
    """Split ``k="v",k2="v2"`` on commas outside quotes."""
    parts: List[str] = []
    current = ""
    quoted = False
    escaped = False
    for ch in text:
        if escaped:
            current += ch
            escaped = False
        elif ch == "\\":
            current += ch
            escaped = True
        elif ch == '"':
            current += ch
            quoted = not quoted
        elif ch == "," and not quoted:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    return parts


def _unescape_label(value: str) -> str:
    out = ""
    escaped = False
    for ch in value:
        if escaped:
            out += {"n": "\n", '"': '"', "\\": "\\"}.get(ch, ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        else:
            out += ch
    return out


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a snapshot written by :meth:`MetricsRegistry.dump`."""
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "counters" not in doc:
        raise ValueError(f"{path}: not a metrics snapshot")
    return doc


# ---------------------------------------------------------------------------
# The default (process-wide) registry
# ---------------------------------------------------------------------------

#: The process-wide registry.  Disabled until a serve-layer component or
#: a metrics-producing CLI subcommand enables it, so the hot paths'
#: ``registry.enabled`` guards cost one attribute test by default.
REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    return REGISTRY


# ---------------------------------------------------------------------------
# OpenMetrics exposition + lint
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - never stored
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def render_openmetrics(snapshot: Dict[str, Any]) -> str:
    """The snapshot in OpenMetrics text format (Prometheus-compatible),
    terminated by the mandatory ``# EOF`` line."""
    lines: List[str] = []
    meta = snapshot.get("meta", {})
    by_family: Dict[str, List[Tuple[str, Any]]] = {}
    for key, value in snapshot.get("counters", {}).items():
        by_family.setdefault(_parse_child_key(key)[0], []).append((key, value))
    for key, value in snapshot.get("gauges", {}).items():
        by_family.setdefault(_parse_child_key(key)[0], []).append((key, value))
    for key, doc in snapshot.get("histograms", {}).items():
        by_family.setdefault(_parse_child_key(key)[0], []).append((key, doc))

    for name in sorted(by_family):
        kind = meta.get(name, {}).get("type", "gauge")
        help_text = meta.get(name, {}).get("help", "")
        lines.append(f"# TYPE {name} {kind}")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        for key, value in sorted(by_family[name]):
            _, label_values = _parse_child_key(key)
            label_text = key[len(name):]  # "" or "{...}"
            if kind == "counter":
                lines.append(f"{name}_total{label_text} {_format_value(value)}")
            elif kind == "gauge":
                lines.append(f"{name}{label_text} {_format_value(value)}")
            else:
                cum = 0
                inner = label_text[1:-1] if label_text else ""
                for bound, count in zip(value["bounds"], value["counts"]):
                    cum += count
                    labels = (inner + "," if inner else "") + f'le="{_format_value(bound)}"'
                    lines.append(f"{name}_bucket{{{labels}}} {cum}")
                cum += value["counts"][-1]
                labels = (inner + "," if inner else "") + 'le="+Inf"'
                lines.append(f"{name}_bucket{{{labels}}} {cum}")
                lines.append(f"{name}_sum{label_text} {_format_value(value['sum'])}")
                lines.append(f"{name}_count{label_text} {cum}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_sample(line: str) -> Optional[Tuple[str, Dict[str, str], str]]:
    """Parse one exposition sample line into (name, labels, value)."""
    rest = line
    if "{" in line:
        name, _, rest = line.partition("{")
        labels_text, _, rest = rest.partition("}")
        labels: Dict[str, str] = {}
        for part in _split_labels(labels_text):
            if "=" not in part:
                return None
            k, _, v = part.partition("=")
            if not (v.startswith('"') and v.endswith('"') and len(v) >= 2):
                return None
            labels[k.strip()] = _unescape_label(v[1:-1])
        rest = rest.strip()
    else:
        name, _, rest = line.partition(" ")
        labels = {}
        rest = rest.strip()
    value = rest.split()[0] if rest.split() else ""
    return name.strip(), labels, value


_SUFFIXES = ("_total", "_bucket", "_sum", "_count", "_created")


def lint_openmetrics(text: str) -> List[str]:
    """An in-repo OpenMetrics format check (no external promtool).

    Returns a list of problems (empty = clean).  Checks: EOF marker,
    sample syntax, metric/label name validity, TYPE-before-samples,
    counter ``_total`` suffixes, histogram bucket structure (``le``
    labels, cumulative monotonicity, ``+Inf`` == ``_count``, ``_sum``
    present), and duplicate series.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    if not lines or lines[-1] != "# EOF":
        problems.append("missing terminal '# EOF' line")
    types: Dict[str, str] = {}
    seen_series: set = set()
    buckets: Dict[str, List[Tuple[float, int]]] = {}
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    body = lines[:-1] if lines and lines[-1] == "# EOF" else lines
    for lineno, line in enumerate(body, 1):
        if not line.strip():
            problems.append(f"line {lineno}: blank line in exposition")
            continue
        if line == "# EOF":
            problems.append(f"line {lineno}: '# EOF' before end of exposition")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            if parts[1] == "TYPE":
                family, kind = parts[2], (parts[3] if len(parts) > 3 else "")
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "info", "stateset", "unknown"):
                    problems.append(f"line {lineno}: unknown type {kind!r}")
                if family in types:
                    problems.append(f"line {lineno}: duplicate TYPE for {family}")
                types[family] = kind
            continue
        parsed = _parse_sample(line)
        if parsed is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, labels, value = parsed
        if not _valid_name(name):
            problems.append(f"line {lineno}: invalid metric name {name!r}")
        for label in labels:
            if not _valid_name(label, label=True) and label != "le":
                problems.append(f"line {lineno}: invalid label name {label!r}")
        try:
            number = float(value)
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value {value!r}")
            continue
        family = name
        for suffix in _SUFFIXES:
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and base in types:
                family = base
                break
        if family not in types:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
            continue
        kind = types[family]
        if kind == "counter" and not (
            name.endswith("_total") or name.endswith("_created")
        ):
            problems.append(
                f"line {lineno}: counter sample {name!r} must end in _total"
            )
        series = name + "|" + ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if series in seen_series:
            problems.append(f"line {lineno}: duplicate series {series!r}")
        seen_series.add(series)
        if kind == "histogram":
            hist_key = family + "|" + ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(f"line {lineno}: histogram bucket without le label")
                    continue
                le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
                buckets.setdefault(hist_key, []).append((le, int(number)))
            elif name.endswith("_sum"):
                sums[hist_key] = number
            elif name.endswith("_count"):
                counts[hist_key] = int(number)
    for hist_key, series_buckets in buckets.items():
        les = [le for le, _ in series_buckets]
        values = [n for _, n in series_buckets]
        if les != sorted(les):
            problems.append(f"{hist_key}: bucket le values not increasing")
        if values != sorted(values):
            problems.append(f"{hist_key}: bucket counts not cumulative")
        if not les or les[-1] != float("inf"):
            problems.append(f"{hist_key}: missing le=\"+Inf\" bucket")
        elif hist_key in counts and values[-1] != counts[hist_key]:
            problems.append(
                f"{hist_key}: +Inf bucket {values[-1]} != _count {counts[hist_key]}"
            )
        if hist_key not in sums:
            problems.append(f"{hist_key}: missing _sum sample")
        if hist_key not in counts:
            problems.append(f"{hist_key}: missing _count sample")
    return problems


# ---------------------------------------------------------------------------
# Snapshot-level helpers (shared by `repro metrics` and `repro top`)
# ---------------------------------------------------------------------------


def histogram_summary(doc: Dict[str, Any]) -> Dict[str, float]:
    """count/sum/p50/p90/p99 for one snapshot histogram entry."""
    hist = Histogram(doc["bounds"])
    hist.merge(doc["counts"], doc["sum"])
    return hist.summary()


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Exact merge of many snapshots (equal to a single combined
    registry — the property the tests assert)."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge_snapshot(snap)
    return registry.snapshot()
