"""``repro top`` — a refresh-loop text dashboard over the metrics
snapshot.

Reads the JSON snapshot ``repro batch``/``repro serve`` write (see
:meth:`repro.observe.metrics.MetricsRegistry.dump`), renders the
service's vital signs — request rates, cache effectiveness, pool
queue/latency percentiles, VM run distributions — and repeats.  Pure
text over a file: it works over ssh, in CI logs, and against a daemon
on another machine via a shared filesystem.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.observe.metrics import histogram_summary, load_snapshot

_BAR_WIDTH = 30


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _family(doc: Dict[str, Any], name: str) -> List[Tuple[str, Any]]:
    """Entries of one metric family, ``(labelled key, value)`` pairs."""
    out = []
    for section in ("counters", "gauges", "histograms"):
        for key, value in doc.get(section, {}).items():
            if key == name or key.startswith(name + "{"):
                out.append((key, value))
    return out


def _total(doc: Dict[str, Any], name: str) -> float:
    return sum(v for _, v in _family(doc, name) if isinstance(v, (int, float)))


def _labels_of(key: str) -> str:
    if "{" not in key:
        return ""
    return key[key.index("{") + 1 : -1]


def _hist_line(label: str, doc: Dict[str, Any]) -> str:
    s = histogram_summary(doc)
    return (
        f"  {label:<22s} n={int(s['count']):<8d} "
        f"p50={_fmt_seconds(s['p50']):>8s} p90={_fmt_seconds(s['p90']):>8s} "
        f"p99={_fmt_seconds(s['p99']):>8s}"
    )


def _count_hist_line(label: str, doc: Dict[str, Any]) -> str:
    s = histogram_summary(doc)
    return (
        f"  {label:<22s} n={int(s['count']):<8d} "
        f"p50={s['p50']:>10.0f} p90={s['p90']:>10.0f} p99={s['p99']:>10.0f}"
    )


def render_dashboard(snapshot: Dict[str, Any], now: Optional[float] = None) -> str:
    """One dashboard frame as text."""
    now = now if now is not None else time.time()
    age = max(0.0, now - snapshot.get("updated_s", now))
    lines: List[str] = []
    lines.append(
        f"repro top — pid {snapshot.get('pid', '?')} — "
        f"snapshot {age:.1f}s old"
    )
    lines.append("=" * 72)

    requests = _family(snapshot, "repro_requests")
    if requests:
        lines.append("requests")
        for key, value in sorted(requests):
            lines.append(f"  {_labels_of(key) or 'total':<40s} {value:>10.0f}")
    latency = _family(snapshot, "repro_request_seconds")
    for key, doc in sorted(latency):
        lines.append(_hist_line(f"latency {_labels_of(key)}", doc))

    hits = _total(snapshot, "repro_cache_hits")
    misses = _total(snapshot, "repro_cache_misses")
    if hits or misses:
        rate = hits / (hits + misses) if hits + misses else 0.0
        filled = int(rate * _BAR_WIDTH)
        lines.append("cache")
        lines.append(
            f"  hit rate  [{'#' * filled}{'.' * (_BAR_WIDTH - filled)}] "
            f"{rate:6.1%}  ({hits:.0f} hit / {misses:.0f} miss)"
        )
        for name in ("repro_cache_corruptions", "repro_cache_evictions"):
            total = _total(snapshot, name)
            if total:
                lines.append(f"  {name.split('_', 2)[2]:<10s} {total:>10.0f}")
    compile_hist = _family(snapshot, "repro_compile_seconds")
    for _, doc in compile_hist:
        lines.append(_hist_line("compile seconds", doc))

    pool_submitted = _total(snapshot, "repro_pool_submitted")
    if pool_submitted:
        lines.append("pool")
        lines.append(f"  submitted              {pool_submitted:>10.0f}")
        for key, value in sorted(_family(snapshot, "repro_pool_tasks")):
            lines.append(f"  {_labels_of(key):<22s} {value:>10.0f}")
        depth = _family(snapshot, "repro_pool_queue_depth")
        for _, value in depth:
            lines.append(f"  queue depth            {value:>10.0f}")
        for key, doc in _family(snapshot, "repro_pool_queued_seconds"):
            lines.append(_hist_line("queued", doc))
        for key, doc in _family(snapshot, "repro_pool_run_seconds"):
            lines.append(_hist_line("run", doc))
        events = sorted(_family(snapshot, "repro_pool_worker_events"))
        if events:
            lines.append(
                "  workers: "
                + "  ".join(f"{_labels_of(k)}={v:.0f}" for k, v in events)
            )

    farm_clients = _family(snapshot, "repro_serve_clients")
    farm_requests = _family(snapshot, "repro_serve_request_seconds")
    farm_rejects = sorted(_family(snapshot, "repro_serve_rejects"))
    farm_dedup = _total(snapshot, "repro_serve_inflight_dedup")
    farm_tenants = sorted(
        _family(snapshot, "repro_serve_tenant_queue_depth")
    )
    if farm_clients or farm_requests or farm_rejects or farm_dedup:
        lines.append("farm")
        for _, value in farm_clients:
            lines.append(f"  clients connected      {value:>10.0f}")
        if farm_dedup:
            lines.append(f"  dedup hits             {farm_dedup:>10.0f}")
        for key, value in farm_rejects:
            lines.append(f"  reject {_labels_of(key):<15s} {value:>10.0f}")
        inflight = sum(
            v for _, v in farm_tenants if isinstance(v, (int, float))
        )
        if farm_tenants:
            lines.append(
                f"  inflight               {inflight:>10.0f}  ("
                + "  ".join(
                    f"{_labels_of(k)}={v:.0f}" for k, v in farm_tenants
                )
                + ")"
            )
        for key, doc in sorted(farm_requests):
            lines.append(_hist_line(f"front-door {_labels_of(key)}", doc))

    traces = sorted(_family(snapshot, "repro_trace_traces"))
    if traces:
        lines.append("tracing")
        lines.append(
            "  traces: "
            + "  ".join(f"{_labels_of(k)}={v:.0f}" for k, v in traces)
        )
        spans = _total(snapshot, "repro_trace_spans")
        if spans:
            lines.append(f"  spans stored           {spans:>10.0f}")
    exemplars = snapshot.get("exemplars") or {}
    if exemplars:
        worst: Optional[Tuple[float, str, str]] = None
        for key, per_bucket in exemplars.items():
            for doc in per_bucket.values():
                value = float(doc.get("value", 0.0))
                if worst is None or value > worst[0]:
                    worst = (value, str(doc.get("trace", "?")), key)
        if worst is not None:
            lines.append(
                f"  slowest exemplar       {_fmt_seconds(worst[0]):>10s}"
                f"  trace {worst[1]}  ({worst[2]})"
            )

    vm_runs = _total(snapshot, "repro_vm_runs")
    if vm_runs:
        lines.append("vm")
        lines.append(f"  runs                   {vm_runs:>10.0f}")
        for name, label in (
            ("repro_vm_instructions", "instructions/run"),
            ("repro_vm_saves", "saves/run"),
            ("repro_vm_restores", "restores/run"),
        ):
            for _, doc in _family(snapshot, name):
                lines.append(_count_hist_line(label, doc))

    shuffle = _family(snapshot, "repro_shuffle_size")
    for _, doc in shuffle:
        lines.append("allocator")
        lines.append(_count_hist_line("shuffle moves/plan", doc))

    dumps = sorted(_family(snapshot, "repro_flight_dumps"))
    if dumps:
        lines.append(
            "flight dumps: "
            + "  ".join(f"{_labels_of(k)}={v:.0f}" for k, v in dumps)
        )
    if len(lines) == 2:
        lines.append("(no service metrics recorded yet)")
    return "\n".join(lines) + "\n"


def top_loop(
    path: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    write: Optional[Callable[[str], None]] = None,
    clear: bool = True,
) -> int:
    """The refresh loop: load → render → sleep, until *iterations*
    frames (None = forever) or interrupt.  Missing/corrupt snapshot
    files render as a waiting frame rather than erroring — the daemon
    may simply not have dumped yet."""
    import sys

    write = write or sys.stdout.write
    frame = 0
    while iterations is None or frame < iterations:
        if frame and clear:
            write("\x1b[2J\x1b[H")
        try:
            snapshot = load_snapshot(path)
        except (OSError, ValueError):
            write(f"repro top — waiting for metrics at {path}\n")
        else:
            write(render_dashboard(snapshot))
        frame += 1
        if iterations is not None and frame >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
    return 0
