"""Exporters for trace/metrics/profile data.

Three output shapes:

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format,
  loadable in ``chrome://tracing`` and Perfetto.  Spans become complete
  (``"ph": "X"``) events, point events become instants (``"ph": "i"``),
  and the per-procedure profile rides along as instant events on a
  separate "vm profile" thread.
* :func:`metrics_dict` — a flat JSON-able dict: counters (via
  ``Counters.as_dict``), per-pass timings and stats, and the optional
  per-procedure profile table.  This is what ``repro run --json``
  prints.
* :func:`text_profile` — a human-readable report: pass timing table,
  counter summary, and a hot-procedure ranking.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

_PID = 1
_TID_COMPILE = 1
_TID_PROFILE = 2


def chrome_trace(tracer, counters=None, profile=None, workers=None) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON (the object format, so metadata can
    ride along in ``otherData``).

    *workers* is an optional list of worker span payloads
    (:func:`repro.observe.tracer.span_payload`): each worker becomes
    its own process row, its span timestamps shifted onto the parent
    timeline by the wall-clock offset between the two tracers' epochs,
    so one coherent trace covers the whole multi-process service.
    """
    events: List[Dict[str, Any]] = []
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_COMPILE,
            "args": {"name": "repro"},
        }
    )
    for span in sorted(tracer.spans, key=lambda s: (s.start, -(s.dur or 0))):
        events.append(
            {
                "name": span.name,
                "cat": "pass",
                "ph": "X",
                "ts": span.start / 1000.0,
                "dur": (span.dur or 0) / 1000.0,
                "pid": _PID,
                "tid": _TID_COMPILE,
                "args": _jsonable(span.args),
            }
        )
    for event in tracer.events:
        events.append(
            {
                "name": event.name,
                "cat": "event",
                "ph": "i",
                "ts": event.ts / 1000.0,
                "s": "t",
                "pid": _PID,
                "tid": _TID_COMPILE,
                "args": _jsonable(event.args),
            }
        )
    if profile is not None:
        end_ts = max(
            [((s.start + (s.dur or 0)) / 1000.0) for s in tracer.spans],
            default=0.0,
        )
        for row in profile.as_rows():
            events.append(
                {
                    "name": f"proc {row['label']}",
                    "cat": "vm-profile",
                    "ph": "i",
                    "ts": end_ts,
                    "s": "t",
                    "pid": _PID,
                    "tid": _TID_PROFILE,
                    "args": row,
                }
            )
    if workers:
        parent_epoch = getattr(tracer, "wall_epoch_ns", None)
        trace_id = getattr(tracer, "trace_id", None)
        for n, payload in enumerate(workers, 1):
            if trace_id and payload.get("trace_id") not in (None, trace_id):
                continue  # a stale payload from some other trace
            pid = payload.get("pid") or (_PID + n)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": _TID_COMPILE,
                    "args": {"name": f"repro worker (pid {pid})"},
                }
            )
            # Clock offset: the worker's wall epoch minus the parent's,
            # in microseconds (chrome ts units).
            offset_us = 0.0
            if parent_epoch is not None and payload.get("wall_epoch_ns") is not None:
                offset_us = (payload["wall_epoch_ns"] - parent_epoch) / 1000.0
            for span in payload.get("spans", ()):
                events.append(
                    {
                        "name": span["name"],
                        "cat": "pass",
                        "ph": "X",
                        "ts": offset_us + span["start"] / 1000.0,
                        "dur": (span["dur"] or 0) / 1000.0,
                        "pid": pid,
                        "tid": _TID_COMPILE,
                        "args": _jsonable(span.get("args", {})),
                    }
                )
    out: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    other: Dict[str, Any] = {}
    if counters is not None:
        other["counters"] = counters.as_dict()
    if getattr(tracer, "trace_id", None):
        other["trace_id"] = tracer.trace_id
    if other:
        out["otherData"] = other
    return out


def metrics_dict(
    counters=None,
    tracer=None,
    profile=None,
    value: Optional[str] = None,
    output: Optional[str] = None,
) -> Dict[str, Any]:
    """The flat metrics document: counters + per-pass data + profile."""
    doc: Dict[str, Any] = {}
    if value is not None:
        doc["value"] = value
    if output:
        doc["output"] = output
    if counters is not None:
        doc["counters"] = counters.as_dict()
    if tracer is not None and tracer.enabled:
        passes: Dict[str, Dict[str, Any]] = {}
        for span in sorted(tracer.spans, key=lambda s: s.start):
            entry = passes.setdefault(span.name, {"seconds": 0.0})
            entry["seconds"] += span.dur_s
            for key, val in span.args.items():
                entry[key] = _jsonable(val)
        doc["passes"] = passes
        if tracer.events:
            doc["events"] = [
                {"name": e.name, "ts_us": e.ts / 1000.0, **_jsonable(e.args)}
                for e in tracer.events
            ]
    if profile is not None:
        doc["procedures"] = profile.as_rows()
    return doc


def text_profile(counters=None, tracer=None, profile=None, top: int = 20) -> str:
    """Human-readable profile report."""
    lines: List[str] = []
    if tracer is not None and tracer.enabled and tracer.spans:
        lines.append("compiler passes")
        lines.append("-" * 52)
        for span in sorted(tracer.spans, key=lambda s: s.start):
            indent = "  " * span.depth
            stats = " ".join(
                f"{k}={v}" for k, v in span.args.items() if not k.endswith("_s")
            )
            lines.append(
                f"  {indent}{span.name:<18s} {span.dur_s * 1e3:9.3f} ms"
                + (f"  {stats}" if stats else "")
            )
        lines.append("")
    if counters is not None:
        c = counters.as_dict()
        lines.append("counters")
        lines.append("-" * 52)
        for key in (
            "instructions",
            "cycles",
            "stack_refs",
            "saves",
            "restores",
            "calls",
            "tail_calls",
            "moves",
        ):
            lines.append(f"  {key:<14s} {c[key]:>14,}")
        lines.append("")
    if profile is not None:
        total_cycles = sum(p.cycles for p in profile.profiles.values()) or 1
        lines.append(f"hot procedures (top {top}, by attributed cycles)")
        lines.append("-" * 78)
        lines.append(
            f"  {'procedure':<22s} {'cycles':>12s} {'%':>6s} {'instrs':>10s} "
            f"{'refs':>8s} {'saves':>6s} {'rest.':>6s}"
        )
        for prof in profile.hot(top):
            lines.append(
                f"  {prof.label[:22]:<22s} {prof.cycles:>12,} "
                f"{prof.cycles / total_cycles:>6.1%} {prof.instructions:>10,} "
                f"{prof.total_stack_refs:>8,} {prof.saves:>6,} {prof.restores:>6,}"
            )
        lines.append("")
    return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    """Coerce span/event attribute payloads to JSON-able shapes."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
