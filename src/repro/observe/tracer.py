"""The tracer: a low-overhead span/event recorder with a no-op default.

Two implementations share the same duck type:

* :class:`Tracer` records spans (``with tracer.span("expand"): ...``)
  and events (``tracer.event("save", reg=..., proc=...)``) with
  nanosecond timestamps.
* :class:`NullTracer` — the module-level :data:`NULL_TRACER` singleton
  is the default everywhere — short-circuits both methods.  ``span``
  returns a shared, reusable null context manager and ``event``
  returns immediately, so instrumented code pays (nearly) nothing when
  tracing is off.  Hot loops (the VM dispatch path) go one step
  further and branch on ``tracer.enabled`` / ``profiler is None`` so
  they make **no** tracer calls at all.

Code that wants to instrument should accept a ``tracer`` parameter
defaulting to ``None`` and resolve it with :func:`tracer_for` or
``tracer or NULL_TRACER``.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.observe.events import Event, Span


class TraceError(Exception):
    """Raised on malformed span nesting (exiting a span that is not
    the innermost open one)."""


def new_trace_id() -> str:
    """A 16-hex-digit trace id (random, per top-level operation)."""
    return os.urandom(8).hex()


class _NullSpan:
    """A reusable no-op context manager; one shared instance serves
    every ``NullTracer.span`` call (no per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self

    @property
    def dur_s(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: records nothing, allocates nothing."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **args: Any) -> None:
        return None

    @property
    def spans(self) -> tuple:
        return ()

    @property
    def events(self) -> tuple:
        return ()


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans and events.

    ``clock`` is injectable (a callable returning nanoseconds) so tests
    can be deterministic; it defaults to :func:`time.perf_counter_ns`.
    Finished spans are appended to :attr:`spans` in completion order;
    use :attr:`Span.start` to sort chronologically.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        trace_id: Optional[str] = None,
    ) -> None:
        self._clock = clock
        self.epoch = clock()
        # Wall-clock anchor for cross-process merging: a child process'
        # span timestamps are shifted onto the parent timeline by the
        # difference of the two tracers' wall epochs (the clock offset
        # of the propagated trace context).
        self.wall_epoch_ns = time.time_ns()
        self.trace_id = trace_id or new_trace_id()
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self._stack: List[Span] = []

    def now(self) -> int:
        """Nanoseconds since this tracer was created."""
        return self._clock() - self.epoch

    # -- recording ------------------------------------------------------

    def span(self, name: str, **args: Any) -> Span:
        return Span(self, name, args)

    def event(self, name: str, **args: Any) -> None:
        self.events.append(Event(name, self.now(), args))

    def _enter(self, span: Span) -> None:
        span.start = self.now()
        span.depth = len(self._stack)
        span.parent = self._stack[-1].name if self._stack else None
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise TraceError(
                f"span {span.name!r} closed out of order "
                f"(open: {[s.name for s in self._stack]})"
            )
        self._stack.pop()
        span.dur = self.now() - span.start
        self.spans.append(span)

    # -- queries --------------------------------------------------------

    @property
    def open_spans(self) -> List[str]:
        return [s.name for s in self._stack]

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def pass_timings(self) -> Dict[str, float]:
        """Total seconds per span name (aggregated across repeats)."""
        out: Dict[str, float] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0.0) + s.dur_s
        return out

    # -- cross-process propagation --------------------------------------

    def context(self, parent_span: Optional[str] = None) -> Dict[str, Any]:
        """The trace context propagated to child processes: trace id,
        the parent span the child's work hangs under, and this tracer's
        wall-clock epoch (so the child can be merged with an exact
        clock offset)."""
        return {
            "trace_id": self.trace_id,
            "parent_span": parent_span
            or (self._stack[-1].name if self._stack else None),
            "wall_epoch_ns": self.wall_epoch_ns,
            "pid": os.getpid(),
        }

    def export_spans(self) -> List[Dict[str, Any]]:
        """Finished spans as plain picklable data, for shipping across
        a process boundary (see :func:`span_payload`)."""
        return [
            {
                "name": s.name,
                "start": s.start,
                "dur": s.dur or 0,
                "depth": s.depth,
                "parent": s.parent,
                "args": dict(s.args),
            }
            for s in self.spans
        ]


def span_payload(tracer: "Tracer", context: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Everything a worker ships so its spans merge into the parent's
    timeline: the spans, the worker's own wall epoch (for the clock
    offset), its pid, and the trace context it inherited."""
    return {
        "pid": os.getpid(),
        "wall_epoch_ns": tracer.wall_epoch_ns,
        "trace_id": (context or {}).get("trace_id", tracer.trace_id),
        "parent_span": (context or {}).get("parent_span"),
        "spans": tracer.export_spans(),
    }


def tracer_for(config) -> "Tracer | NullTracer":
    """The tracer implied by a :class:`CompilerConfig`: a recording
    tracer when its ``trace`` knob is anything but ``"off"``."""
    if getattr(config, "trace", "off") != "off":
        return Tracer()
    return NULL_TRACER
