"""``repro.observe.spanstore`` — a bounded, append-only span store.

Request traces (:mod:`repro.observe.reqtrace`) land here as JSON lines,
one span record per line, grouped per trace (a whole trace is appended
in one call, after the tail sampler keeps it).  The store is a
directory of size-capped segments::

    <dir>/spans-000001.jsonl
    <dir>/spans-000002.jsonl        # rotated when the cap is reached

Writes rotate to a fresh segment once the current one passes
``max_segment_bytes`` and delete the oldest segment past
``max_segments`` — the store is bounded by construction, so a daemon
can trace forever without filling a disk.  Reads
(:func:`iter_records`, :func:`load_trace`, :func:`trace_summaries`)
tolerate a torn or corrupt line (a crash mid-append, a truncated
copy): bad lines are skipped, everything else is served.

A span record is flat and self-describing, so segments from several
processes (daemon + workers via the daemon) and several daemons can be
read together::

    {"trace": "9f…", "span": "03…", "parent": "01…"|null,
     "name": "request", "start_ns": <wall ns>, "dur_ns": <ns>,
     "pid": 1234, "service": "net", "attrs": {...}}

``start_ns`` is *wall-clock* nanoseconds — each recording process
anchors its monotonic clock to ``time.time_ns()`` once (the PR 5
trace-context machinery), so spans from different processes order and
nest correctly modulo host clock skew.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

_SEGMENT_PREFIX = "spans-"
_SEGMENT_SUFFIX = ".jsonl"

DEFAULT_SEGMENT_BYTES = 4 << 20
DEFAULT_MAX_SEGMENTS = 8

#: Span-name → critical-path category (see :func:`critical_path`).
CATEGORIES: Dict[str, str] = {
    "intake": "intake",
    "admission": "admission",
    "dedup": "admission",
    "queue": "queue",
    "wait": "queue",
    "run": "compile",
    "compile": "compile",
    "compile-core": "compile",
    "read": "compile",
    "expand": "compile",
    "convert": "compile",
    "lambda-lift": "compile",
    "closure": "compile",
    "allocate": "compile",
    "codegen": "compile",
    "execute": "compile",
    "cache": "cache",
    "cache.lookup": "cache",
    "respond": "write",
}


def category_of(name: str) -> str:
    return CATEGORIES.get(name, "other")


class SpanStore:
    """The write side: thread-safe, size-capped, append-only."""

    def __init__(
        self,
        directory: str,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        registry=None,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.directory = directory
        self.max_segment_bytes = max_segment_bytes
        self.max_segments = max_segments
        self.registry = registry
        self.spans_written = 0
        self.bytes_written = 0
        self.rotations = 0
        self._lock = threading.Lock()
        self._segment: Optional[str] = None
        self._segment_bytes = 0

    # -- writing --------------------------------------------------------

    def append_trace(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append one trace's records (one JSON line each) to the
        current segment, rotating first when it is over the cap.
        Returns the number of spans written."""
        lines = [json.dumps(record, separators=(",", ":")) for record in records]
        if not lines:
            return 0
        payload = "\n".join(lines) + "\n"
        data = payload.encode("utf-8")
        with self._lock:
            path = self._current_segment_locked()
            if self._segment_bytes and self._segment_bytes + len(data) > self.max_segment_bytes:
                path = self._rotate_locked()
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(payload)
            self._segment_bytes += len(data)
            self.spans_written += len(lines)
            self.bytes_written += len(data)
        self._count(len(lines), len(data))
        return len(lines)

    def _count(self, spans: int, nbytes: int) -> None:
        registry = self.registry
        if registry is not None and registry.enabled:
            from repro.observe.catalog import declare

            declare(registry, "repro_trace_spans").inc(spans)
            declare(registry, "repro_trace_bytes_written").inc(nbytes)

    def _current_segment_locked(self) -> str:
        if self._segment is None:
            os.makedirs(self.directory, exist_ok=True)
            existing = _segments(self.directory)
            if existing:
                self._segment = existing[-1]
                try:
                    self._segment_bytes = os.path.getsize(self._segment)
                except OSError:
                    self._segment_bytes = 0
            else:
                self._segment = self._segment_path(1)
                self._segment_bytes = 0
        return self._segment

    def _rotate_locked(self) -> str:
        assert self._segment is not None
        index = _segment_index(self._segment) + 1
        self._segment = self._segment_path(index)
        self._segment_bytes = 0
        self.rotations += 1
        registry = self.registry
        if registry is not None and registry.enabled:
            from repro.observe.catalog import declare

            declare(registry, "repro_trace_segment_rotations").inc()
        # Enforce the segment-count bound: drop the oldest.
        for stale in _segments(self.directory)[: -(self.max_segments - 1) or None]:
            if _segment_index(stale) < index - self.max_segments + 1:
                try:
                    os.remove(stale)
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        return self._segment

    def _segment_path(self, index: int) -> str:
        return os.path.join(
            self.directory, f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"
        )


def _segments(directory: str) -> List[str]:
    """Segment paths, oldest first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    out = [
        os.path.join(directory, name)
        for name in names
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
    ]
    return sorted(out, key=_segment_index)


def _segment_index(path: str) -> int:
    name = os.path.basename(path)
    digits = name[len(_SEGMENT_PREFIX): -len(_SEGMENT_SUFFIX)]
    try:
        return int(digits)
    except ValueError:
        return 0


# ---------------------------------------------------------------------------
# Reading (corruption-tolerant)
# ---------------------------------------------------------------------------


def iter_records(directory: str) -> Iterator[Dict[str, Any]]:
    """Every span record in the store, oldest segment first.  Corrupt
    or torn lines are skipped, not raised."""
    for path in _segments(directory):
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict) and "trace" in record:
                        yield record
        except OSError:  # pragma: no cover - segment removed mid-read
            continue


def load_trace(directory: str, trace_id: str) -> List[Dict[str, Any]]:
    """All records of one trace; *trace_id* may be a unique prefix."""
    exact = [r for r in iter_records(directory) if r.get("trace") == trace_id]
    if exact:
        return exact
    matches: Dict[str, List[Dict[str, Any]]] = {}
    for record in iter_records(directory):
        tid = str(record.get("trace"))
        if tid.startswith(trace_id):
            matches.setdefault(tid, []).append(record)
    if not matches:
        return []
    if len(matches) > 1:
        raise ValueError(
            f"trace prefix {trace_id!r} is ambiguous "
            f"({', '.join(sorted(matches))})"
        )
    return next(iter(matches.values()))


def trace_summaries(directory: str) -> List[Dict[str, Any]]:
    """One summary row per trace, newest first: id, root span name,
    status, start, duration, span count, and the pids involved."""
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for record in iter_records(directory):
        by_trace.setdefault(str(record["trace"]), []).append(record)
    out = []
    for trace_id, records in by_trace.items():
        root = _root_of(records)
        out.append(
            {
                "trace": trace_id,
                "name": root.get("name") if root else "?",
                "status": (root.get("attrs") or {}).get("status")
                if root
                else None,
                "op": (root.get("attrs") or {}).get("op") if root else None,
                "start_ns": min(r.get("start_ns", 0) for r in records),
                "dur_ns": root.get("dur_ns", 0) if root else 0,
                "spans": len(records),
                "pids": sorted({r.get("pid") for r in records if r.get("pid")}),
            }
        )
    out.sort(key=lambda row: row["start_ns"], reverse=True)
    return out


def slowest_traces(directory: str, k: int = 5) -> List[Dict[str, Any]]:
    rows = trace_summaries(directory)
    rows.sort(key=lambda row: row["dur_ns"], reverse=True)
    return rows[:k]


def _root_of(records: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    ids = {r.get("span") for r in records}
    roots = [r for r in records if r.get("parent") not in ids]
    if not roots:
        return None
    return min(roots, key=lambda r: r.get("start_ns", 0))


# ---------------------------------------------------------------------------
# Tree reconstruction + rendering
# ---------------------------------------------------------------------------


def build_tree(
    records: List[Dict[str, Any]],
) -> List[Tuple[Dict[str, Any], List]]:
    """Nest one trace's records as ``(record, children)`` pairs, roots
    first, children ordered by start time.  A record whose parent is
    missing (sampled away, torn line) becomes a root rather than being
    dropped."""
    ids = {r.get("span"): r for r in records}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in records:
        parent = record.get("parent")
        key = parent if parent in ids else None
        children.setdefault(key, []).append(record)

    def nest(record: Dict[str, Any]):
        kids = sorted(
            children.get(record.get("span"), []),
            key=lambda r: r.get("start_ns", 0),
        )
        return (record, [nest(kid) for kid in kids])

    roots = sorted(children.get(None, []), key=lambda r: r.get("start_ns", 0))
    return [nest(root) for root in roots]


def render_tree(records: List[Dict[str, Any]]) -> str:
    """A text rendering of one trace — the ``repro spans show`` body."""
    if not records:
        return "(no spans)\n"
    base = min(r.get("start_ns", 0) for r in records)
    lines: List[str] = []

    def fmt(node, depth: int) -> None:
        record, kids = node
        offset_ms = (record.get("start_ns", 0) - base) / 1e6
        dur_ms = record.get("dur_ns", 0) / 1e6
        attrs = record.get("attrs") or {}
        extras = " ".join(
            f"{key}={attrs[key]}"
            for key in sorted(attrs)
            if attrs[key] is not None
        )
        lines.append(
            f"  {'  ' * depth}{record.get('name', '?'):<{max(1, 24 - 2 * depth)}s}"
            f" +{offset_ms:9.3f}ms {dur_ms:9.3f}ms"
            f"  [pid {record.get('pid', '?')}]"
            + (f"  {extras}" if extras else "")
        )
        for kid in kids:
            fmt(kid, depth + 1)

    trace_id = records[0].get("trace")
    lines.insert(0, f"trace {trace_id} — {len(records)} span(s)")
    lines.insert(1, f"  {'span':<24s} {'offset':>11s} {'duration':>10s}")
    for root in build_tree(records):
        fmt(root, 0)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Critical-path attribution
# ---------------------------------------------------------------------------


def self_times(records: List[Dict[str, Any]]) -> Dict[str, int]:
    """Per-span *self* time (duration minus child durations, floored at
    zero), keyed by span id."""
    out: Dict[str, int] = {}

    def walk(node) -> None:
        record, kids = node
        child_ns = sum(kid[0].get("dur_ns", 0) for kid in kids)
        out[record.get("span")] = max(0, record.get("dur_ns", 0) - child_ns)
        for kid in kids:
            walk(kid)

    for root in build_tree(records):
        walk(root)
    return out


def critical_path(records: List[Dict[str, Any]]) -> Dict[str, float]:
    """Seconds of self time per category (admission / queue / compile /
    cache / write / intake / other) for one trace — where the request's
    wall-clock actually went."""
    selfs = self_times(records)
    by_id = {r.get("span"): r for r in records}
    out: Dict[str, float] = {}
    for span_id, self_ns in selfs.items():
        record = by_id[span_id]
        category = category_of(str(record.get("name", "")))
        out[category] = out.get(category, 0.0) + self_ns / 1e9
    return out


def critical_path_summary(
    traces: List[List[Dict[str, Any]]],
) -> Dict[str, float]:
    """Aggregate :func:`critical_path` over several traces."""
    out: Dict[str, float] = {}
    for records in traces:
        for category, seconds in critical_path(records).items():
            out[category] = out.get(category, 0.0) + seconds
    return out


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------


def chrome_trace_from_records(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """One trace's records as Chrome ``trace_event`` JSON (each pid its
    own process row, timestamps relative to the trace start)."""
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(r.get("start_ns", 0) for r in records)
    events: List[Dict[str, Any]] = []
    for pid in sorted({r.get("pid", 0) for r in records}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": f"repro (pid {pid})"},
            }
        )
    for record in sorted(records, key=lambda r: r.get("start_ns", 0)):
        events.append(
            {
                "name": record.get("name", "?"),
                "cat": record.get("service", "request"),
                "ph": "X",
                "ts": (record.get("start_ns", 0) - base) / 1000.0,
                "dur": record.get("dur_ns", 0) / 1000.0,
                "pid": record.get("pid", 0),
                "tid": 1,
                "args": record.get("attrs") or {},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": records[0].get("trace")},
    }
