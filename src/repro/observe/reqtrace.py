"""``repro.observe.reqtrace`` — per-request distributed tracing.

Every request entering the system (TCP front door, stdio daemon,
``repro batch``, loadgen) gets a **trace ID** and a tree of spans
covering its full lifecycle: intake/parse, admission, single-flight
dedup, queue, the worker's per-pass compile spans (the PR 1
:class:`~repro.observe.tracer.Tracer` runs inside the worker and its
spans are re-parented under the request via the trace context shipped
in the task tuple), cache-tier lookups, and the response write.

The design follows Dapper / OpenTelemetry practice, scaled down:

* **Context propagation** — a simplified ``traceparent`` of the form
  ``"<trace 16 hex>-<span 16 hex>"`` rides the JSON-lines protocol.
  A client (loadgen) that sends one owns the trace ID; the daemon's
  root request span becomes a child of the client span, and every
  response echoes the ``traceparent`` so the client can log it.
* **Clock-offset correction** — spans carry *absolute wall-clock*
  nanoseconds: each process anchors ``time.time_ns()`` against
  ``time.perf_counter_ns()`` once and derives every timestamp from the
  monotonic clock (the PR 5 trace-context machinery), so daemon and
  worker spans nest correctly without a shared clock.
* **Tail-based sampling** — the keep/drop decision happens at the
  *end* of the request, when its status and latency are known:
  error/overloaded/timeout traces are always kept, so are the
  slowest-k per window, and the rest are sampled at ``rate``.
* **Exemplars** — request-latency histogram buckets remember one
  concrete trace ID each (see
  :meth:`~repro.observe.metrics.MetricsRegistry.record_exemplar`), so
  ``repro top`` and SLO failures can name an offending trace.

Kept traces land in the bounded :class:`~repro.observe.spanstore.SpanStore`
and are queried with ``repro spans list/show/slowest/export``.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.observe.recorder import set_active_trace
from repro.observe.spanstore import SpanStore


def new_trace_id() -> str:
    return os.urandom(8).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


def format_traceparent(trace_id: str, span_id: str) -> str:
    return f"{trace_id}-{span_id}"


def parse_traceparent(text: Any) -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` from a ``traceparent`` header value, or
    ``None`` when malformed (a bad header never fails a request)."""
    if not isinstance(text, str):
        return None
    parts = text.strip().split("-")
    if len(parts) != 2:
        return None
    trace_id, span_id = parts
    if len(trace_id) != 16 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return trace_id.lower(), span_id.lower()


class TailSampler:
    """Decides *after* a request finishes whether its trace is kept.

    * any non-``ok`` status (error, overloaded, timeout, …) → kept,
      reason ``"error"`` — always, regardless of ``rate``;
    * the ``slowest_k`` requests per ``window`` decisions → kept,
      reason ``"slow"``;
    * otherwise kept with probability ``rate`` (reason ``"sampled"``)
      or dropped (reason ``"dropped"``).
    """

    def __init__(
        self,
        rate: float = 1.0,
        slowest_k: int = 4,
        window: int = 256,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.slowest_k = slowest_k
        self.window = window
        self._rng = random.Random(seed)
        self._seen = 0
        self._slowest: List[float] = []  # ascending, at most slowest_k

    def decide(self, status: str, latency_s: float) -> Tuple[bool, str]:
        if status != "ok":
            return True, "error"
        self._seen += 1
        if self._seen > self.window:
            self._seen = 1
            self._slowest = []
        slow = False
        if self.slowest_k > 0:
            if len(self._slowest) < self.slowest_k:
                slow = True
            elif latency_s > self._slowest[0]:
                slow = True
                self._slowest.pop(0)
            if slow:
                self._slowest.append(latency_s)
                self._slowest.sort()
        if slow:
            return True, "slow"
        if self.rate >= 1.0 or self._rng.random() < self.rate:
            return True, "sampled"
        return False, "dropped"


class _Span:
    __slots__ = ("span_id", "name", "start_ns", "attrs", "parent")

    def __init__(self, span_id: str, name: str, start_ns: int,
                 attrs: Dict[str, Any], parent: Optional[str]) -> None:
        self.span_id = span_id
        self.name = name
        self.start_ns = start_ns
        self.attrs = attrs
        self.parent = parent


class _SpanHandle:
    """Context manager returned by :meth:`RequestTrace.span`."""

    def __init__(self, trace: "RequestTrace", span: _Span) -> None:
        self._trace = trace
        self._span = span

    @property
    def span_id(self) -> str:
        return self._span.span_id

    def set(self, **attrs: Any) -> None:
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._trace._pop(self._span)


class RequestTrace:
    """One request's span tree, buffered until :meth:`finish` lets the
    tail sampler decide its fate."""

    def __init__(
        self,
        tracer: "ReqTracer",
        trace_id: str,
        parent_span: Optional[str] = None,
        name: str = "request",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.wall_epoch_ns = time.time_ns()
        self._epoch = time.perf_counter_ns()
        self.records: List[Dict[str, Any]] = []
        self._stack: List[_Span] = []
        self.root = _Span(
            new_span_id(), name, self.wall_epoch_ns, dict(attrs or {}),
            parent_span,
        )
        self.finished = False
        self.decision: Optional[str] = None

    # -- clock ----------------------------------------------------------

    def now_ns(self) -> int:
        return self.wall_epoch_ns + (time.perf_counter_ns() - self._epoch)

    # -- span API -------------------------------------------------------

    @property
    def current_span(self) -> str:
        return self._stack[-1].span_id if self._stack else self.root.span_id

    def traceparent(self) -> str:
        return format_traceparent(self.trace_id, self.root.span_id)

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        span = _Span(new_span_id(), name, self.now_ns(), dict(attrs),
                     self.current_span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _pop(self, span: _Span) -> None:
        if span in self._stack:
            # Pop anything left dangling below it too (exception paths).
            while self._stack:
                top = self._stack.pop()
                self._emit(top, self.now_ns())
                if top is span:
                    break

    def _emit(self, span: _Span, end_ns: int) -> None:
        self.record(
            span.name,
            span.start_ns,
            max(0, end_ns - span.start_ns),
            parent=span.parent,
            span_id=span.span_id,
            **span.attrs,
        )

    def record(
        self,
        name: str,
        start_ns: int,
        dur_ns: int,
        parent: Optional[str] = None,
        span_id: Optional[str] = None,
        **attrs: Any,
    ) -> str:
        """Append one explicit span record (for intervals measured
        elsewhere — intake timed before the trace existed, queue/run
        times reported by the pool).  Returns the span id."""
        sid = span_id or new_span_id()
        self.records.append(
            {
                "trace": self.trace_id,
                "span": sid,
                "parent": self.root.span_id if parent is None else parent,
                "name": name,
                "start_ns": int(start_ns),
                "dur_ns": int(dur_ns),
                "pid": os.getpid(),
                "service": self.tracer.service,
                "attrs": attrs or {},
            }
        )
        return sid

    # -- cross-process --------------------------------------------------

    def context(self, parent: Optional[str] = None) -> Dict[str, Any]:
        """The plain-data trace context shipped to a worker — the same
        shape :meth:`repro.observe.tracer.Tracer.context` produces, so
        ``serve/work.py`` forwards it unchanged."""
        return {
            "trace_id": self.trace_id,
            "parent_span": parent or self.current_span,
            "wall_epoch_ns": self.wall_epoch_ns,
            "pid": os.getpid(),
        }

    def absorb_payload(
        self, payload: Optional[Dict[str, Any]], parent: Optional[str] = None
    ) -> int:
        """Convert a worker's :func:`~repro.observe.tracer.span_payload`
        into absolute-time records under *parent*.

        Worker spans carry monotonic offsets from the worker's own
        anchor plus the worker's ``wall_epoch_ns`` — adding them yields
        wall-clock nanoseconds comparable with daemon spans.  Parentage
        inside the payload is reconstructed from span intervals (the
        worker tracer names parents, it does not give them ids)."""
        if not payload or payload.get("trace_id") not in (None, self.trace_id):
            return 0
        spans = payload.get("spans") or []
        if not spans:
            return 0
        epoch = int(payload.get("wall_epoch_ns") or self.wall_epoch_ns)
        pid = payload.get("pid")
        base_parent = parent or self.current_span
        ordered = sorted(
            (dict(span) for span in spans),
            key=lambda s: (s.get("start", 0), -s.get("dur", 0)),
        )
        open_stack: List[Tuple[int, str]] = []  # (end_ns, span_id)
        count = 0
        for span in ordered:
            start = epoch + int(span.get("start", 0))
            dur = int(span.get("dur", 0))
            while open_stack and open_stack[-1][0] <= start:
                open_stack.pop()
            parent_id = open_stack[-1][1] if open_stack else base_parent
            attrs = dict(span.get("args") or {})
            sid = new_span_id()
            self.records.append(
                {
                    "trace": self.trace_id,
                    "span": sid,
                    "parent": parent_id,
                    "name": span.get("name", "?"),
                    "start_ns": start,
                    "dur_ns": dur,
                    "pid": pid,
                    "service": "worker",
                    "attrs": attrs,
                }
            )
            open_stack.append((start + dur, sid))
            count += 1
        return count

    def _normalize(self) -> None:
        """Expand every parent to cover its children.  Spans timed on
        different clocks (a run window reconstructed from the pool's
        ``run_s`` vs. worker spans on the worker's wall anchor) can
        disagree by the result-queue latency; nesting must still be
        monotonic for the tree to read truthfully."""
        by_id = {r["span"]: r for r in self.records}
        kids: Dict[str, List[Dict[str, Any]]] = {}
        for record in self.records:
            parent = record.get("parent")
            if parent in by_id:
                kids.setdefault(parent, []).append(record)

        def walk(record: Dict[str, Any]) -> None:
            end = record["start_ns"] + record["dur_ns"]
            for kid in kids.get(record["span"], ()):
                walk(kid)
                record["start_ns"] = min(record["start_ns"], kid["start_ns"])
                end = max(end, kid["start_ns"] + kid["dur_ns"])
            record["dur_ns"] = end - record["start_ns"]

        for record in self.records:
            if record.get("parent") not in by_id:
                walk(record)

    # -- finish ---------------------------------------------------------

    def finish(self, status: str = "ok", **attrs: Any) -> Tuple[bool, str]:
        """Close the root span, let the sampler decide, and (when kept)
        write the whole trace to the span store.  Idempotent."""
        if self.finished:
            return self.decision not in (None, "dropped"), self.decision or "dropped"
        self.finished = True
        end_ns = self.now_ns()
        while self._stack:  # close anything left open (error paths)
            self._emit(self._stack.pop(), end_ns)
        root = self.root
        root.attrs.update(attrs)
        root.attrs["status"] = status
        latency_s = (end_ns - root.start_ns) / 1e9
        self.latency_s = latency_s
        self.record(
            root.name,
            root.start_ns,
            end_ns - root.start_ns,
            parent=root.parent or "",
            span_id=root.span_id,
            **root.attrs,
        )
        # The explicit-parent convention above uses "" to mean "root":
        # record() would have substituted root.span_id for None.
        self.records[-1]["parent"] = root.parent
        self._normalize()
        keep, reason = self.tracer.sampler.decide(status, latency_s)
        self.decision = reason
        if keep:
            self.tracer.store.append_trace(self.records)
        self.tracer._count_trace(reason)
        set_active_trace(None)
        return keep, reason


class ReqTracer:
    """The per-daemon request-tracing front end: hands out
    :class:`RequestTrace` objects and owns the store + sampler."""

    def __init__(
        self,
        store: Optional[SpanStore],
        sampler: Optional[TailSampler] = None,
        registry=None,
        service: str = "serve",
    ) -> None:
        self.store = store
        self.sampler = sampler or TailSampler()
        self.registry = registry
        self.service = service

    @property
    def enabled(self) -> bool:
        return self.store is not None

    def start(
        self,
        name: str = "request",
        traceparent: Any = None,
        **attrs: Any,
    ) -> Optional[RequestTrace]:
        """Begin a trace (or ``None`` when tracing is off — callers
        guard every touch behind ``if trace is not None``, so disabled
        tracing costs one attribute check)."""
        if not self.enabled:
            return None
        parsed = parse_traceparent(traceparent)
        if parsed is not None:
            trace_id, parent_span = parsed
        else:
            trace_id, parent_span = new_trace_id(), None
        trace = RequestTrace(self, trace_id, parent_span, name, attrs)
        set_active_trace(trace_id)
        return trace

    def _count_trace(self, decision: str) -> None:
        registry = self.registry
        if registry is not None and registry.enabled:
            from repro.observe.catalog import declare

            declare(registry, "repro_trace_traces").labels(
                decision=decision
            ).inc()

    def exemplar(
        self,
        name: str,
        label_names: Tuple[str, ...],
        label_values: Tuple[str, ...],
        value: float,
        trace_id: str,
    ) -> None:
        """Attach *trace_id* as the exemplar for the latency bucket
        *value* falls into (no-op when metrics are off)."""
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.record_exemplar(
                name, label_names, label_values, value, trace_id
            )


def build_reqtracer(
    trace_dir: Optional[str],
    sample: float = 1.0,
    registry=None,
    service: str = "serve",
    seed: Optional[int] = None,
) -> Optional[ReqTracer]:
    """The standard construction path used by serve/batch/CLI: ``None``
    when no trace directory is configured (tracing off)."""
    if not trace_dir:
        return None
    store = SpanStore(trace_dir, registry=registry)
    sampler = TailSampler(rate=sample, seed=seed)
    return ReqTracer(store, sampler, registry=registry, service=service)
