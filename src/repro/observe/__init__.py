"""``repro.observe`` — tracing, metrics, and profiling.

The subsystem the paper's evaluation section implies: spans over every
compiler pass, per-procedure VM profiles that attribute the Table 3 /
Figure 2 counters to code objects, and exporters for Chrome
``trace_event`` JSON, flat metrics JSON, and human-readable text.

The default :data:`NULL_TRACER` is a no-op; hot paths guard on
``tracer.enabled`` (or ``profiler is None``) so observability costs
nothing when off.
"""

from repro.observe.events import Event, Span
from repro.observe.export import chrome_trace, metrics_dict, text_profile
from repro.observe.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    lint_openmetrics,
    load_snapshot,
    render_openmetrics,
)
from repro.observe.profile import ProcProfile, VMProfiler
from repro.observe.recorder import (
    FLIGHT_RECORDER,
    FlightRecorder,
    active_trace,
    get_flight_recorder,
    set_active_trace,
)
from repro.observe.reqtrace import (
    ReqTracer,
    RequestTrace,
    TailSampler,
    build_reqtracer,
    format_traceparent,
    parse_traceparent,
)
from repro.observe.spanstore import SpanStore
from repro.observe.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceError,
    Tracer,
    new_trace_id,
    span_payload,
    tracer_for,
)

__all__ = [
    "Event",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceError",
    "tracer_for",
    "new_trace_id",
    "span_payload",
    "ProcProfile",
    "VMProfiler",
    "chrome_trace",
    "metrics_dict",
    "text_profile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "render_openmetrics",
    "lint_openmetrics",
    "load_snapshot",
    "FlightRecorder",
    "FLIGHT_RECORDER",
    "get_flight_recorder",
    "active_trace",
    "set_active_trace",
    "ReqTracer",
    "RequestTrace",
    "TailSampler",
    "SpanStore",
    "build_reqtracer",
    "format_traceparent",
    "parse_traceparent",
]
