"""The metric catalog: every metric the repro service exposes.

One declaration per metric family — name, type, help text, label
names, and (for histograms) the fixed bucket family.  Instrumentation
sites resolve families through :func:`declare`, so a metric can never
be emitted that is not in the catalog, and the table in
``docs/observability.md`` is checked against this module by
``tests/observe/test_metrics.py``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.observe.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)

#: (name, kind, labels, buckets, help)
CATALOG: Tuple[Tuple[str, str, Tuple[str, ...], Optional[Sequence[float]], str], ...] = (
    # -- compile cache (repro.serve.cache) -----------------------------
    ("repro_cache_hits", "counter", ("tier",),
     None, "Compile-cache hits by tier (memory/artifact/disk)."),
    ("repro_cache_misses", "counter", (),
     None, "Compile-cache misses (entry absent)."),
    ("repro_cache_corruptions", "counter", (),
     None, "On-disk cache entries that failed validation (served as misses)."),
    ("repro_cache_evictions", "counter", (),
     None, "Cache entries evicted (memory LRU overflow and disk gc)."),
    ("repro_cache_stores", "counter", (),
     None, "Compiled programs written to the cache."),
    ("repro_cache_bytes_written", "counter", (),
     None, "Bytes written to the on-disk cache store."),
    ("repro_cache_entry_bytes", "histogram", (),
     BYTES_BUCKETS, "Serialized size of cache entries written."),
    ("repro_compile_seconds", "histogram", (),
     LATENCY_BUCKETS, "Wall-clock seconds per uncached compile."),
    # -- executable-artifact tier (repro.vm.artifact) ------------------
    ("repro_artifact_hits", "counter", (),
     None, "Executable-artifact tier hits (predecode + blockcompile skipped)."),
    ("repro_artifact_misses", "counter", (),
     None, "Executable-artifact tier misses (absent, corrupt, or stale)."),
    ("repro_artifact_stores", "counter", (),
     None, "Executable artifacts built and written."),
    ("repro_artifact_corruptions", "counter", (),
     None, "Artifact entries that failed validation (discarded, served as "
           "misses)."),
    ("repro_artifact_bytes_written", "counter", (),
     None, "Bytes written to the artifact tier."),
    ("repro_artifact_build_seconds", "histogram", (),
     LATENCY_BUCKETS, "Seconds to build + serialize one executable artifact."),
    ("repro_aot_emit_seconds", "histogram", (),
     LATENCY_BUCKETS, "Seconds to emit one AOT Python module "
                      "(repro aot build)."),
    # -- worker pool (repro.serve.pool) --------------------------------
    ("repro_pool_submitted", "counter", (),
     None, "Tasks submitted to the pool scheduler."),
    ("repro_pool_tasks", "counter", ("outcome",),
     None, "Resolved pool tasks by outcome (ok/error/cancelled); "
           "conserves against repro_pool_submitted."),
    ("repro_pool_worker_events", "counter", ("event",),
     None, "Worker lifecycle events (spawn/respawn/crash/timeout/cancel)."),
    ("repro_pool_queue_depth", "gauge", (),
     None, "Tasks waiting for a worker right now."),
    ("repro_pool_queued_seconds", "histogram", (),
     LATENCY_BUCKETS, "Seconds a task waited for a worker."),
    ("repro_pool_run_seconds", "histogram", (),
     LATENCY_BUCKETS, "Seconds a task executed on a worker."),
    # -- service / daemon (repro.serve.service, repro.serve.stdio) -----
    ("repro_requests", "counter", ("op", "status"),
     None, "Service requests by operation and status (ok/error kind)."),
    ("repro_request_seconds", "histogram", ("op",),
     LATENCY_BUCKETS, "End-to-end seconds per request (queued + run)."),
    ("repro_flight_dumps", "counter", ("reason",),
     None, "Flight-recorder dumps written, by reason."),
    # -- networked front door (repro.serve.net) ------------------------
    ("repro_serve_clients", "gauge", (),
     None, "TCP clients connected to the front door right now."),
    ("repro_serve_rejects", "counter", ("reason",),
     None, "Admission-control rejects by reason "
           "(tenant-queue-full/queue-full/max-clients/draining)."),
    ("repro_serve_inflight_dedup", "counter", (),
     None, "Requests answered by joining an identical in-flight compile "
           "(single-flight followers; each cost zero pool tasks)."),
    ("repro_serve_tenant_queue_depth", "gauge", ("tenant",),
     None, "Admitted-but-unresolved front-door requests per tenant."),
    ("repro_serve_request_seconds", "histogram", ("op",),
     LATENCY_BUCKETS, "Front-door seconds per request, intake to response "
                      "write (the loadgen/SLO latency)."),
    # -- request tracing (repro.observe.reqtrace / spanstore) ----------
    ("repro_trace_traces", "counter", ("decision",),
     None, "Finished request traces by tail-sampling decision "
           "(error/slow/sampled/dropped)."),
    ("repro_trace_spans", "counter", (),
     None, "Span records written to the span store."),
    ("repro_trace_bytes_written", "counter", (),
     None, "Bytes appended to span-store segments."),
    ("repro_trace_segment_rotations", "counter", (),
     None, "Span-store segment rotations (size cap reached)."),
    # -- VM run distributions (repro.vm.machine) -----------------------
    ("repro_vm_runs", "counter", (),
     None, "Completed VM runs observed by the registry."),
    ("repro_vm_instructions", "histogram", (),
     COUNT_BUCKETS, "Instructions executed per VM run."),
    ("repro_vm_saves", "histogram", (),
     COUNT_BUCKETS, "Register saves per VM run (Table 3's save column)."),
    ("repro_vm_restores", "histogram", (),
     COUNT_BUCKETS, "Register restores per VM run (Table 3's restore column)."),
    ("repro_vm_proc_saves", "histogram", (),
     COUNT_BUCKETS, "Saves per procedure, from profiled runs (Figure 1)."),
    ("repro_vm_proc_restores", "histogram", (),
     COUNT_BUCKETS, "Restores per procedure, from profiled runs (Figure 2)."),
    # -- allocator distributions (repro.pipeline) ----------------------
    ("repro_shuffle_size", "histogram", (),
     SIZE_BUCKETS, "Moves per call-site shuffle plan (the Buchwald et al. "
                   "shuffle-code distribution)."),
    ("repro_shuffle_cycles", "counter", (),
     None, "Shuffle plans that contained a register cycle."),
    # -- allocator strategies (repro.alloc.driver) ---------------------
    ("repro_alloc_spills", "counter", (),
     None, "Binding variables the allocator sent to frame slots."),
    ("repro_alloc_moves", "counter", (),
     None, "Shuffle moves planned across all call sites of a compile."),
    ("repro_alloc_strategy_seconds", "histogram", ("strategy",),
     LATENCY_BUCKETS, "Wall-clock seconds per program spent in register "
                      "allocation, by strategy (lazy/linearscan/graphcolor)."),
)

_BY_NAME = {entry[0]: entry for entry in CATALOG}


def declare(registry: MetricsRegistry, name: str) -> MetricFamily:
    """The catalog family *name* on *registry* (declared on first use)."""
    entry = _BY_NAME.get(name)
    if entry is None:
        raise KeyError(f"metric {name!r} is not in the catalog")
    _, kind, labels, buckets, help_text = entry
    if kind == "counter":
        return registry.counter(name, help_text, labels)
    if kind == "gauge":
        return registry.gauge(name, help_text, labels)
    return registry.histogram(name, help_text, labels, buckets or LATENCY_BUCKETS)


def declare_all(registry: MetricsRegistry) -> Dict[str, MetricFamily]:
    """Every catalog family, declared (zero-valued) on *registry* — used
    by exposition so a scrape always sees the full metric set."""
    return {name: declare(registry, name) for name in _BY_NAME}


def markdown_table() -> str:
    """The docs table (``docs/observability.md`` embeds this; a test
    keeps them in sync)."""
    lines = [
        "| metric | type | labels | help |",
        "|---|---|---|---|",
    ]
    for name, kind, labels, _, help_text in CATALOG:
        label_text = ", ".join(f"`{label}`" for label in labels) or "—"
        lines.append(f"| `{name}` | {kind} | {label_text} | {help_text} |")
    return "\n".join(lines)
