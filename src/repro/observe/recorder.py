"""``repro.observe.recorder`` — the flight recorder.

An always-on, bounded ring buffer of recent service events (requests,
cache decisions, worker lifecycle).  Recording one event is a tuple
append to a ``deque(maxlen=...)`` — a few hundred nanoseconds — and an
idle recorder costs nothing at all, so it stays on even in production
paths.

When something goes wrong (a worker crash, an oracle divergence, a
daemon error), :meth:`FlightRecorder.dump_to` writes the buffered
timeline as a JSON artifact: the last N things the service did before
the failure, in order, with both wall-clock and monotonic timestamps.
The serve layer wires this into the pool (crash dumps), the stdio
daemon (error dumps), and ``repro fuzz --jobs`` (divergence dumps).
"""

from __future__ import annotations

import contextvars
import json
import os
import tempfile
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

DEFAULT_CAPACITY = 512

#: The request trace currently being served on this execution context
#: (a contextvar, so concurrent asyncio request handlers each see their
#: own).  Set by :mod:`repro.observe.reqtrace` when a request trace
#: starts; recorded events and dumps pick it up so a crash artifact
#: links back to the request it interrupted.
_ACTIVE_TRACE: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_active_trace", default=None
)


def set_active_trace(trace_id: Optional[str]) -> None:
    """Mark *trace_id* as the request trace of the current execution
    context (``None`` clears it)."""
    _ACTIVE_TRACE.set(trace_id)


def active_trace() -> Optional[str]:
    """The trace ID of the request currently in flight on this
    execution context, if any."""
    return _ACTIVE_TRACE.get()

#: Cap on one recorded field's rendered size, so a pathological payload
#: cannot bloat the ring (the ring holds references until overwritten).
_FIELD_LIMIT = 4096


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, str):
        return value if len(value) <= _FIELD_LIMIT else value[:_FIELD_LIMIT] + "…"
    if isinstance(value, (int, float, bool)) or value is None:
        return value
    text = repr(value)
    return text if len(text) <= _FIELD_LIMIT else text[:_FIELD_LIMIT] + "…"


class FlightRecorder:
    """A bounded ring buffer of ``(seq, wall_s, mono_s, kind, fields)``
    events.

    ``record`` is safe to call from anywhere in the serve layer; the
    ring keeps only the most recent ``capacity`` events.  ``dump``
    renders the ring (oldest first) plus failure context; ``dump_to``
    writes the artifact atomically and counts dumps.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self.dumps = 0
        self._dump_lock = threading.Lock()

    def record(self, kind: str, /, **fields: Any) -> None:
        trace = _ACTIVE_TRACE.get()
        if trace is not None and "trace" not in fields:
            fields["trace"] = trace
        self._seq += 1
        self._ring.append(
            (self._seq, time.time(), time.monotonic(), kind, fields)
        )

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (≥ ``len``: the ring forgets)."""
        return self._seq

    def clear(self) -> None:
        self._ring.clear()

    def events(self) -> List[Dict[str, Any]]:
        """The ring's events, oldest first, as plain dicts."""
        return [
            {
                "seq": seq,
                "wall_s": wall,
                "mono_s": mono,
                "kind": kind,
                "args": _jsonable(fields),
            }
            for seq, wall, mono, kind, fields in self._ring
        ]

    def dump(self, reason: str, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The dump document: failure context plus the buffered
        timeline."""
        from repro import __version__  # deferred: repro/__init__ imports observe

        doc: Dict[str, Any] = {
            "flight_recorder": 1,
            "version": __version__,
            "pid": os.getpid(),
            "reason": reason,
            "dumped_s": time.time(),
            "capacity": self.capacity,
            "recorded": self._seq,
            "dropped": max(0, self._seq - len(self._ring)),
            "events": self.events(),
        }
        trace = _ACTIVE_TRACE.get()
        if trace is not None:
            doc["trace"] = trace
        if extra:
            doc["context"] = _jsonable(extra)
        return doc

    def dump_to(
        self,
        directory: str,
        reason: str,
        extra: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Write the dump as ``flight-<reason>-<pid>-<n>.json`` under
        *directory* (created if needed); returns the path.

        Thread-safe: two simultaneous failures (e.g. two daemon threads
        erroring at once) serialize on a lock, so each gets a distinct
        sequence number and file — never an interleaved or clobbered
        artifact."""
        os.makedirs(directory, exist_ok=True)
        with self._dump_lock:
            self.dumps += 1
            slug = "".join(
                ch if ch.isalnum() or ch == "-" else "-" for ch in reason
            )
            path = os.path.join(
                directory, f"flight-{slug}-{os.getpid()}-{self.dumps}.json"
            )
            payload = json.dumps(self.dump(reason, extra), indent=2)
            fd, tmp = tempfile.mkstemp(dir=directory, prefix=".flight-")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        return path


#: The process-wide recorder, shared by the serve layer.  Always on —
#: an idle ring costs nothing, and a populated one costs one tuple
#: append per service-level event.
FLIGHT_RECORDER = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return FLIGHT_RECORDER
