"""External representation of Scheme datums.

``write_datum`` produces read-syntax (strings quoted, characters with
``#\\`` notation); ``display_datum`` produces human-readable output.
"""

from __future__ import annotations

from typing import Any, List

from repro.sexp.datum import (
    Char,
    EofObject,
    MutableString,
    NIL,
    Pair,
    Symbol,
    Unspecified,
)

_CHAR_NAMES = {" ": "space", "\n": "newline", "\t": "tab", "\0": "nul", "\r": "return"}
_STRING_ESCAPES = {"\n": "\\n", "\t": "\\t", "\r": "\\r", '"': '\\"', "\\": "\\\\"}
_QUOTE_ABBREVS = {
    "quote": "'",
    "quasiquote": "`",
    "unquote": ",",
    "unquote-splicing": ",@",
}


def write_datum(datum: Any) -> str:
    """Render *datum* using ``write`` (read-compatible) conventions."""
    return _render(datum, write=True)


def display_datum(datum: Any) -> str:
    """Render *datum* using ``display`` (human-readable) conventions."""
    return _render(datum, write=False)


def _render(datum: Any, write: bool) -> str:
    out: List[str] = []
    _emit(datum, write, out)
    return "".join(out)


def _emit(datum: Any, write: bool, out: List[str]) -> None:
    if datum is True:
        out.append("#t")
    elif datum is False:
        out.append("#f")
    elif datum is NIL:
        out.append("()")
    elif isinstance(datum, int):
        out.append(str(datum))
    elif isinstance(datum, float):
        out.append(_format_flonum(datum))
    elif isinstance(datum, Symbol):
        out.append(datum.name)
    elif isinstance(datum, MutableString):
        if write:
            out.append('"')
            for ch in datum.chars:
                out.append(_STRING_ESCAPES.get(ch, ch))
            out.append('"')
        else:
            out.append(datum.text)
    elif isinstance(datum, Char):
        if write:
            out.append("#\\" + _CHAR_NAMES.get(datum.value, datum.value))
        else:
            out.append(datum.value)
    elif isinstance(datum, Pair):
        _emit_pair(datum, write, out)
    elif isinstance(datum, list):
        out.append("#(")
        for i, item in enumerate(datum):
            if i:
                out.append(" ")
            _emit(item, write, out)
        out.append(")")
    elif isinstance(datum, Unspecified):
        out.append("#<void>")
    elif isinstance(datum, EofObject):
        out.append("#<eof>")
    else:
        out.append(_render_opaque(datum))


def _emit_pair(datum: Pair, write: bool, out: List[str]) -> None:
    head = datum.car
    if (
        isinstance(head, Symbol)
        and head.name in _QUOTE_ABBREVS
        and isinstance(datum.cdr, Pair)
        and datum.cdr.cdr is NIL
    ):
        out.append(_QUOTE_ABBREVS[head.name])
        _emit(datum.cdr.car, write, out)
        return
    out.append("(")
    node: Any = datum
    first = True
    while isinstance(node, Pair):
        if not first:
            out.append(" ")
        _emit(node.car, write, out)
        first = False
        node = node.cdr
    if node is not NIL:
        out.append(" . ")
        _emit(node, write, out)
    out.append(")")


def _format_flonum(value: float) -> str:
    text = repr(value)
    if "e" in text or "." in text or "inf" in text or "nan" in text:
        return text
    return text + ".0"


def _render_opaque(datum: Any) -> str:
    name = type(datum).__name__.lower()
    return f"#<{name}>"
