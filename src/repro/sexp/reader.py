"""S-expression reader for the Scheme subset.

Supports: lists (proper and dotted), vectors ``#(...)``, fixnums,
flonums, booleans ``#t``/``#f``, characters ``#\\x`` (with the named
characters ``space newline tab nul``), strings with the usual escapes,
symbols (including peculiar identifiers like ``+`` and ``...``), and the
quotation shorthands ``'`` ``\\``` ``,`` ``,@``.

Comments: ``;`` to end of line, ``#;`` datum comments, and ``#| ... |#``
block comments (nestable).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sexp.datum import (
    Char,
    MutableString,
    NIL,
    Pair,
    Symbol,
    list_to_pairs,
)


class ReaderError(Exception):
    """Raised on malformed input, with line/column information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


_DELIMITERS = set('()";\' `,')
_NAMED_CHARS = {
    "space": " ",
    "newline": "\n",
    "tab": "\t",
    "nul": "\0",
    "return": "\r",
}
_QUOTE_SYMBOLS = {
    "'": Symbol("quote"),
    "`": Symbol("quasiquote"),
    ",": Symbol("unquote"),
    ",@": Symbol("unquote-splicing"),
}


class _Stream:
    """Character stream with position tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self) -> Optional[str]:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def peek2(self) -> Optional[str]:
        if self.pos + 1 < len(self.text):
            return self.text[self.pos + 1]
        return None

    def next(self) -> Optional[str]:
        ch = self.peek()
        if ch is None:
            return None
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def error(self, message: str) -> ReaderError:
        return ReaderError(message, self.line, self.column)


class _Reader:
    def __init__(self, text: str) -> None:
        self.stream = _Stream(text)

    # -- whitespace and comments ------------------------------------------

    def skip_atmosphere(self) -> None:
        s = self.stream
        while True:
            ch = s.peek()
            if ch is None:
                return
            if ch.isspace():
                s.next()
            elif ch == ";":
                while s.peek() is not None and s.peek() != "\n":
                    s.next()
            elif ch == "#" and s.peek2() == "|":
                self._skip_block_comment()
            elif ch == "#" and s.peek2() == ";":
                s.next()
                s.next()
                self.skip_atmosphere()
                if self.read_datum() is _EOF:
                    raise s.error("datum comment at end of input")
            else:
                return

    def _skip_block_comment(self) -> None:
        s = self.stream
        s.next()  # '#'
        s.next()  # '|'
        depth = 1
        while depth > 0:
            ch = s.next()
            if ch is None:
                raise s.error("unterminated block comment")
            if ch == "|" and s.peek() == "#":
                s.next()
                depth -= 1
            elif ch == "#" and s.peek() == "|":
                s.next()
                depth += 1

    # -- datums ------------------------------------------------------------

    def read_datum(self) -> Any:
        self.skip_atmosphere()
        s = self.stream
        ch = s.peek()
        if ch is None:
            return _EOF
        if ch == "(":
            return self._read_list()
        if ch == ")":
            raise s.error("unexpected ')'")
        if ch == '"':
            return self._read_string()
        if ch == "#":
            return self._read_hash()
        if ch in "'`":
            s.next()
            return self._wrap_quote(_QUOTE_SYMBOLS[ch])
        if ch == ",":
            s.next()
            if s.peek() == "@":
                s.next()
                return self._wrap_quote(_QUOTE_SYMBOLS[",@"])
            return self._wrap_quote(_QUOTE_SYMBOLS[","])
        return self._read_atom()

    def _wrap_quote(self, head: Symbol) -> Any:
        datum = self.read_datum()
        if datum is _EOF:
            raise self.stream.error("quotation at end of input")
        return Pair(head, Pair(datum, NIL))

    def _read_list(self) -> Any:
        s = self.stream
        s.next()  # '('
        items: List[Any] = []
        tail: Any = NIL
        while True:
            self.skip_atmosphere()
            ch = s.peek()
            if ch is None:
                raise s.error("unterminated list")
            if ch == ")":
                s.next()
                return list_to_pairs(items, tail)
            if ch == "." and self._dot_is_delimited():
                if not items:
                    raise s.error("dot at start of list")
                s.next()
                tail = self.read_datum()
                if tail is _EOF:
                    raise s.error("dotted tail missing")
                self.skip_atmosphere()
                if s.peek() != ")":
                    raise s.error("expected ')' after dotted tail")
                s.next()
                return list_to_pairs(items, tail)
            datum = self.read_datum()
            if datum is _EOF:
                raise s.error("unterminated list")
            items.append(datum)

    def _dot_is_delimited(self) -> bool:
        nxt = self.stream.peek2()
        return nxt is None or nxt.isspace() or nxt in _DELIMITERS

    def _read_string(self) -> MutableString:
        s = self.stream
        s.next()  # opening quote
        chars: List[str] = []
        while True:
            ch = s.next()
            if ch is None:
                raise s.error("unterminated string")
            if ch == '"':
                return MutableString("".join(chars))
            if ch == "\\":
                esc = s.next()
                if esc is None:
                    raise s.error("unterminated string escape")
                mapping = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0"}
                if esc not in mapping:
                    raise s.error(f"unknown string escape \\{esc}")
                chars.append(mapping[esc])
            else:
                chars.append(ch)

    def _read_hash(self) -> Any:
        s = self.stream
        s.next()  # '#'
        ch = s.peek()
        if ch is None:
            raise s.error("lone '#'")
        if ch == "t":
            s.next()
            return True
        if ch == "f":
            s.next()
            return False
        if ch == "(":
            lst = self._read_list()
            from repro.sexp.datum import pairs_to_list

            return pairs_to_list(lst)
        if ch == "\\":
            s.next()
            return self._read_char()
        raise s.error(f"unknown '#' syntax: #{ch}")

    def _read_char(self) -> Char:
        s = self.stream
        first = s.next()
        if first is None:
            raise s.error("unterminated character literal")
        if first.isalpha():
            name = [first]
            while True:
                nxt = s.peek()
                if nxt is None or nxt.isspace() or nxt in _DELIMITERS:
                    break
                name.append(s.next())
            text = "".join(name)
            if len(text) == 1:
                return Char(text)
            if text in _NAMED_CHARS:
                return Char(_NAMED_CHARS[text])
            raise s.error(f"unknown character name #\\{text}")
        return Char(first)

    def _read_atom(self) -> Any:
        s = self.stream
        chars: List[str] = []
        while True:
            ch = s.peek()
            if ch is None or ch.isspace() or ch in _DELIMITERS:
                break
            chars.append(s.next())
        text = "".join(chars)
        if not text:
            raise s.error("empty atom")
        return _parse_atom(text, s)


def _parse_atom(text: str, stream: _Stream) -> Any:
    """Classify an atom as fixnum, flonum, or symbol."""
    try:
        return int(text)
    except ValueError:
        pass
    if _looks_numeric(text):
        try:
            return float(text)
        except ValueError:
            # Identifiers like ``1+`` and ``-1+`` (classic Lisp
            # increment/decrement names) are symbols, not numbers.
            if text[-1] in "+-":
                return Symbol(text)
            raise stream.error(f"malformed number: {text}")
    return Symbol(text)


def _looks_numeric(text: str) -> bool:
    head = text[0]
    if head.isdigit():
        return True
    if head in "+-." and len(text) > 1 and (text[1].isdigit() or text[1] == "."):
        return text not in ("...",) and any(c.isdigit() for c in text)
    return False


class _Eof:
    __slots__ = ()

    def __repr__(self) -> str:
        return "#<reader-eof>"


_EOF = _Eof()


def read(text: str) -> Any:
    """Read a single datum from *text*.

    Raises :class:`ReaderError` if the text is empty or malformed.
    """
    reader = _Reader(text)
    datum = reader.read_datum()
    if datum is _EOF:
        raise ReaderError("no datum in input", 1, 1)
    return datum


def read_all(text: str) -> List[Any]:
    """Read every datum in *text*, returning them as a Python list."""
    reader = _Reader(text)
    out: List[Any] = []
    while True:
        datum = reader.read_datum()
        if datum is _EOF:
            return out
        out.append(datum)
