"""S-expression layer: datum types, reader, and writer.

This package implements the concrete syntax of the Scheme subset the
compiler accepts.  The datum types defined here double as the run-time
value representation used by the virtual machine and the reference
interpreter, so that a quoted constant in source text *is* the value the
program manipulates.
"""

from repro.sexp.datum import (
    Char,
    MutableString,
    NIL,
    Nil,
    Pair,
    Symbol,
    UNSPECIFIED,
    Unspecified,
    EOF_OBJECT,
    EofObject,
    list_to_pairs,
    pairs_to_list,
    is_list,
    scheme_equal,
    scheme_eqv,
)
from repro.sexp.reader import ReaderError, read, read_all
from repro.sexp.writer import write_datum, display_datum

__all__ = [
    "Char",
    "MutableString",
    "NIL",
    "Nil",
    "Pair",
    "Symbol",
    "UNSPECIFIED",
    "Unspecified",
    "EOF_OBJECT",
    "EofObject",
    "list_to_pairs",
    "pairs_to_list",
    "is_list",
    "scheme_equal",
    "scheme_eqv",
    "ReaderError",
    "read",
    "read_all",
    "write_datum",
    "display_datum",
]
