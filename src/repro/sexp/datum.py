"""Scheme datum types.

These classes represent both the external representation produced by the
reader and the run-time values manipulated by compiled programs and the
reference interpreter:

* fixnums          -> Python ``int``
* flonums          -> Python ``float``
* booleans         -> Python ``True`` / ``False``
* symbols          -> :class:`Symbol` (interned)
* pairs            -> :class:`Pair` (mutable)
* the empty list   -> :data:`NIL`
* strings          -> :class:`MutableString`
* characters       -> :class:`Char`
* vectors          -> Python ``list``
* the unspecified  -> :data:`UNSPECIFIED`
* the eof object   -> :data:`EOF_OBJECT`

Using plain Python ints/floats/bools keeps arithmetic in the VM fast;
the composite types get small dedicated classes so that ``eq?`` is
Python ``is`` and mutation behaves like Scheme's.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple


class Symbol:
    """An interned Scheme symbol.

    Two symbols with the same name are the same object, so ``eq?`` is
    pointer equality, as in any real Scheme system.
    """

    __slots__ = ("name",)
    _table: dict = {}

    def __new__(cls, name: str) -> "Symbol":
        sym = cls._table.get(name)
        if sym is None:
            sym = object.__new__(cls)
            sym.name = name
            cls._table[name] = sym
        return sym

    def __repr__(self) -> str:
        return self.name

    def __reduce__(self):
        return (Symbol, (self.name,))


class Pair:
    """A mutable cons cell."""

    __slots__ = ("car", "cdr")

    def __init__(self, car: Any, cdr: Any) -> None:
        self.car = car
        self.cdr = cdr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.sexp.writer import write_datum

        return write_datum(self)

    def __iter__(self) -> Iterator[Any]:
        """Iterate over the elements of a proper list."""
        node: Any = self
        while isinstance(node, Pair):
            yield node.car
            node = node.cdr
        if node is not NIL:
            raise ValueError("iteration over improper list")


class Nil:
    """The empty list ``()`` — a singleton."""

    __slots__ = ()
    _instance: Optional["Nil"] = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"

    def __iter__(self) -> Iterator[Any]:
        return iter(())


NIL = Nil()


class Unspecified:
    """The unspecified value (result of ``set!``, one-armed ``if``...)."""

    __slots__ = ()
    _instance: Optional["Unspecified"] = None

    def __new__(cls) -> "Unspecified":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<void>"


UNSPECIFIED = Unspecified()


class EofObject:
    """The object returned by ``read`` at end of input."""

    __slots__ = ()
    _instance: Optional["EofObject"] = None

    def __new__(cls) -> "EofObject":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<eof>"


EOF_OBJECT = EofObject()


class Char:
    """A Scheme character.  Interned over the ASCII range."""

    __slots__ = ("value",)
    _table: dict = {}

    def __new__(cls, value: str) -> "Char":
        if len(value) != 1:
            raise ValueError("Char requires a single-character string")
        ch = cls._table.get(value)
        if ch is None:
            ch = object.__new__(cls)
            ch.value = value
            cls._table[value] = ch
        return ch

    def __repr__(self) -> str:
        return "#\\" + self.value

    def __reduce__(self):
        return (Char, (self.value,))

    def __lt__(self, other: "Char") -> bool:
        return self.value < other.value

    def __le__(self, other: "Char") -> bool:
        return self.value <= other.value


class MutableString:
    """A mutable Scheme string.

    ``string=?`` compares contents; ``eq?`` compares identity.  Backed by
    a list of single-character strings so ``string-set!`` is O(1).
    """

    __slots__ = ("chars",)

    def __init__(self, text: str = "") -> None:
        self.chars: List[str] = list(text)

    @property
    def text(self) -> str:
        return "".join(self.chars)

    def __len__(self) -> int:
        return len(self.chars)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.sexp.writer import write_datum

        return write_datum(self)


def list_to_pairs(items: Iterable[Any], tail: Any = NIL) -> Any:
    """Build a Scheme list from a Python iterable, with optional tail."""
    result = tail
    for item in reversed(list(items)):
        result = Pair(item, result)
    return result


def pairs_to_list(datum: Any) -> List[Any]:
    """Convert a proper Scheme list into a Python list.

    Raises ``ValueError`` on improper lists.
    """
    out: List[Any] = []
    node = datum
    while isinstance(node, Pair):
        out.append(node.car)
        node = node.cdr
    if node is not NIL:
        raise ValueError("improper list")
    return out


def pairs_to_improper(datum: Any) -> Tuple[List[Any], Any]:
    """Split a possibly-improper list into (proper prefix, final tail)."""
    out: List[Any] = []
    node = datum
    while isinstance(node, Pair):
        out.append(node.car)
        node = node.cdr
    return out, node


def is_list(datum: Any) -> bool:
    """True iff *datum* is a proper (and acyclic) list."""
    slow = datum
    fast = datum
    while True:
        if fast is NIL:
            return True
        if not isinstance(fast, Pair):
            return False
        fast = fast.cdr
        if fast is NIL:
            return True
        if not isinstance(fast, Pair):
            return False
        fast = fast.cdr
        slow = slow.cdr
        if fast is slow:
            return False


def scheme_eqv(a: Any, b: Any) -> bool:
    """Scheme ``eqv?``: identity, except numbers/chars compare by value."""
    if a is b:
        return True
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, float) and isinstance(b, float):
        return a == b
    return False


def scheme_equal(a: Any, b: Any) -> bool:
    """Scheme ``equal?``: structural equality over pairs/vectors/strings."""
    if scheme_eqv(a, b):
        return True
    if isinstance(a, Pair) and isinstance(b, Pair):
        # Iterative on the cdr spine to survive long lists.
        while isinstance(a, Pair) and isinstance(b, Pair):
            if not scheme_equal(a.car, b.car):
                return False
            a = a.cdr
            b = b.cdr
        return scheme_equal(a, b)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            scheme_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, MutableString) and isinstance(b, MutableString):
        return a.chars == b.chars
    return False
