"""The compiler driver: source text to compiled program to result.

    compile_source(src, config)   -> CompiledProgram
    run_source(src, config)       -> ExecutionResult (value, output, counters)

A small Scheme-source prelude (``map``, ``for-each``, ...) is prepended
by default; it is compiled together with the user program, exactly as a
library would be in a whole-program compiler.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.astnodes import Expr, Program, copy_expr, count_nodes
from repro.backend.codegen import CompiledProgram, generate_program
from repro.config import CompilerConfig
from repro.alloc import ProgramAllocation, allocate_program
from repro.frontend.analyze import check_scopes, mark_tail_calls
from repro.frontend.assignconvert import assignment_convert
from repro.frontend.closure import closure_convert
from repro.frontend.expand import expand_program
from repro.observe import NULL_TRACER, REGISTRY, VMProfiler, tracer_for
from repro.observe.catalog import declare
from repro.sexp.reader import read_all
from repro.vm.machine import Machine

PRELUDE = """
(define (map f ls)
  (if (null? ls)
      '()
      (cons (f (car ls)) (map f (cdr ls)))))
(define (map2 f ls1 ls2)
  (if (null? ls1)
      '()
      (cons (f (car ls1) (car ls2)) (map2 f (cdr ls1) (cdr ls2)))))
(define (for-each f ls)
  (if (null? ls)
      (void)
      (begin (f (car ls)) (for-each f (cdr ls)))))
(define (filter keep? ls)
  (cond ((null? ls) '())
        ((keep? (car ls)) (cons (car ls) (filter keep? (cdr ls))))
        (else (filter keep? (cdr ls)))))
(define (fold-left f acc ls)
  (if (null? ls)
      acc
      (fold-left f (f acc (car ls)) (cdr ls))))
(define (fold-right f init ls)
  (if (null? ls)
      init
      (f (car ls) (fold-right f init (cdr ls)))))
(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))
"""


class CompileTimes:
    """Wall-clock time per phase, for the §4 compile-time experiment."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    def record(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def register_allocation_fraction(self) -> float:
        """The fraction of compile time spent in the allocator —
        the paper reports ~7% for Chez."""
        ra = (
            self.phases.get("allocate", 0.0)
        )
        return ra / self.total if self.total else 0.0


class ExecutionResult:
    """Everything a benchmark wants to know about one run."""

    def __init__(self, value: Any, machine: Machine, compiled: CompiledProgram) -> None:
        self.value = value
        self.machine = machine
        self.compiled = compiled
        self.counters = machine.counters
        self.classifier = machine.classifier
        # Per-procedure VM profile (repro.observe.VMProfiler) when the
        # run was profiled, else None.
        self.profile = machine.profiler
        self.output = machine.output

    def __repr__(self) -> str:
        return f"<ExecutionResult value={self.value!r} {self.counters!r}>"


def expand_source(source: str, prelude: bool = True) -> Expr:
    """Front half of the pipeline: text to expanded, tail-marked core AST."""
    text = (PRELUDE + "\n" + source) if prelude else source
    forms = read_all(text)
    expr = expand_program(forms)
    mark_tail_calls(expr)
    return expr


def compile_source(
    source: str,
    config: Optional[CompilerConfig] = None,
    prelude: bool = True,
    times: Optional[CompileTimes] = None,
    tracer=None,
) -> CompiledProgram:
    """Compile *source* under *config* (default: the paper's
    configuration).

    *tracer* (a :class:`repro.observe.Tracer`) records one span per
    pass, each carrying per-pass stats; when omitted it is derived from
    ``config.trace`` (the default ``"off"`` resolves to the zero-cost
    null tracer).
    """
    config = config or CompilerConfig()
    tracer = tracer if tracer is not None else tracer_for(config)
    t = times or CompileTimes()

    with tracer.span("compile", source_chars=len(source)):
        t0 = time.perf_counter()
        with tracer.span("read") as sp:
            text = (PRELUDE + "\n" + source) if prelude else source
            forms = read_all(text)
        t.record("read", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(forms=len(forms))

        t0 = time.perf_counter()
        with tracer.span("expand") as sp:
            expr = expand_program(forms)
        t.record("expand", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(nodes=count_nodes(expr))

        t0 = time.perf_counter()
        with tracer.span("convert") as sp:
            expr = assignment_convert(expr)
            mark_tail_calls(expr)
            check_scopes(expr)
        t.record("convert", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(nodes=count_nodes(expr))

        if config.lambda_lift:
            from repro.frontend.lambdalift import lambda_lift

            t0 = time.perf_counter()
            with tracer.span("lambda-lift") as sp:
                expr, lift_report = lambda_lift(
                    expr, max_params=config.lambda_lift_max_params
                )
                check_scopes(expr)
            t.record("lambda-lift", time.perf_counter() - t0)
            if tracer.enabled:
                sp.set(lifted=len(lift_report.lifted))

        t0 = time.perf_counter()
        with tracer.span("closure") as sp:
            program = closure_convert(expr)
        t.record("closure", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(procedures=len(program.codes))

        t0 = time.perf_counter()
        with tracer.span("allocate") as sp:
            allocation = allocate_program(program, config)
        t.record("allocate", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(**_allocation_stats(program, allocation))
        if REGISTRY.enabled:
            _observe_shuffles(program)

        t0 = time.perf_counter()
        with tracer.span("codegen") as sp:
            compiled = generate_program(program, allocation, config)
        t.record("codegen", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(
                instructions=compiled.total_instructions(),
                peephole_removed=compiled.peephole_removed,
            )
    return compiled


def compile_core(
    expr: Expr,
    config: Optional[CompilerConfig] = None,
    times: Optional[CompileTimes] = None,
    tracer=None,
    copy: bool = True,
) -> CompiledProgram:
    """Back half of the pipeline: expanded core AST to compiled program.

    Callers that explore many configurations (the differential fuzzer's
    oracle, strategy sweeps) expand a program once and compile the same
    tree repeatedly.  The compilation passes annotate the tree in place,
    so by default the input is first copied with
    :func:`repro.astnodes.copy_expr`; pass ``copy=False`` to give the
    tree up to a single compilation and skip the copy.

    The input is a *post-expansion* tree (what :func:`expand_source`
    returns): assignment conversion, scope checking, closure conversion,
    allocation, and code generation all run here.
    """
    config = config or CompilerConfig()
    tracer = tracer if tracer is not None else tracer_for(config)
    t = times or CompileTimes()
    if copy:
        expr = copy_expr(expr)

    with tracer.span("compile-core", nodes=count_nodes(expr)):
        t0 = time.perf_counter()
        with tracer.span("convert") as sp:
            expr = assignment_convert(expr)
            mark_tail_calls(expr)
            check_scopes(expr)
        t.record("convert", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(nodes=count_nodes(expr))

        if config.lambda_lift:
            from repro.frontend.lambdalift import lambda_lift

            t0 = time.perf_counter()
            with tracer.span("lambda-lift") as sp:
                expr, lift_report = lambda_lift(
                    expr, max_params=config.lambda_lift_max_params
                )
                check_scopes(expr)
            t.record("lambda-lift", time.perf_counter() - t0)
            if tracer.enabled:
                sp.set(lifted=len(lift_report.lifted))

        t0 = time.perf_counter()
        with tracer.span("closure") as sp:
            program = closure_convert(expr)
        t.record("closure", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(procedures=len(program.codes))

        t0 = time.perf_counter()
        with tracer.span("allocate") as sp:
            allocation = allocate_program(program, config)
        t.record("allocate", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(**_allocation_stats(program, allocation))
        if REGISTRY.enabled:
            _observe_shuffles(program)

        t0 = time.perf_counter()
        with tracer.span("codegen") as sp:
            compiled = generate_program(program, allocation, config)
        t.record("codegen", time.perf_counter() - t0)
        if tracer.enabled:
            sp.set(
                instructions=compiled.total_instructions(),
                peephole_removed=compiled.peephole_removed,
            )
    return compiled


def _allocation_stats(program: Program, allocation: ProgramAllocation) -> Dict[str, Any]:
    """Per-pass stats for the ``allocate`` span: registers assigned,
    shuffle cycles broken, and the allocator's internal sub-pass times."""
    from repro.astnodes import Call, walk

    registers_assigned = sum(
        len(alloc.register_vars) for alloc in allocation.by_code.values()
    )
    shuffle_plans = shuffle_cycles = shuffle_evictions = 0
    for code in program.codes:
        for node in walk(code.body):
            if isinstance(node, Call) and node.shuffle_plan is not None:
                shuffle_plans += 1
                if node.shuffle_plan.had_cycle:
                    shuffle_cycles += 1
                shuffle_evictions += node.shuffle_plan.evictions
    stats: Dict[str, Any] = {
        "registers_assigned": registers_assigned,
        "shuffle_plans": shuffle_plans,
        "shuffle_cycles_broken": shuffle_cycles,
        "shuffle_evictions": shuffle_evictions,
    }
    for name, seconds in allocation.pass_times.items():
        stats[f"{name}_s"] = seconds
    return stats


def _observe_shuffles(program: Program) -> None:
    """Feed the per-call-site shuffle-plan sizes into the metrics
    registry (the greedy-shuffling distribution).  Only called when the
    registry is enabled, so the normal compile path never pays for the
    extra tree walk."""
    from repro.astnodes import Call, walk

    sizes = declare(REGISTRY, "repro_shuffle_size")
    cycles = declare(REGISTRY, "repro_shuffle_cycles")
    for code in program.codes:
        for node in walk(code.body):
            if isinstance(node, Call) and node.shuffle_plan is not None:
                sizes.observe(len(node.shuffle_plan.steps))
                if node.shuffle_plan.had_cycle:
                    cycles.inc()


def run_compiled(
    compiled: CompiledProgram,
    debug: bool = False,
    max_instructions: Optional[int] = None,
    tracer=None,
    profile: bool = False,
    vm_fast: Optional[bool] = None,
) -> ExecutionResult:
    """Execute a compiled program.

    With ``profile=True`` the machine carries a
    :class:`repro.observe.VMProfiler` whose per-procedure table lands
    on ``ExecutionResult.profile``; *tracer* (if recording) wraps the
    run in an ``execute`` span.  *vm_fast* overrides the config's loop
    selection (``True`` = pre-decoded fast loop, ``False`` = legacy
    loop); differential tests use it to run one compiled program under
    both dispatch loops.
    """
    tracer = tracer or NULL_TRACER
    profiler = VMProfiler() if profile else None
    machine = Machine(
        compiled,
        debug=debug,
        max_instructions=max_instructions,
        profiler=profiler,
        vm_fast=vm_fast,
    )
    with tracer.span("execute") as sp:
        value = machine.run()
    if tracer.enabled:
        c = machine.counters
        sp.set(instructions=c.instructions, cycles=c.cycles)
    if REGISTRY.enabled:
        machine.observe_metrics(REGISTRY)
    return ExecutionResult(value, machine, compiled)


def run_source(
    source: str,
    config: Optional[CompilerConfig] = None,
    prelude: bool = True,
    debug: bool = False,
    max_instructions: Optional[int] = None,
    tracer=None,
    profile: bool = False,
) -> ExecutionResult:
    """Compile and execute *source*; the one-call public entry point."""
    config = config or CompilerConfig()
    tracer = tracer if tracer is not None else tracer_for(config)
    profile = profile or config.trace in ("vm", "all")
    compiled = compile_source(source, config, prelude=prelude, tracer=tracer)
    return run_compiled(
        compiled,
        debug=debug,
        max_instructions=max_instructions,
        tracer=tracer,
        profile=profile,
    )
