"""Compiler and simulator configuration.

A :class:`CompilerConfig` selects one point in the paper's design
space.  The paper's headline configuration is the default: six argument
registers, six user/temporary registers, lazy saves, eager restores,
greedy shuffling, caller-save registers.  The baseline of Table 3 is
:func:`CompilerConfig.baseline` — "no argument registers": every
parameter and user variable lives on the stack.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

SAVE_STRATEGIES = ("lazy", "lazy-simple", "early", "late")
RESTORE_STRATEGIES = ("eager", "lazy")
SHUFFLE_STRATEGIES = ("greedy", "naive", "spill-all", "optimal", "permopt", "none")
SAVE_CONVENTIONS = ("caller", "callee")
# Allocator strategies (repro.alloc): which algorithm assigns variables
# to registers.  The paper's allocator is "lazy"; the rivals exist for
# the ablation the paper never had.
ALLOCATOR_STRATEGIES = ("lazy", "linearscan", "graphcolor")
BRANCH_PREDICTION_MODES = (None, "static-calls", "fallthrough")
TRACE_MODES = ("off", "compile", "vm", "all")


@dataclass(frozen=True)
class CostModel:
    """Cycle cost parameters for the VM.

    ``load_latency`` is the number of cycles before a loaded value is
    usable; a use before that stalls the (single-issue, in-order)
    pipeline.  This is the mechanism behind the paper's observation
    that eager restores hide memory latency (§2.2).
    """

    load_latency: int = 3
    store_cost: int = 1
    call_overhead: int = 2
    branch_mispredict_penalty: int = 3

    def validate(self) -> None:
        if self.load_latency < 1:
            raise ValueError("load_latency must be >= 1")


@dataclass(frozen=True)
class CompilerConfig:
    """One register-allocation configuration.

    Parameters
    ----------
    num_arg_regs:
        The paper's ``c`` — how many leading actual parameters are
        passed in registers.  The rest go on the stack.
    num_temp_regs:
        The paper's ``l`` — registers for user variables and compiler
        temporaries.
    allocator:
        Which register-assignment strategy maps variables to registers
        (``repro.alloc``): ``lazy`` — the paper's scope-driven
        first-free assignment (the default; exactly the pre-strategy
        behavior); ``linearscan`` — Traub/Holloway/Smith-style
        second-chance binpacking over linearized live intervals;
        ``graphcolor`` — Chaitin–Briggs simplify/select coloring with
        move biasing and iterated spill-cost recomputation.  Every
        strategy feeds the same save/restore/shuffle machinery.
    save_strategy:
        ``lazy`` — the paper's revised St/Sf algorithm (§2.1.3);
        ``lazy-simple`` — the deficient simple algorithm (§2.1.1),
        kept for the ablation study;
        ``early`` — save on procedure entry everything any call needs;
        ``late`` — save immediately before each call.
    restore_strategy:
        ``eager`` — restore right after each call everything possibly
        referenced before the next call (§2.2); ``lazy`` — restore at
        first use / save-region exit.
    shuffle_strategy:
        ``greedy`` — the paper's algorithm (§2.3, §3.1); ``naive`` —
        fixed left-to-right evaluation with temporaries on conflict;
        ``spill-all`` — Clinger/Hansen-style: any cycle spills every
        argument; ``optimal`` — exhaustive-search minimum temporaries
        (exponential; used for the §3.1 optimality statistics);
        ``permopt`` — Buchwald–Mohr–Rutter-style decomposition of the
        register-transfer graph into copies plus permutations, emitted
        as ``swap``/``permi`` permutation instructions: pure shuffle
        cycles execute with *no* temporary and no eviction at all;
        ``none`` — every register operand goes through a temporary
        (the paper's pre-shuffling compiler, whose performance
        *decreased* past two argument registers, §4).
    save_convention:
        ``caller`` — registers are caller-save (the paper's primary
        model); ``callee`` — user registers are callee-save and saved
        by the callee per ``save_strategy`` (``early`` = on entry like
        a C compiler, ``lazy`` = inside inevitable-call regions, §2.4).
    branch_prediction:
        ``None`` — no prediction cost modelling; ``"static-calls"`` —
        the §6 heuristic (call-free paths predicted likely);
        ``"fallthrough"`` — predict not-taken everywhere (baseline).
    trace:
        Observability mode (``repro.observe``): ``"off"`` — the no-op
        null tracer (the default; zero hot-path cost); ``"compile"`` —
        record per-pass compile spans; ``"vm"`` — per-procedure VM
        profiles; ``"all"`` — both.
    vm_fast:
        Use the VM fast path (``repro.vm.predecode``): instructions are
        pre-decoded to a flat specialized form and common idioms fused
        into superinstructions.  Semantics, counters, cycles and
        profiles are bit-identical to the legacy tuple-dispatch loop —
        this knob exists for differential testing and for measuring the
        dispatch overhead itself, not as a design-space point (it is
        deliberately absent from :meth:`summary`).  The poison-checking
        debug VM always uses the legacy loop.
    lambda_lift:
        Enable the §6 future-work pass: known procedures' free
        variables become extra (register) arguments, bounded by
        ``lambda_lift_max_params``.
    artifact_cache:
        Let the compile cache store/load post-predecode,
        post-blockcompile executable artifacts as a second tier
        (``repro.vm.artifact``): warm processes skip straight to
        execution.  Purely a serving-layer accelerator — results are
        bit-identical — but it participates in the fingerprint so
        artifact-tier entries are never shared with configs that
        disable it.  Like ``vm_fast``, absent from :meth:`summary`.
    aot_direct_calls:
        Let the AOT emitter (``repro.vm.aotemit``) collapse call sites
        whose callee ``vm/callgraph.py`` proves statically into direct
        trampoline transfers (no closure type/arity test at run time).
        Off: every call dispatches dynamically, as the fast loop does.
        Also absent from :meth:`summary`.
    """

    num_arg_regs: int = 6
    num_temp_regs: int = 6
    allocator: str = "lazy"
    lambda_lift: bool = False
    lambda_lift_max_params: int = 6
    peephole: bool = True
    save_strategy: str = "lazy"
    restore_strategy: str = "eager"
    shuffle_strategy: str = "greedy"
    save_convention: str = "caller"
    branch_prediction: Optional[str] = None
    trace: str = "off"
    vm_fast: bool = True
    artifact_cache: bool = True
    aot_direct_calls: bool = True
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.allocator not in ALLOCATOR_STRATEGIES:
            raise ValueError(
                f"unknown allocator: {self.allocator!r} "
                f"(choose from {', '.join(ALLOCATOR_STRATEGIES)})"
            )
        if self.save_strategy not in SAVE_STRATEGIES:
            raise ValueError(f"unknown save strategy: {self.save_strategy}")
        if self.restore_strategy not in RESTORE_STRATEGIES:
            raise ValueError(f"unknown restore strategy: {self.restore_strategy}")
        if self.shuffle_strategy not in SHUFFLE_STRATEGIES:
            raise ValueError(f"unknown shuffle strategy: {self.shuffle_strategy}")
        if self.save_convention not in SAVE_CONVENTIONS:
            raise ValueError(f"unknown save convention: {self.save_convention}")
        if self.branch_prediction not in BRANCH_PREDICTION_MODES:
            raise ValueError(
                f"unknown branch prediction mode: {self.branch_prediction}"
            )
        if self.trace not in TRACE_MODES:
            raise ValueError(f"unknown trace mode: {self.trace}")
        if self.num_arg_regs < 0 or self.num_temp_regs < 0:
            raise ValueError("register counts must be non-negative")
        if self.lambda_lift_max_params < 0:
            raise ValueError("lambda_lift_max_params must be non-negative")
        self.cost_model.validate()

    @staticmethod
    def paper_default() -> "CompilerConfig":
        """The configuration behind Table 3's "Lazy Save" column."""
        return CompilerConfig()

    @staticmethod
    def baseline() -> "CompilerConfig":
        """Table 3's baseline: no argument or user-variable registers."""
        return CompilerConfig(num_arg_regs=0, num_temp_regs=0)

    def with_(self, **changes) -> "CompilerConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **changes)

    def summary(self) -> dict:
        """The fields that identify this point in the design space, as a
        JSON-serializable dict (the corpus format's ``config:`` header)."""
        summary = {
            "num_arg_regs": self.num_arg_regs,
            "num_temp_regs": self.num_temp_regs,
            "save_strategy": self.save_strategy,
            "restore_strategy": self.restore_strategy,
            "shuffle_strategy": self.shuffle_strategy,
            "save_convention": self.save_convention,
        }
        # Kept out of the common case so pre-arena corpus headers (and
        # their golden copies in tests) stay byte-identical.
        if self.allocator != "lazy":
            summary["allocator"] = self.allocator
        return summary

    @staticmethod
    def from_summary(summary: dict) -> "CompilerConfig":
        """Rebuild a configuration from :meth:`summary` output."""
        return CompilerConfig(**summary)

    def as_dict(self) -> Dict[str, Any]:
        """Every field (recursively, ``cost_model`` included) as a
        JSON-round-trippable dict.

        Unlike :meth:`summary`, which names only the design-space axes,
        this is the *complete* configuration — the wire format of the
        batch/serve protocol and the basis of :meth:`fingerprint`.  It
        is derived from ``dataclasses.fields`` so a newly added field
        can never be silently left out.
        """
        return _field_dict(self)

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "CompilerConfig":
        """Rebuild a configuration from :meth:`as_dict` output.

        Unknown keys are rejected (a config produced by a newer version
        of the compiler must not be silently reinterpreted)."""
        doc = dict(doc)
        cost = doc.pop("cost_model", None)
        known = {f.name for f in fields(CompilerConfig)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        if cost is not None:
            doc["cost_model"] = CostModel(**cost)
        return CompilerConfig(**doc)

    def fingerprint(self) -> str:
        """A stable, canonical identity of this configuration.

        Canonical JSON over **every** field (sorted keys, no
        whitespace) — the configuration half of the compile-cache key
        (``repro.serve.cache``).  Two configs share a fingerprint iff
        every field, including the cost model, is equal; the
        exhaustiveness is asserted field-by-field in
        ``tests/serve/test_cache.py``.
        """
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


def _field_dict(obj: Any) -> Dict[str, Any]:
    """``dataclasses.fields``-driven recursive dict: exhaustive by
    construction (``dataclasses.asdict`` would work too, but this stays
    shallow and predictable for the JSON wire format)."""
    out: Dict[str, Any] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        out[f.name] = _field_dict(value) if is_dataclass(value) else value
    return out


@dataclass
class ObserveConfig:
    """Where the observability subsystem persists its artifacts.

    ``metrics_path`` is the JSON registry snapshot that ``repro batch``
    and ``repro serve`` write and that ``repro metrics`` / ``repro top``
    read; ``flight_dir`` (optional) is where flight-recorder dumps go.
    Resolved from the environment by :meth:`from_env`:

    * ``REPRO_METRICS_PATH`` — snapshot path (default
      ``$XDG_CACHE_HOME/repro/metrics.json``, else
      ``~/.cache/repro/metrics.json``);
    * ``REPRO_FLIGHT_DIR`` — flight-dump directory (no default: dumps
      are opt-in outside the fuzzer, which uses its corpus directory);
    * ``REPRO_TRACE_DIR`` — request-trace span-store directory (no
      default: tracing is opt-in, see ``repro serve --trace-dir``).
    """

    metrics_path: str = ""
    flight_dir: Optional[str] = None
    trace_dir: Optional[str] = None

    @staticmethod
    def default_metrics_path() -> str:
        env = os.environ.get("REPRO_METRICS_PATH")
        if env:
            return env
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
        return os.path.join(base, "repro", "metrics.json")

    @classmethod
    def from_env(cls) -> "ObserveConfig":
        return cls(
            metrics_path=cls.default_metrics_path(),
            flight_dir=os.environ.get("REPRO_FLIGHT_DIR") or None,
            trace_dir=os.environ.get("REPRO_TRACE_DIR") or None,
        )


@dataclass(frozen=True)
class ServeConfig:
    """Limits and behaviour of the networked front door
    (``repro serve --tcp``, :mod:`repro.serve.net`).

    ``max_clients`` bounds concurrent TCP connections; a connection
    past the bound is greeted with an ``overloaded`` event and closed.
    ``max_pending_per_tenant`` / ``max_pending_total`` bound
    admitted-but-unresolved work requests (queued in the pool plus
    in flight plus single-flight followers); a request past either
    bound is answered immediately with ``error_kind: "overloaded"``
    (the 429 of the JSON-lines protocol) instead of queueing without
    bound.  ``drain_grace_s`` is how long a graceful drain (SIGTERM /
    ``shutdown``) waits for in-flight work before cancelling what is
    left.  ``dedup`` enables single-flight deduplication of identical
    concurrent compiles; ``cache_shards`` splits each worker's compile
    cache (and the front door's flight table) by key prefix.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_clients: int = 128
    max_pending_per_tenant: int = 128
    max_pending_total: int = 1024
    drain_grace_s: float = 10.0
    dedup: bool = True
    cache_shards: int = 8

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port out of range: {self.port}")
        if self.max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        if self.max_pending_per_tenant < 1:
            raise ValueError("max_pending_per_tenant must be >= 1")
        if self.max_pending_total < 1:
            raise ValueError("max_pending_total must be >= 1")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be non-negative")
        if self.cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")

    def as_dict(self) -> Dict[str, Any]:
        return _field_dict(self)

    def with_address(self, host: str, port: int) -> "ServeConfig":
        return replace(self, host=host, port=port)

    @staticmethod
    def parse_address(text: str) -> Tuple[str, int]:
        """``HOST:PORT`` → ``(host, port)``; port 0 asks the kernel for
        an ephemeral port (the bound port is announced in the
        ``listening`` event)."""
        host, sep, port_text = text.rpartition(":")
        if not sep or not host:
            raise ValueError(f"address must be HOST:PORT, got {text!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"bad port in address {text!r}") from None
        if not (0 <= port <= 65535):
            raise ValueError(f"port out of range in address {text!r}")
        return host, port


# The paper's register sweep: (c, l) points from "no registers" through
# the headline six-and-six machine (§4's c ∈ {0, 2, 6} discussion).
REGISTER_SWEEP: Tuple[Tuple[int, int], ...] = ((0, 0), (2, 1), (6, 6))


def strategy_matrix(
    num_arg_regs: int = 6, num_temp_regs: int = 6
) -> Iterator[CompilerConfig]:
    """Every save × restore × shuffle × convention point, at one
    register-file size — the full cross-product the paper's
    semantics-preservation claim quantifies over."""
    for save in SAVE_STRATEGIES:
        for restore in RESTORE_STRATEGIES:
            for shuffle in SHUFFLE_STRATEGIES:
                for convention in SAVE_CONVENTIONS:
                    yield CompilerConfig(
                        num_arg_regs=num_arg_regs,
                        num_temp_regs=num_temp_regs,
                        save_strategy=save,
                        restore_strategy=restore,
                        shuffle_strategy=shuffle,
                        save_convention=convention,
                    )


def full_matrix(
    register_sweep: Sequence[Tuple[int, int]] = REGISTER_SWEEP,
) -> Tuple[CompilerConfig, ...]:
    """The differential-testing matrix: the full strategy cross-product
    at the default register file, plus every strategy at the other
    register-sweep points, plus each rival allocator at the points that
    stress it (duplicates removed, order deterministic)."""
    configs: list = []
    seen = set()

    def add(config: CompilerConfig) -> None:
        key = tuple(sorted(config.summary().items()))
        if key not in seen:
            seen.add(key)
            configs.append(config)

    for config in strategy_matrix():
        add(config)
    default = CompilerConfig()
    for c, temps in register_sweep:
        for strategy_point in (
            default,
            default.with_(save_strategy="late"),
            default.with_(restore_strategy="lazy"),
            default.with_(shuffle_strategy="naive"),
            default.with_(save_convention="callee"),
        ):
            add(strategy_point.with_(num_arg_regs=c, num_temp_regs=temps))
    # Rival allocators: the default machine, a tiny register file (which
    # forces the spilling paths), the no-register degenerate case, and
    # the callee-save convention.
    for allocator in ALLOCATOR_STRATEGIES[1:]:
        rival = default.with_(allocator=allocator)
        add(rival)
        add(rival.with_(num_arg_regs=2, num_temp_regs=1))
        add(rival.with_(num_arg_regs=0, num_temp_regs=0))
        add(rival.with_(save_convention="callee"))
    return tuple(configs)


def allocator_matrix(
    allocator: str,
    register_sweep: Sequence[Tuple[int, int]] = REGISTER_SWEEP,
) -> Tuple[CompilerConfig, ...]:
    """A focused differential matrix for one allocator strategy: the
    register sweep crossed with one variation along each of the other
    strategy axes (``repro fuzz --allocator``)."""
    if allocator not in ALLOCATOR_STRATEGIES:
        raise ValueError(
            f"unknown allocator: {allocator!r} "
            f"(choose from {', '.join(ALLOCATOR_STRATEGIES)})"
        )
    default = CompilerConfig(allocator=allocator)
    configs: list = []
    seen = set()
    for c, temps in (*register_sweep, (2, 1)):
        for strategy_point in (
            default,
            default.with_(save_strategy="late"),
            default.with_(restore_strategy="lazy"),
            default.with_(shuffle_strategy="naive"),
            default.with_(save_convention="callee"),
        ):
            config = strategy_point.with_(num_arg_regs=c, num_temp_regs=temps)
            key = tuple(sorted(config.summary().items()))
            if key not in seen:
                seen.add(key)
                configs.append(config)
    return tuple(configs)


def shuffle_matrix(
    shuffle: str,
    register_sweep: Sequence[Tuple[int, int]] = REGISTER_SWEEP,
) -> Tuple[CompilerConfig, ...]:
    """A focused differential matrix for one shuffle strategy: the
    register sweep crossed with one variation along each of the other
    strategy axes (``repro fuzz --shuffle``)."""
    if shuffle not in SHUFFLE_STRATEGIES:
        raise ValueError(
            f"unknown shuffle strategy: {shuffle!r} "
            f"(choose from {', '.join(SHUFFLE_STRATEGIES)})"
        )
    default = CompilerConfig(shuffle_strategy=shuffle)
    configs: list = []
    seen = set()
    for c, temps in (*register_sweep, (2, 1)):
        for strategy_point in (
            default,
            default.with_(save_strategy="late"),
            default.with_(restore_strategy="lazy"),
            default.with_(save_convention="callee"),
            default.with_(allocator="linearscan"),
            default.with_(allocator="graphcolor"),
        ):
            config = strategy_point.with_(num_arg_regs=c, num_temp_regs=temps)
            key = tuple(sorted(config.summary().items()))
            if key not in seen:
                seen.add(key)
                configs.append(config)
    return tuple(configs)
