"""Reference interpreter for the core language (differential oracle)."""

from repro.interp.interpreter import Interpreter, interpret_source

__all__ = ["Interpreter", "interpret_source"]
